//! The bootstrap class library — the simulator's `rt.jar` plus `libjava`.
//!
//! The paper stresses that "many functions of the JDK are implemented in
//! native code" (§I); that is where much of a real workload's native time
//! comes from. This module provides the analogous substrate:
//!
//! * [`boot_archive`] — classfile bytes for `java/lang/System`,
//!   `java/lang/Math`, `java/lang/String`, `java/lang/Threads` and
//!   `java/io/FileIO`, declaring `native` methods exactly like the JDK's
//!   core classes do. Because it is an *archive of bytes*, the static
//!   instrumentation tool can rewrite it the same way the paper's tool
//!   rewrites `rt.jar`.
//! * [`libjava`] — the native library implementing those methods, with
//!   calibrated cycle costs.
//!
//! Install both with [`install`] (or feed the archive through an
//! instrumenter first).

use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::{codec, MethodFlags};

use crate::jni::{JniEnv, JniResult, NativeLibrary};
use crate::value::Value;
use crate::vm::Vm;

/// `Ljava/lang/String;` shorthand used in descriptors below.
const S: &str = "Ljava/lang/String;";

/// Build the bootstrap classfile archive (name → serialized bytes).
///
/// # Panics
///
/// Panics only on internal assembly errors (the archive is static).
pub fn boot_archive() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut push = |class: jvmsim_classfile::ClassFile| {
        out.push((class.name().to_owned(), codec::encode(&class)));
    };

    // ---- java/lang/System -------------------------------------------
    let mut system = ClassBuilder::new("java/lang/System");
    let st = MethodFlags::PUBLIC | MethodFlags::STATIC;
    system
        .native_method("arraycopy", "([II[III)V", st)
        .unwrap()
        .native_method("arraycopyF", "([FI[FII)V", st)
        .unwrap()
        .native_method("nanoTime", "()I", st)
        .unwrap()
        .native_method("currentTimeMillis", "()I", st)
        .unwrap()
        .native_method("loadLibrary", &format!("({S})V"), st)
        .unwrap();
    push(system.finish().unwrap());

    // ---- java/lang/Math ---------------------------------------------
    // Mixed class: cheap helpers in bytecode (the JDK's are too), the
    // transcendental functions native.
    let mut math = ClassBuilder::new("java/lang/Math");
    math.native_method("sqrt", "(F)F", st)
        .unwrap()
        .native_method("sin", "(F)F", st)
        .unwrap()
        .native_method("cos", "(F)F", st)
        .unwrap()
        .native_method("log", "(F)F", st)
        .unwrap()
        .native_method("exp", "(F)F", st)
        .unwrap()
        .native_method("pow", "(FF)F", st)
        .unwrap();
    {
        let mut m = math.method("abs", "(I)I", st);
        let nonneg = m.new_label();
        m.iload(0)
            .iconst(0)
            .if_icmp(jvmsim_classfile::Cond::Ge, nonneg);
        m.iload(0).ineg().ireturn();
        m.bind(nonneg);
        m.iload(0).ireturn();
        m.finish().unwrap();
    }
    {
        let mut m = math.method("max", "(II)I", st);
        let first = m.new_label();
        m.iload(0)
            .iload(1)
            .if_icmp(jvmsim_classfile::Cond::Ge, first);
        m.iload(1).ireturn();
        m.bind(first);
        m.iload(0).ireturn();
        m.finish().unwrap();
    }
    {
        let mut m = math.method("min", "(II)I", st);
        let first = m.new_label();
        m.iload(0)
            .iload(1)
            .if_icmp(jvmsim_classfile::Cond::Le, first);
        m.iload(1).ireturn();
        m.bind(first);
        m.iload(0).ireturn();
        m.finish().unwrap();
    }
    push(math.finish().unwrap());

    // ---- java/lang/String -------------------------------------------
    // Static helpers over the VM's string objects; `intern` and the
    // character-level operations are native, as in the JDK.
    let mut string = ClassBuilder::new("java/lang/String");
    string
        .native_method("length", &format!("({S})I"), st)
        .unwrap()
        .native_method("charAt", &format!("({S}I)I"), st)
        .unwrap()
        .native_method("concat", &format!("({S}{S}){S}"), st)
        .unwrap()
        .native_method("hashCode", &format!("({S})I"), st)
        .unwrap()
        .native_method("equals", &format!("({S}{S})I"), st)
        .unwrap()
        .native_method("substring", &format!("({S}II){S}"), st)
        .unwrap()
        .native_method("intern", &format!("({S}){S}"), st)
        .unwrap()
        .native_method("valueOf", &format!("(I){S}"), st)
        .unwrap();
    push(string.finish().unwrap());

    // ---- java/lang/Threads ------------------------------------------
    let mut threads = ClassBuilder::new("java/lang/Threads");
    threads
        .native_method("start", &format!("({S}{S}{S}I)V"), st)
        .unwrap();
    push(threads.finish().unwrap());

    // ---- java/io/FileIO ---------------------------------------------
    let mut fileio = ClassBuilder::new("java/io/FileIO");
    fileio
        .native_method("open", &format!("({S})I"), st)
        .unwrap()
        .native_method("read", "(I[II)I", st)
        .unwrap()
        .native_method("write", "(I[II)I", st)
        .unwrap()
        .native_method("close", "(I)V", st)
        .unwrap();
    push(fileio.finish().unwrap());

    out
}

fn string_arg(env: &mut JniEnv<'_>, args: &[Value], i: usize) -> Result<String, crate::JThrow> {
    match args.get(i).copied().and_then(Value::as_ref_opt) {
        Some(r) => env
            .get_string(r)
            .ok_or_else(|| env.throw_new("java/lang/InternalError", "argument is not a string")),
        None => Err(env.throw_new("java/lang/NullPointerException", "null string argument")),
    }
}

fn jhash(s: &str) -> i64 {
    s.bytes()
        .fold(0i64, |h, b| h.wrapping_mul(31).wrapping_add(i64::from(b)))
}

fn arraycopy_impl(env: &mut JniEnv<'_>, args: &[Value], float: bool) -> JniResult {
    let (src, src_pos, dst, dst_pos, len) = (
        args[0],
        args[1].as_int(),
        args[2],
        args[3].as_int(),
        args[4].as_int(),
    );
    let (src, dst) = match (src.as_ref_opt(), dst.as_ref_opt()) {
        (Some(s), Some(d)) => (s, d),
        _ => return Err(env.throw_new("java/lang/NullPointerException", "null array in arraycopy")),
    };
    if src_pos < 0 || dst_pos < 0 || len < 0 {
        return Err(env.throw_new(
            "java/lang/ArrayIndexOutOfBoundsException",
            "negative arraycopy range",
        ));
    }
    let (sp, dp, n) = (src_pos as usize, dst_pos as usize, len as usize);
    env.work(20 + (n as u64) / 2);
    use crate::heap::HeapObject;
    // Copy out then in (src and dst may alias).
    let copied = if float {
        let data: Option<Vec<f64>> = match env.vm().heap().get(src) {
            HeapObject::FloatArray(v) if sp + n <= v.len() => Some(v[sp..sp + n].to_vec()),
            _ => None,
        };
        match data {
            None => false,
            Some(data) => match env.vm().heap_mut().get_mut(dst) {
                HeapObject::FloatArray(v) if dp + n <= v.len() => {
                    v[dp..dp + n].copy_from_slice(&data);
                    true
                }
                _ => false,
            },
        }
    } else {
        let data: Option<Vec<i64>> = match env.vm().heap().get(src) {
            HeapObject::IntArray(v) if sp + n <= v.len() => Some(v[sp..sp + n].to_vec()),
            _ => None,
        };
        match data {
            None => false,
            Some(data) => match env.vm().heap_mut().get_mut(dst) {
                HeapObject::IntArray(v) if dp + n <= v.len() => {
                    v[dp..dp + n].copy_from_slice(&data);
                    true
                }
                _ => false,
            },
        }
    };
    if !copied {
        return Err(env.throw_new(
            "java/lang/ArrayIndexOutOfBoundsException",
            "bad arraycopy range",
        ));
    }
    Ok(Value::Null)
}

/// Build the `libjava` native library implementing [`boot_archive`]'s
/// native methods.
pub fn libjava() -> NativeLibrary {
    let mut lib = NativeLibrary::new("java");

    // ---- System ------------------------------------------------------
    lib.register_method("java/lang/System", "arraycopy", |env, args| {
        arraycopy_impl(env, args, false)
    });
    lib.register_method("java/lang/System", "arraycopyF", |env, args| {
        arraycopy_impl(env, args, true)
    });
    lib.register_method("java/lang/System", "nanoTime", |env, _args| {
        env.work(30);
        let cycles = env.thread_cycles();
        Ok(Value::Int(cycles as i64))
    });
    lib.register_method("java/lang/System", "currentTimeMillis", |env, _args| {
        env.work(60);
        let cycles = env.thread_cycles();
        Ok(Value::Int((cycles / 2_660_000) as i64))
    });
    lib.register_method("java/lang/System", "loadLibrary", |env, args| {
        let name = string_arg(env, args, 0)?;
        env.work(5_000); // dlopen is not cheap
        match env.vm().load_native_library(&name) {
            Ok(()) => Ok(Value::Null),
            Err(e) => Err(env.throw_new("java/lang/UnsatisfiedLinkError", &e.to_string())),
        }
    });

    // ---- Math --------------------------------------------------------
    macro_rules! math1 {
        ($name:literal, $cycles:expr, $f:expr) => {
            lib.register_method("java/lang/Math", $name, move |env, args| {
                env.work($cycles);
                let x = args[0].as_float();
                #[allow(clippy::redundant_closure_call)]
                Ok(Value::Float(($f)(x)))
            });
        };
    }
    math1!("sqrt", 40, f64::sqrt);
    math1!("sin", 60, f64::sin);
    math1!("cos", 60, f64::cos);
    math1!("log", 70, f64::ln);
    math1!("exp", 70, f64::exp);
    lib.register_method("java/lang/Math", "pow", |env, args| {
        env.work(90);
        Ok(Value::Float(args[0].as_float().powf(args[1].as_float())))
    });

    // ---- String ------------------------------------------------------
    lib.register_method("java/lang/String", "length", |env, args| {
        let s = string_arg(env, args, 0)?;
        env.work(15);
        Ok(Value::Int(s.len() as i64))
    });
    lib.register_method("java/lang/String", "charAt", |env, args| {
        let s = string_arg(env, args, 0)?;
        let i = args[1].as_int();
        env.work(60);
        match usize::try_from(i).ok().and_then(|i| s.as_bytes().get(i)) {
            Some(&b) => Ok(Value::Int(i64::from(b))),
            None => Err(env.throw_new(
                "java/lang/ArrayIndexOutOfBoundsException",
                &format!("charAt({i})"),
            )),
        }
    });
    lib.register_method("java/lang/String", "concat", |env, args| {
        let a = string_arg(env, args, 0)?;
        let b = string_arg(env, args, 1)?;
        env.work(30 + (a.len() + b.len()) as u64 / 4);
        let r = env.alloc_string_at(format!("{a}{b}"), "java/lang/String", "concat");
        Ok(Value::Ref(r))
    });
    lib.register_method("java/lang/String", "hashCode", |env, args| {
        let s = string_arg(env, args, 0)?;
        env.work(10 + s.len() as u64);
        Ok(Value::Int(jhash(&s)))
    });
    lib.register_method("java/lang/String", "equals", |env, args| {
        let a = string_arg(env, args, 0)?;
        let b = string_arg(env, args, 1)?;
        env.work(10 + a.len().min(b.len()) as u64 / 2);
        Ok(Value::Int(i64::from(a == b)))
    });
    lib.register_method("java/lang/String", "substring", |env, args| {
        let s = string_arg(env, args, 0)?;
        let (from, to) = (args[1].as_int(), args[2].as_int());
        env.work(25);
        let (f, t) = (from.max(0) as usize, to.max(0) as usize);
        if f > t || t > s.len() {
            return Err(env.throw_new(
                "java/lang/ArrayIndexOutOfBoundsException",
                &format!("substring({from}, {to})"),
            ));
        }
        let sub = s[f..t].to_owned();
        let r = env.alloc_string_at(sub, "java/lang/String", "substring");
        Ok(Value::Ref(r))
    });
    lib.register_method("java/lang/String", "intern", |env, args| {
        let s = string_arg(env, args, 0)?;
        env.work(40 + s.len() as u64 / 2);
        let r = env.new_string(&s);
        Ok(Value::Ref(r))
    });
    lib.register_method("java/lang/String", "valueOf", |env, args| {
        let v = args[0].as_int();
        env.work(35);
        let r = env.alloc_string_at(v.to_string(), "java/lang/String", "valueOf");
        Ok(Value::Ref(r))
    });

    // ---- Threads -----------------------------------------------------
    lib.register_method("java/lang/Threads", "start", |env, args| {
        let name = string_arg(env, args, 0)?;
        let class = string_arg(env, args, 1)?;
        let method = string_arg(env, args, 2)?;
        let arg = args[3];
        env.work(2_000); // thread creation is expensive
        env.spawn_thread(&name, &class, &method, "(I)V", vec![arg]);
        Ok(Value::Null)
    });

    // ---- FileIO ------------------------------------------------------
    // Simulated files: `open` hashes the name to a seed; `read` produces
    // deterministic pseudo-random bytes and burns I/O-sized cycle counts.
    lib.register_method("java/io/FileIO", "open", |env, args| {
        let name = string_arg(env, args, 0)?;
        env.work(1_500);
        Ok(Value::Int(jhash(&name) & 0x7FFF_FFFF))
    });
    lib.register_method("java/io/FileIO", "read", |env, args| {
        let fd = args[0].as_int();
        let buf = match args[1].as_ref_opt() {
            Some(b) => b,
            None => return Err(env.throw_new("java/lang/NullPointerException", "null buffer")),
        };
        let len = args[2].as_int().max(0) as usize;
        let cap = env.array_len(buf).unwrap_or(0);
        let n = len.min(cap);
        env.work(200 + 2 * n as u64);
        // xorshift over the fd for deterministic "file contents".
        let mut state = (fd as u64) | 1;
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            env.set_int_element(buf, i, (state & 0xFF) as i64)?;
        }
        Ok(Value::Int(n as i64))
    });
    lib.register_method("java/io/FileIO", "write", |env, args| {
        let _fd = args[0].as_int();
        if args[1].as_ref_opt().is_none() {
            return Err(env.throw_new("java/lang/NullPointerException", "null buffer"));
        }
        let len = args[2].as_int().max(0) as usize;
        env.work(200 + 2 * len as u64);
        Ok(Value::Int(len as i64))
    });
    lib.register_method("java/io/FileIO", "close", |env, _args| {
        env.work(300);
        Ok(Value::Null)
    });

    lib
}

/// Install the bootstrap archive and `libjava` (auto-loaded) into a VM.
pub fn install(vm: &mut Vm) {
    vm.add_archive(boot_archive());
    vm.register_native_library(libjava(), true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_contains_core_classes() {
        let archive = boot_archive();
        let names: Vec<&str> = archive.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "java/lang/System",
            "java/lang/Math",
            "java/lang/String",
            "java/lang/Threads",
            "java/io/FileIO",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Every classfile decodes and validates.
        for (name, bytes) in &archive {
            let class = codec::decode(bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            jvmsim_classfile::validate::validate_class(&class)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn archive_declares_native_methods() {
        let archive = boot_archive();
        let (_, bytes) = archive.iter().find(|(n, _)| n == "java/lang/Math").unwrap();
        let math = codec::decode(bytes).unwrap();
        assert!(math.find_method("sqrt", "(F)F").unwrap().is_native());
        // ... and bytecode ones next to them.
        assert!(!math.find_method("abs", "(I)I").unwrap().is_native());
    }

    #[test]
    fn libjava_exports_every_declared_native() {
        let lib = libjava();
        let archive = boot_archive();
        for (name, bytes) in &archive {
            let class = codec::decode(bytes).unwrap();
            for m in class.methods() {
                if m.is_native() {
                    let symbol = crate::jni::mangle(name, m.name());
                    assert!(lib.lookup(&symbol).is_some(), "libjava missing {symbol}");
                }
            }
        }
    }

    #[test]
    fn jhash_is_stable() {
        assert_eq!(jhash(""), 0);
        assert_eq!(jhash("a"), 97);
        assert_eq!(jhash("ab"), 97 * 31 + 98);
    }
}
