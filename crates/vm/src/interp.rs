//! The bytecode interpreter and invocation machinery.
//!
//! [`Vm::invoke`] is the single funnel for *every* method activation —
//! bytecode or native, from bytecode (`invokestatic`/`invokevirtual`), from
//! native code (JNI `Call*Method*`), or from the harness. That is exactly
//! where JVMTI's `MethodEntry`/`MethodExit` events hang, so SPA sees every
//! activation, and it is where the JIT invocation counter lives.

use std::sync::Arc;

use jvmsim_classfile::{ArrayKind, Code, ExceptionHandler, Insn};
use jvmsim_faults::FaultSite;
use jvmsim_metrics::{Bucket, CounterId};
use jvmsim_tiers::Tier;

use crate::events::ThreadId;
use crate::heap::HeapObject;
use crate::jni::{mangle, JniCallSpec, JniEnv, NativeFn};
use crate::klass::{CallSite, ClassId, MethodId};
use crate::prepared::DispatchMode;
use crate::throw::JThrow;
use crate::value::Value;
use crate::vm::Vm;

impl Vm {
    /// Invoke `mid` with `args` (receiver first for instance methods) on
    /// `thread`. Dispatches `MethodEntry`/`MethodExit` events, maintains the
    /// call-depth guard, routes to native or bytecode execution.
    ///
    /// # Errors
    ///
    /// Returns the Java exception unwinding out of the callee, if any.
    pub(crate) fn invoke(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
        args: Vec<Value>,
    ) -> Result<Value, JThrow> {
        self.stats.invocations += 1;
        self.metric_incr(thread, jvmsim_metrics::CounterId::Invocations);
        let depth = self.depth(thread);
        if depth >= self.max_call_depth() {
            return Err(self.throw_new(
                thread,
                "java/lang/StackOverflowError",
                "call depth exceeded",
            ));
        }
        self.set_depth(thread, depth + 1);
        let result = self.invoke_inner(thread, mid, args);
        self.set_depth(thread, depth);
        result
    }

    fn invoke_inner(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
        args: Vec<Value>,
    ) -> Result<Value, JThrow> {
        let method_events = self.event_mask().method_events;
        if method_events {
            if let Some(sink) = self.sink() {
                self.stats.events_dispatched += 1;
                let _agent = self.agent_scope(thread);
                self.metric_incr(thread, jvmsim_metrics::CounterId::JvmtiEvents);
                self.charge(thread, self.cost().event_dispatch);
                sink.method_entry(thread, self.registry.method_view(mid));
            }
        }
        let is_native = self.registry.method(mid).is_native();
        let result = if is_native {
            self.invoke_native(thread, mid, &args)
        } else {
            let jit_enabled = self.jit_enabled();
            let mode = self.effective_tiers_mode();
            let count = self.registry.note_invocation(mid);
            let mut tier = self.registry.effective_tier(mid, jit_enabled);
            // Promote one tier at a time at the invocation thresholds
            // (Interp→C1 at the C1 threshold, C1→C2 at the C2 threshold),
            // capped by the tiers mode's ceiling. `>=` rather than `==`:
            // a fault-aborted compile resets the counter, and a successful
            // promotion changes the tier so the lower threshold stops
            // applying — either way this fires at most once per call.
            if mode.allows_promotion_from(tier) {
                if let Some(threshold) = self.cost().tiers.invocation_threshold(tier) {
                    if count >= threshold {
                        if let Some(next) = tier.next() {
                            if self.tier_compile(thread, mid, next, false) {
                                tier = next;
                            }
                        }
                    }
                }
            }
            let overhead = self.cost().call_overhead(tier);
            self.charge(thread, overhead);
            self.note_tier_cycles(tier, overhead);
            match self.dispatch() {
                DispatchMode::Switch => self.execute(thread, mid, tier, args),
                DispatchMode::Threaded => self.execute_threaded(thread, mid, tier, args),
            }
        };
        if method_events {
            if let Some(sink) = self.sink() {
                self.stats.events_dispatched += 1;
                let _agent = self.agent_scope(thread);
                self.metric_incr(thread, jvmsim_metrics::CounterId::JvmtiEvents);
                self.charge(thread, self.cost().event_dispatch);
                sink.method_exit(thread, self.registry.method_view(mid), result.is_err());
            }
        }
        result
    }

    // ------------------------------------------------------ tier pipeline

    /// Attribute `cycles` of bytecode-execution time (per-instruction
    /// charges and call overheads) to `tier`'s ground-truth column.
    pub(crate) fn note_tier_cycles(&mut self, tier: Tier, cycles: u64) {
        match tier {
            Tier::Interp => self.stats.interp_cycles += cycles,
            Tier::C1 => self.stats.c1_cycles += cycles,
            Tier::C2 => self.stats.c2_cycles += cycles,
        }
    }

    /// Compile `mid` at `target`, charging the compile cost to the calling
    /// thread under the tier's compile bucket. Returns `false` when the
    /// fault plane aborts the compile: half the cost is charged (the work
    /// thrown away), the invocation counter resets so the method must
    /// re-earn promotion, and the method stays at its current tier.
    pub(crate) fn tier_compile(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
        target: Tier,
        osr: bool,
    ) -> bool {
        let insns = self.registry.insn_count(mid);
        let full = self.cost().tiers.compile_cost(target, insns);
        let aborted = self.faults_enabled() && self.fault(FaultSite::TierCompileAbort).is_some();
        let charged = if aborted { full / 2 } else { full };
        let bucket = match target {
            Tier::C1 => Bucket::C1Compile,
            _ => Bucket::C2Compile,
        };
        {
            let shard = self.thread_shard(thread);
            let _compile = shard.as_ref().map(|s| s.enter(bucket));
            self.charge(thread, charged);
        }
        match target {
            Tier::C1 => self.stats.c1_compile_cycles += charged,
            _ => self.stats.c2_compile_cycles += charged,
        }
        if aborted {
            self.stats.tier_compile_aborts += 1;
            self.metric_incr(thread, CounterId::TierCompileAborts);
            self.registry.reset_invocations(mid);
            return false;
        }
        let from = self.registry.tier_of(mid);
        self.registry.set_tier(mid, target);
        match target {
            Tier::C1 => {
                self.stats.c1_compiles += 1;
                self.metric_incr(thread, CounterId::C1Compiles);
            }
            _ => {
                self.stats.c2_compiles += 1;
                self.metric_incr(thread, CounterId::C2Compiles);
            }
        }
        // First departure from the interpreter still emits the legacy
        // MethodCompile event, so single-tier trace consumers keep working.
        if from == Tier::Interp {
            self.trace_emit(
                thread,
                crate::events::TraceEventKind::MethodCompile,
                Some(mid),
            );
        }
        let kind = match target {
            Tier::C1 => crate::events::TraceEventKind::TierUpC1,
            _ => crate::events::TraceEventKind::TierUpC2,
        };
        self.trace_emit(thread, kind, Some(mid));
        if osr {
            self.stats.osrs += 1;
            self.metric_incr(thread, CounterId::OsrReplacements);
            self.trace_emit(thread, crate::events::TraceEventKind::Osr, Some(mid));
        }
        true
    }

    /// Deoptimize `mid`: an exception is unwinding out of one of its
    /// compiled activations, so the compiled state is discarded and the
    /// method returns to the interpreter to re-earn promotion.
    pub(crate) fn deopt(&mut self, thread: ThreadId, mid: MethodId) {
        self.registry.set_tier(mid, Tier::Interp);
        self.registry.reset_invocations(mid);
        self.stats.deopts += 1;
        self.metric_incr(thread, CounterId::Deopts);
        self.trace_emit(thread, crate::events::TraceEventKind::Deopt, Some(mid));
    }

    // ----------------------------------------------------------- natives

    fn invoke_native(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
        args: &[Value],
    ) -> Result<Value, JThrow> {
        self.stats.native_calls += 1;
        self.metric_incr(thread, jvmsim_metrics::CounterId::NativeCalls);
        // Resolve before charging so we know whether the target is agent
        // infrastructure: dispatching into a fault-exempt (agent bridge)
        // native is probe overhead, not workload time, and its cycles are
        // attributed to the configured agent bucket.
        let (f, fault_exempt) = self.resolve_native(thread, mid)?;
        let _agent = if fault_exempt {
            self.agent_scope(thread)
        } else {
            None
        };
        let dispatch = self.cost().native_dispatch;
        self.charge(thread, dispatch);
        self.stats.native_cycles += dispatch;
        // Fault plane: a clock stall on the native dispatch path — the
        // native call takes anomalously long, visible to the agents as a
        // large J2N interval. Accounting must absorb it, not diverge.
        // Agent bridge natives are exempt: faults target application and
        // JDK natives, never the measurement infrastructure itself.
        if !fault_exempt {
            if let Some(entropy) = self.fault(FaultSite::ClockStall) {
                let stall = entropy % 50_000 + 1;
                self.charge(thread, stall);
                self.stats.native_cycles += stall;
            }
        }
        let mut env = JniEnv { vm: self, thread };
        let result = f(&mut env, args);
        // Fault plane: force an exception to unwind out of this native
        // frame at the instant it would have returned normally — the
        // abnormal path the paper's try/finally wrapper (§IV) must keep
        // balanced (J2N_End still fires on the exceptional exit).
        if !fault_exempt && result.is_ok() && self.fault(FaultSite::NativeUnwind).is_some() {
            return Err(self.throw_new(
                thread,
                "jvmsim/faults/InjectedNativeUnwind",
                "fault plane: forced unwind out of native method",
            ));
        }
        result
    }

    /// Bind a native method to a library symbol, honouring the JVMTI 1.1
    /// prefix-retry rule: if direct resolution fails and the method name
    /// starts with a registered prefix, retry with the prefix stripped.
    fn resolve_native(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
    ) -> Result<(NativeFn, bool), JThrow> {
        if let Some(binding) = self.native_binding(mid) {
            return Ok(binding);
        }
        let (class_name, method_name) = {
            let rc = self.registry.get(mid.class);
            (
                rc.name.clone(),
                rc.methods[mid.index as usize].name().to_owned(),
            )
        };
        let mut tried = Vec::new();
        let mut candidates = vec![mangle(&class_name, &method_name)];
        for prefix in self.native_prefixes() {
            if let Some(stripped) = method_name.strip_prefix(prefix.as_str()) {
                candidates.push(mangle(&class_name, stripped));
            }
        }
        for symbol in candidates {
            for lib in self.loaded_libraries() {
                if let Some(f) = lib.lookup(&symbol) {
                    let fault_exempt = lib.is_fault_exempt();
                    self.cache_native_binding(mid, f.clone(), fault_exempt);
                    return Ok((f, fault_exempt));
                }
            }
            tried.push(symbol);
        }
        Err(self.throw_new(
            thread,
            "java/lang/UnsatisfiedLinkError",
            &format!("{class_name}.{method_name} (tried {})", tried.join(", ")),
        ))
    }

    // ------------------------------------------------------- JNI upcalls

    /// Perform the invocation a JNI `Call*Method*` function names — the
    /// default behaviour of every function-table entry.
    pub(crate) fn invoke_from_jni(
        &mut self,
        thread: ThreadId,
        spec: &JniCallSpec,
    ) -> Result<Value, JThrow> {
        use crate::jni::CallKind;
        let (mid, args) = match spec.key.kind {
            CallKind::Static => {
                let cid = self.ensure_loaded_or_throw(thread, &spec.class)?;
                let mid = self.resolve_or_throw(thread, cid, &spec.name, &spec.descriptor)?;
                if !self.registry.method(mid).is_static() {
                    return Err(self.throw_new(
                        thread,
                        "java/lang/NoSuchMethodError",
                        &format!("{}.{} is not static", spec.class, spec.name),
                    ));
                }
                (mid, spec.args.clone())
            }
            CallKind::Virtual => {
                let recv = spec.receiver.unwrap_or(Value::Null);
                let obj = match recv.as_ref_opt() {
                    Some(r) => r,
                    None => {
                        return Err(self.throw_new(
                            thread,
                            "java/lang/NullPointerException",
                            "null receiver in JNI call",
                        ))
                    }
                };
                let dyn_class = match self.heap().get(obj) {
                    HeapObject::Instance { class, .. } => *class,
                    _ => {
                        return Err(self.throw_new(
                            thread,
                            "java/lang/InternalError",
                            "JNI receiver is not an object instance",
                        ))
                    }
                };
                let mid = self.resolve_or_throw(thread, dyn_class, &spec.name, &spec.descriptor)?;
                let mut args = Vec::with_capacity(spec.args.len() + 1);
                args.push(recv);
                args.extend_from_slice(&spec.args);
                (mid, args)
            }
            CallKind::Nonvirtual => {
                let recv = spec.receiver.unwrap_or(Value::Null);
                if recv.as_ref_opt().is_none() {
                    return Err(self.throw_new(
                        thread,
                        "java/lang/NullPointerException",
                        "null receiver in JNI call",
                    ));
                }
                let cid = self.ensure_loaded_or_throw(thread, &spec.class)?;
                let mid = self.resolve_or_throw(thread, cid, &spec.name, &spec.descriptor)?;
                let mut args = Vec::with_capacity(spec.args.len() + 1);
                args.push(recv);
                args.extend_from_slice(&spec.args);
                (mid, args)
            }
        };
        // Arity check: a JNI caller passing the wrong number of arguments
        // must raise a Java-level error, not crash the VM.
        {
            let m = self.registry.method(mid);
            let expected = m.descriptor().param_slots() + usize::from(!m.is_static());
            if args.len() != expected {
                return Err(self.throw_new(
                    thread,
                    "java/lang/InternalError",
                    &format!(
                        "{}.{}{} called through JNI with {} argument(s), expected {}",
                        spec.class,
                        spec.name,
                        spec.descriptor,
                        args.len(),
                        expected
                    ),
                ));
            }
        }
        // Return-family check (`CallIntMethod` must target an int-returning
        // method, etc.).
        if !spec
            .key
            .ret
            .matches(self.registry.method(mid).descriptor().return_type())
        {
            return Err(self.throw_new(
                thread,
                "java/lang/InternalError",
                &format!(
                    "{} used for {}.{}{}",
                    spec.key.function_name(),
                    spec.class,
                    spec.name,
                    spec.descriptor
                ),
            ));
        }
        self.invoke(thread, mid, args)
    }

    pub(crate) fn ensure_loaded_or_throw(
        &mut self,
        thread: ThreadId,
        class: &str,
    ) -> Result<ClassId, JThrow> {
        self.ensure_loaded_on(thread, class)
            .map_err(|e| self.throw_new(thread, "java/lang/NoClassDefFoundError", &e.to_string()))
    }

    fn resolve_or_throw(
        &mut self,
        thread: ThreadId,
        cid: ClassId,
        name: &str,
        descriptor: &str,
    ) -> Result<MethodId, JThrow> {
        self.registry
            .resolve_method(cid, name, descriptor)
            .ok_or_else(|| {
                let class = self.registry.get(cid).name.clone();
                self.throw_new(
                    thread,
                    "java/lang/NoSuchMethodError",
                    &format!("{class}.{name}{descriptor}"),
                )
            })
    }

    // -------------------------------------------------------- call sites

    pub(crate) fn static_target(
        &mut self,
        thread: ThreadId,
        cur: ClassId,
        idx: u16,
    ) -> Result<(MethodId, u8, bool), JThrow> {
        if let Some(&hit) = self.static_call_cache.get(&(cur, idx)) {
            return Ok(hit);
        }
        let cs: CallSite = self
            .registry
            .get(cur)
            .callsites
            .get(&idx)
            .cloned()
            .expect("validated invokestatic has a callsite");
        let cid = self.ensure_loaded_or_throw(thread, &cs.class)?;
        let mid = self.resolve_or_throw(thread, cid, &cs.name, &cs.descriptor)?;
        if !self.registry.method(mid).is_static() {
            // The JVM raises IncompatibleClassChangeError here.
            return Err(self.throw_new(
                thread,
                "java/lang/NoSuchMethodError",
                &format!("invokestatic of instance method {}.{}", cs.class, cs.name),
            ));
        }
        let entry = (mid, cs.nargs as u8, cs.returns_value);
        self.static_call_cache.insert((cur, idx), entry);
        Ok(entry)
    }

    pub(crate) fn virtual_target(
        &mut self,
        thread: ThreadId,
        cur: ClassId,
        idx: u16,
        receiver_class: ClassId,
    ) -> Result<(MethodId, u8, bool), JThrow> {
        if let Some(&hit) = self.virtual_call_cache.get(&(cur, idx, receiver_class)) {
            return Ok(hit);
        }
        let cs: CallSite = self
            .registry
            .get(cur)
            .callsites
            .get(&idx)
            .cloned()
            .expect("validated invokevirtual has a callsite");
        let mid = self.resolve_or_throw(thread, receiver_class, &cs.name, &cs.descriptor)?;
        if self.registry.method(mid).is_static() {
            return Err(self.throw_new(
                thread,
                "java/lang/NoSuchMethodError",
                &format!("invokevirtual of static method {}.{}", cs.class, cs.name),
            ));
        }
        let entry = (mid, cs.nargs as u8, cs.returns_value);
        self.virtual_call_cache
            .insert((cur, idx, receiver_class), entry);
        Ok(entry)
    }

    pub(crate) fn static_field_target(
        &mut self,
        thread: ThreadId,
        cur: ClassId,
        idx: u16,
    ) -> Result<(ClassId, usize), JThrow> {
        if let Some(&hit) = self.static_field_cache.get(&(cur, idx)) {
            return Ok(hit);
        }
        let fs = self
            .registry
            .get(cur)
            .fieldsites
            .get(&idx)
            .cloned()
            .expect("validated getstatic has a fieldsite");
        let cid = self.ensure_loaded_or_throw(thread, &fs.class)?;
        let hit = self.registry.resolve_static(cid, &fs.name).ok_or_else(|| {
            self.throw_new(
                thread,
                "java/lang/NoSuchFieldError",
                &format!("static {}.{}", fs.class, fs.name),
            )
        })?;
        self.static_field_cache.insert((cur, idx), hit);
        Ok(hit)
    }

    pub(crate) fn instance_field_slot(
        &mut self,
        thread: ThreadId,
        cur: ClassId,
        idx: u16,
    ) -> Result<usize, JThrow> {
        if let Some(&slot) = self.instance_field_cache.get(&(cur, idx)) {
            return Ok(slot);
        }
        let fs = self
            .registry
            .get(cur)
            .fieldsites
            .get(&idx)
            .cloned()
            .expect("validated getfield has a fieldsite");
        // Resolve against the class the field reference *names* (JVM field
        // resolution is static): a superclass method referencing its own
        // `x` keeps touching the superclass slot even when a subclass
        // shadows the name. Layouts are prefix-preserving, so the declared
        // class's slot index is valid for every subclass instance.
        let cid = self.ensure_loaded_or_throw(thread, &fs.class)?;
        let slot = self
            .registry
            .resolve_instance_field(cid, &fs.name)
            .ok_or_else(|| {
                self.throw_new(
                    thread,
                    "java/lang/NoSuchFieldError",
                    &format!("{}.{}", fs.class, fs.name),
                )
            })?;
        self.instance_field_cache.insert((cur, idx), slot);
        Ok(slot)
    }

    // -------------------------------------------------------- frame loop

    pub(crate) fn handle_throw(
        &mut self,
        table: &[ExceptionHandler],
        pc: u32,
        t: JThrow,
        stack: &mut Vec<Value>,
    ) -> Option<u32> {
        let thrown_class = match self.heap().get(t.exception) {
            HeapObject::Instance { class, .. } => Some(*class),
            _ => None,
        };
        for h in table {
            if pc < h.start || pc >= h.end {
                continue;
            }
            let matches = match (&h.catch_class, thrown_class) {
                (None, _) => true,
                (Some(catch), Some(cls)) => self.is_subclass_of(cls, catch),
                (Some(_), None) => false,
            };
            if matches {
                stack.clear();
                stack.push(Value::Ref(t.exception));
                return Some(h.handler);
            }
        }
        None
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        thread: ThreadId,
        mid: MethodId,
        tier: Tier,
        args: Vec<Value>,
    ) -> Result<Value, JThrow> {
        let cur = mid.class;
        let code: Arc<Code> = self.registry.get(cur).code[mid.index as usize]
            .clone()
            .expect("bytecode method has code");
        let clock = self.clock_handle(thread);
        let shard = clock.metrics().cloned();
        let mut tier = tier;
        let mut insn_cost = self.cost().insn(tier);
        // On-stack replacement: a long-running activation below the mode's
        // tier ceiling is promoted mid-run after enough backward branches.
        let mode = self.effective_tiers_mode();
        let osr_threshold = self.cost().tiers.osr_backedge_threshold;
        let mut osr_pending = mode.allows_promotion_from(tier);
        let mut backedges: u32 = 0;
        // Timer sampling: poll every few instructions (cheap when off).
        let sampling = self.sampler_interval().is_some();
        // The fault plane shares the poll cadence: asynchronous thread
        // death fires at the same safepoints a timer sample would.
        let fault_polls = self.faults_enabled();
        let polling = sampling || fault_polls;
        let mut insns_since_poll: u32 = 0;

        let mut locals = vec![Value::Int(0); code.max_locals as usize];
        locals[..args.len()].copy_from_slice(&args);
        let mut stack: Vec<Value> = Vec::with_capacity(code.max_stack as usize);
        let mut pc: u32 = 0;

        macro_rules! take_branch {
            ($t:expr) => {{
                let target: u32 = $t;
                if osr_pending && target <= pc {
                    backedges += 1;
                    if backedges >= osr_threshold {
                        backedges = 0;
                        if let Some(next) = tier.next() {
                            if self.tier_compile(thread, mid, next, true) {
                                tier = next;
                                insn_cost = self.cost().insn(tier);
                            }
                        }
                        osr_pending = mode.allows_promotion_from(tier);
                    }
                }
                pc = target;
                continue;
            }};
        }

        macro_rules! throw_or_handle {
            ($t:expr) => {{
                let t = $t;
                match self.handle_throw(&code.exception_table, pc, t, &mut stack) {
                    Some(h) => {
                        pc = h;
                        continue;
                    }
                    None => {
                        if tier.is_compiled() {
                            self.deopt(thread, mid);
                        }
                        return Err(t);
                    }
                }
            }};
        }

        macro_rules! jthrow {
            ($class:expr, $msg:expr) => {{
                let t = self.throw_new(thread, $class, $msg);
                throw_or_handle!(t)
            }};
        }

        loop {
            let insn = &code.insns[pc as usize];
            self.stats.insns += 1;
            if let Some(shard) = &shard {
                shard.incr(jvmsim_metrics::CounterId::InterpInsns);
            }
            clock.charge(insn_cost);
            self.note_tier_cycles(tier, insn_cost);
            if polling {
                insns_since_poll += 1;
                if insns_since_poll >= 32 {
                    insns_since_poll = 0;
                    if sampling {
                        self.poll_samples(thread, false);
                    }
                    // Fault plane: abrupt asynchronous thread death at a
                    // safepoint. Thrown as a normal Java error so it
                    // unwinds through every wrapper/interceptor bracket on
                    // the way out; an uncaught instance kills only this
                    // thread, never the VM.
                    if fault_polls && self.fault(FaultSite::ThreadDeath).is_some() {
                        jthrow!(
                            "java/lang/ThreadDeath",
                            "fault plane: asynchronous thread death"
                        );
                    }
                }
            }
            match insn {
                Insn::Nop => {}
                Insn::IConst(v) => stack.push(Value::Int(*v)),
                Insn::FConst(v) => stack.push(Value::Float(*v)),
                Insn::AConstNull => stack.push(Value::Null),
                Insn::Ldc(cp) => {
                    let key = (cur, cp.0);
                    let r = match self.ldc_cache.get(&key) {
                        Some(&r) => r,
                        None => {
                            let s = self.registry.get(cur).strings[&cp.0].clone();
                            let before = self.heap().len();
                            let r = self.heap_mut().intern_string(&s);
                            // Interning only allocates on a miss; an
                            // already-interned literal is not an event.
                            if self.alloc_events_on() && self.heap().len() > before {
                                let (sc, sm) = self.site_of(mid);
                                self.fire_allocation(thread, r, &sc, &sm, pc);
                            }
                            self.ldc_cache.insert(key, r);
                            r
                        }
                    };
                    stack.push(Value::Ref(r));
                }
                Insn::ILoad(s) | Insn::FLoad(s) | Insn::ALoad(s) => {
                    stack.push(locals[*s as usize]);
                }
                Insn::IStore(s) | Insn::FStore(s) | Insn::AStore(s) => {
                    locals[*s as usize] = stack.pop().expect("verified stack");
                }
                Insn::Pop => {
                    stack.pop();
                }
                Insn::Dup => {
                    let top = *stack.last().expect("verified stack");
                    stack.push(top);
                }
                Insn::Swap => {
                    let n = stack.len();
                    stack.swap(n - 1, n - 2);
                }
                Insn::IAdd
                | Insn::ISub
                | Insn::IMul
                | Insn::IShl
                | Insn::IShr
                | Insn::IUShr
                | Insn::IAnd
                | Insn::IOr
                | Insn::IXor => {
                    let b = stack.pop().expect("verified").as_int();
                    let a = stack.pop().expect("verified").as_int();
                    let r = match insn {
                        Insn::IAdd => a.wrapping_add(b),
                        Insn::ISub => a.wrapping_sub(b),
                        Insn::IMul => a.wrapping_mul(b),
                        Insn::IShl => a.wrapping_shl(b as u32 & 63),
                        Insn::IShr => a.wrapping_shr(b as u32 & 63),
                        Insn::IUShr => ((a as u64) >> (b as u32 & 63)) as i64,
                        Insn::IAnd => a & b,
                        Insn::IOr => a | b,
                        _ => a ^ b,
                    };
                    stack.push(Value::Int(r));
                }
                Insn::IDiv | Insn::IRem => {
                    let b = stack.pop().expect("verified").as_int();
                    let a = stack.pop().expect("verified").as_int();
                    if b == 0 {
                        jthrow!("java/lang/ArithmeticException", "/ by zero");
                    }
                    let r = if matches!(insn, Insn::IDiv) {
                        a.wrapping_div(b)
                    } else {
                        a.wrapping_rem(b)
                    };
                    stack.push(Value::Int(r));
                }
                Insn::INeg => {
                    let a = stack.pop().expect("verified").as_int();
                    stack.push(Value::Int(a.wrapping_neg()));
                }
                Insn::IInc { local, delta } => {
                    let v = locals[*local as usize].as_int();
                    locals[*local as usize] = Value::Int(v.wrapping_add(i64::from(*delta)));
                }
                Insn::FAdd | Insn::FSub | Insn::FMul | Insn::FDiv => {
                    let b = stack.pop().expect("verified").as_float();
                    let a = stack.pop().expect("verified").as_float();
                    let r = match insn {
                        Insn::FAdd => a + b,
                        Insn::FSub => a - b,
                        Insn::FMul => a * b,
                        _ => a / b,
                    };
                    stack.push(Value::Float(r));
                }
                Insn::FNeg => {
                    let a = stack.pop().expect("verified").as_float();
                    stack.push(Value::Float(-a));
                }
                Insn::I2F => {
                    let a = stack.pop().expect("verified").as_int();
                    stack.push(Value::Float(a as f64));
                }
                Insn::F2I => {
                    let a = stack.pop().expect("verified").as_float();
                    stack.push(Value::Int(a as i64));
                }
                Insn::FCmp => {
                    let b = stack.pop().expect("verified").as_float();
                    let a = stack.pop().expect("verified").as_float();
                    // fcmpg: NaN compares greater.
                    let r = if a.is_nan() || b.is_nan() {
                        1
                    } else if a < b {
                        -1
                    } else {
                        i64::from(a > b)
                    };
                    stack.push(Value::Int(r));
                }
                Insn::Goto(t) => take_branch!(*t),
                Insn::If(cond, t) => {
                    let v = stack.pop().expect("verified").as_int();
                    if cond.eval(v.cmp(&0)) {
                        take_branch!(*t);
                    }
                }
                Insn::IfICmp(cond, t) => {
                    let b = stack.pop().expect("verified").as_int();
                    let a = stack.pop().expect("verified").as_int();
                    if cond.eval(a.cmp(&b)) {
                        take_branch!(*t);
                    }
                }
                Insn::IfNull(t) => {
                    let v = stack.pop().expect("verified");
                    if v.as_ref_opt().is_none() {
                        take_branch!(*t);
                    }
                }
                Insn::IfNonNull(t) => {
                    let v = stack.pop().expect("verified");
                    if v.as_ref_opt().is_some() {
                        take_branch!(*t);
                    }
                }
                Insn::TableSwitch {
                    low,
                    targets,
                    default,
                } => {
                    let k = stack.pop().expect("verified").as_int();
                    let off = k.wrapping_sub(*low);
                    let target = if off >= 0 && (off as usize) < targets.len() {
                        targets[off as usize]
                    } else {
                        *default
                    };
                    take_branch!(target);
                }
                Insn::InvokeStatic(cp) => {
                    let (callee, nargs, returns) = match self.static_target(thread, cur, cp.0) {
                        Ok(t) => t,
                        Err(t) => throw_or_handle!(t),
                    };
                    let split = stack.len() - nargs as usize;
                    let call_args = stack.split_off(split);
                    match self.invoke(thread, callee, call_args) {
                        Ok(v) => {
                            if returns {
                                stack.push(v);
                            }
                        }
                        Err(t) => throw_or_handle!(t),
                    }
                }
                Insn::InvokeVirtual(cp) => {
                    // Arity lookup needs the callsite before popping.
                    let nargs = self.registry.get(cur).callsites[&cp.0].nargs;
                    let split = stack.len() - nargs - 1;
                    let mut call_args = stack.split_off(split);
                    let recv = call_args[0];
                    let obj = match recv.as_ref_opt() {
                        Some(o) => o,
                        None => {
                            jthrow!("java/lang/NullPointerException", "null receiver");
                        }
                    };
                    let dyn_class = match self.heap().get(obj) {
                        HeapObject::Instance { class, .. } => *class,
                        _ => {
                            jthrow!(
                                "java/lang/InternalError",
                                "invokevirtual receiver is not an object instance"
                            );
                        }
                    };
                    let (callee, _, returns) =
                        match self.virtual_target(thread, cur, cp.0, dyn_class) {
                            Ok(t) => t,
                            Err(t) => throw_or_handle!(t),
                        };
                    // call_args already has the receiver first.
                    match self.invoke(thread, callee, std::mem::take(&mut call_args)) {
                        Ok(v) => {
                            if returns {
                                stack.push(v);
                            }
                        }
                        Err(t) => throw_or_handle!(t),
                    }
                }
                Insn::Return => return Ok(Value::Null),
                Insn::IReturn | Insn::FReturn | Insn::AReturn => {
                    return Ok(stack.pop().expect("verified"));
                }
                Insn::New(cp) => {
                    let cid = match self.new_class_cache.get(&(cur, cp.0)) {
                        Some(&c) => c,
                        None => {
                            let name = self.registry.get(cur).classrefs[&cp.0].clone();
                            let c = match self.ensure_loaded_or_throw(thread, &name) {
                                Ok(c) => c,
                                Err(t) => throw_or_handle!(t),
                            };
                            self.new_class_cache.insert((cur, cp.0), c);
                            c
                        }
                    };
                    clock.charge(self.cost().alloc_object);
                    self.stats.allocations += 1;
                    let defaults = self.registry.get(cid).field_defaults();
                    let obj = self.heap_mut().alloc_instance(cid, defaults);
                    if self.alloc_events_on() {
                        let (sc, sm) = self.site_of(mid);
                        self.fire_allocation(thread, obj, &sc, &sm, pc);
                    }
                    stack.push(Value::Ref(obj));
                }
                Insn::GetField(cp) | Insn::PutField(cp) => {
                    let is_put = matches!(insn, Insn::PutField(_));
                    let value = if is_put {
                        Some(stack.pop().expect("verified"))
                    } else {
                        None
                    };
                    let recv = stack.pop().expect("verified");
                    let obj = match recv.as_ref_opt() {
                        Some(o) => o,
                        None => {
                            jthrow!("java/lang/NullPointerException", "null field access");
                        }
                    };
                    if !matches!(self.heap().get(obj), HeapObject::Instance { .. }) {
                        jthrow!(
                            "java/lang/InternalError",
                            "field access on a non-object reference"
                        );
                    }
                    let slot = match self.instance_field_slot(thread, cur, cp.0) {
                        Ok(s) => s,
                        Err(t) => throw_or_handle!(t),
                    };
                    match self.heap_mut().get_mut(obj) {
                        HeapObject::Instance { fields, .. } => {
                            if let Some(v) = value {
                                fields[slot] = v;
                            } else {
                                let v = fields[slot];
                                stack.push(v);
                            }
                        }
                        _ => unreachable!("checked instance above"),
                    }
                }
                Insn::GetStatic(cp) | Insn::PutStatic(cp) => {
                    let is_put = matches!(insn, Insn::PutStatic(_));
                    let (cid, slot) = match self.static_field_target(thread, cur, cp.0) {
                        Ok(t) => t,
                        Err(t) => throw_or_handle!(t),
                    };
                    if is_put {
                        let v = stack.pop().expect("verified");
                        self.registry.get_mut(cid).statics[slot] = v;
                    } else {
                        stack.push(self.registry.get(cid).statics[slot]);
                    }
                }
                Insn::NewArray(kind) => {
                    let len = stack.pop().expect("verified").as_int();
                    if len < 0 {
                        jthrow!("java/lang/NegativeArraySizeException", &format!("{len}"));
                    }
                    let len = len as usize;
                    clock.charge(self.cost().alloc_array(len));
                    self.stats.allocations += 1;
                    let r = match kind {
                        ArrayKind::Int => self.heap_mut().alloc_int_array(len),
                        ArrayKind::Float => self.heap_mut().alloc_float_array(len),
                        ArrayKind::Ref => self.heap_mut().alloc_ref_array(len),
                    };
                    if self.alloc_events_on() {
                        let (sc, sm) = self.site_of(mid);
                        self.fire_allocation(thread, r, &sc, &sm, pc);
                    }
                    stack.push(Value::Ref(r));
                }
                Insn::IALoad | Insn::FALoad | Insn::AALoad => {
                    let index = stack.pop().expect("verified").as_int();
                    let arr = stack.pop().expect("verified");
                    let arr = match arr.as_ref_opt() {
                        Some(a) => a,
                        None => {
                            jthrow!("java/lang/NullPointerException", "null array load");
                        }
                    };
                    if index < 0 {
                        jthrow!(
                            "java/lang/ArrayIndexOutOfBoundsException",
                            &format!("{index}")
                        );
                    }
                    let i = index as usize;
                    let loaded = match (insn, self.heap().get(arr)) {
                        (Insn::IALoad, HeapObject::IntArray(v)) => v.get(i).map(|&x| Value::Int(x)),
                        (Insn::FALoad, HeapObject::FloatArray(v)) => {
                            v.get(i).map(|&x| Value::Float(x))
                        }
                        (Insn::AALoad, HeapObject::RefArray(v)) => v.get(i).copied(),
                        _ => {
                            jthrow!("java/lang/InternalError", "array load kind mismatch");
                        }
                    };
                    match loaded {
                        Some(v) => stack.push(v),
                        None => {
                            jthrow!(
                                "java/lang/ArrayIndexOutOfBoundsException",
                                &format!("{index}")
                            );
                        }
                    }
                }
                Insn::IAStore | Insn::FAStore | Insn::AAStore => {
                    let value = stack.pop().expect("verified");
                    let index = stack.pop().expect("verified").as_int();
                    let arr = stack.pop().expect("verified");
                    let arr = match arr.as_ref_opt() {
                        Some(a) => a,
                        None => {
                            jthrow!("java/lang/NullPointerException", "null array store");
                        }
                    };
                    if index < 0 {
                        jthrow!(
                            "java/lang/ArrayIndexOutOfBoundsException",
                            &format!("{index}")
                        );
                    }
                    let i = index as usize;
                    // Distinguish kind mismatch (ArrayStoreException) from
                    // out-of-bounds (ArrayIndexOutOfBoundsException).
                    enum StoreOutcome {
                        Ok,
                        OutOfBounds,
                        KindMismatch,
                    }
                    let outcome = match (insn, self.heap_mut().get_mut(arr)) {
                        (Insn::IAStore, HeapObject::IntArray(v)) => {
                            if i < v.len() {
                                v[i] = value.as_int();
                                StoreOutcome::Ok
                            } else {
                                StoreOutcome::OutOfBounds
                            }
                        }
                        (Insn::FAStore, HeapObject::FloatArray(v)) => {
                            if i < v.len() {
                                v[i] = value.as_float();
                                StoreOutcome::Ok
                            } else {
                                StoreOutcome::OutOfBounds
                            }
                        }
                        (Insn::AAStore, HeapObject::RefArray(v)) => {
                            if i < v.len() {
                                v[i] = value;
                                StoreOutcome::Ok
                            } else {
                                StoreOutcome::OutOfBounds
                            }
                        }
                        _ => StoreOutcome::KindMismatch,
                    };
                    match outcome {
                        StoreOutcome::Ok => {}
                        StoreOutcome::OutOfBounds => {
                            jthrow!(
                                "java/lang/ArrayIndexOutOfBoundsException",
                                &format!("{index}")
                            );
                        }
                        StoreOutcome::KindMismatch => {
                            jthrow!("java/lang/ArrayStoreException", "array store kind mismatch");
                        }
                    }
                }
                Insn::ArrayLength => {
                    let arr = stack.pop().expect("verified");
                    let arr = match arr.as_ref_opt() {
                        Some(a) => a,
                        None => {
                            jthrow!("java/lang/NullPointerException", "null arraylength");
                        }
                    };
                    match self.heap().get(arr).array_len() {
                        Some(n) => stack.push(Value::Int(n as i64)),
                        None => {
                            jthrow!("java/lang/InternalError", "arraylength of a non-array");
                        }
                    }
                }
                Insn::AThrow => {
                    let v = stack.pop().expect("verified");
                    match v.as_ref_opt() {
                        Some(r) => throw_or_handle!(JThrow::new(r)),
                        None => {
                            jthrow!("java/lang/NullPointerException", "throwing null");
                        }
                    }
                }
            }
            pc += 1;
        }
    }
}
