//! JNI analog: native libraries, symbol mangling, and the native-code view
//! of the VM ([`JniEnv`]).
//!
//! Native methods are Rust closures registered in a [`NativeLibrary`] under
//! their JNI-mangled symbol (`Java_pkg_Class_method`). A library becomes
//! visible to resolution once loaded with [`crate::Vm::load_native_library`]
//! — the analogue of `System.loadLibrary` (§II-A).
//!
//! Native→Java calls go through the [`table::JniFunctionTable`], the
//! interception point the paper's IPA exploits.

pub mod table;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::events::ThreadId;
use crate::throw::JThrow;
use crate::value::{ObjRef, Value};
use crate::vm::Vm;

pub use table::{
    CallKind, JniCallKey, JniCallSpec, JniEntryFn, JniFunctionTable, JniRetType, ParamStyle,
};

/// Result of a native method or JNI call.
pub type JniResult = Result<Value, JThrow>;

/// A native method implementation.
pub type NativeFn = Arc<dyn Fn(&mut JniEnv<'_>, &[Value]) -> JniResult + Send + Sync>;

/// Mangle a class + method name into the JNI symbol native libraries export.
///
/// Follows the JNI short-name rules the paper's resolution strategy relies
/// on: `Java_` prefix, `/` becomes `_`, and `_` in names escapes to `_1`.
///
/// ```
/// assert_eq!(
///     jvmsim_vm::jni::mangle("spec/jvm98/Compress", "readBlock"),
///     "Java_spec_jvm98_Compress_readBlock",
/// );
/// assert_eq!(jvmsim_vm::jni::mangle("a/B", "do_it"), "Java_a_B_do_1it");
/// ```
pub fn mangle(class: &str, method: &str) -> String {
    let mut out = String::from("Java_");
    for part in [class, "/", method] {
        for c in part.chars() {
            match c {
                '/' => out.push('_'),
                '_' => out.push_str("_1"),
                c => out.push(c),
            }
        }
    }
    out
}

/// A loadable native code library — the analogue of a `.so`/`.dll` JNI
/// library.
#[derive(Clone)]
pub struct NativeLibrary {
    name: String,
    symbols: HashMap<String, NativeFn>,
    fault_exempt: bool,
}

impl fmt::Debug for NativeLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeLibrary")
            .field("name", &self.name)
            .field("symbols", &self.symbols.len())
            .field("fault_exempt", &self.fault_exempt)
            .finish()
    }
}

impl NativeLibrary {
    /// Create an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        NativeLibrary {
            name: name.into(),
            symbols: HashMap::new(),
            fault_exempt: false,
        }
    }

    /// Exempt this library's natives from fault injection. Agent bridge
    /// libraries (the J2N/N2J probes) are measurement *infrastructure*:
    /// real JVMTI agent code runs outside the Java exception machinery,
    /// so the fault plane targets application and JDK natives only —
    /// injecting an unwind into a probe would merely simulate a broken
    /// profiler, which no accounting can (or should) survive.
    pub fn exempt_from_faults(&mut self) -> &mut Self {
        self.fault_exempt = true;
        self
    }

    /// Is this library exempt from fault injection?
    pub fn is_fault_exempt(&self) -> bool {
        self.fault_exempt
    }

    /// Library name (as passed to `System.loadLibrary`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of exported symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Is the library empty?
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Export `f` under a raw symbol name.
    pub fn register_symbol(
        &mut self,
        symbol: impl Into<String>,
        f: impl Fn(&mut JniEnv<'_>, &[Value]) -> JniResult + Send + Sync + 'static,
    ) -> &mut Self {
        self.symbols.insert(symbol.into(), Arc::new(f));
        self
    }

    /// Export `f` as the implementation of `class.method` (mangles the
    /// symbol for you).
    pub fn register_method(
        &mut self,
        class: &str,
        method: &str,
        f: impl Fn(&mut JniEnv<'_>, &[Value]) -> JniResult + Send + Sync + 'static,
    ) -> &mut Self {
        self.register_symbol(mangle(class, method), f)
    }

    /// Look up an exported symbol.
    pub fn lookup(&self, symbol: &str) -> Option<NativeFn> {
        self.symbols.get(symbol).map(Arc::clone)
    }

    /// Exported symbol names (diagnostics).
    pub fn symbols(&self) -> impl Iterator<Item = &str> {
        self.symbols.keys().map(String::as_str)
    }
}

/// The environment handed to native code — the `JNIEnv*` analogue.
///
/// Gives native methods cycle-charged access to the VM: doing simulated
/// work, reading and writing arrays and strings, calling back into Java
/// through the JNI function table (which agents may have intercepted), and
/// throwing exceptions.
pub struct JniEnv<'a> {
    pub(crate) vm: &'a mut Vm,
    pub(crate) thread: ThreadId,
}

impl fmt::Debug for JniEnv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JniEnv")
            .field("thread", &self.thread)
            .finish()
    }
}

impl<'a> JniEnv<'a> {
    /// The thread this native code runs on.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Burn `cycles` of native work on this thread's clock — the simulated
    /// equivalent of the native library actually computing something.
    pub fn work(&mut self, cycles: u64) {
        self.vm.charge(self.thread, cycles);
        self.vm.stats.native_cycles += cycles;
        // Timer samples land mid-native-work, attributed to native code.
        self.vm.poll_samples(self.thread, true);
    }

    /// Escape hatch to the whole VM (used by builtins such as thread
    /// spawning; ordinary workload natives should not need it).
    pub fn vm(&mut self) -> &mut Vm {
        self.vm
    }

    // ------------------------------------------------------------- calls

    /// Call back into Java through the named JNI invocation function.
    ///
    /// This charges the JNI call cost, looks up the (possibly intercepted)
    /// table entry, and runs it — exactly the path the paper's N2J
    /// transitions take.
    ///
    /// # Errors
    ///
    /// Propagates any Java exception thrown by the callee, or an
    /// `java/lang/InternalError` for a return-type/family mismatch or an
    /// unresolvable target.
    pub fn call(&mut self, spec: &JniCallSpec) -> JniResult {
        self.call_in_bucket(spec, None)
    }

    /// [`JniEnv::call`], attributing the JNI invocation cost itself to
    /// `bucket` (if metrics are on). Only the `jni_invoke` charge is
    /// scoped: the callee runs in whatever bucket is otherwise current, so
    /// the launcher's harness-bucket entry call does not swallow the
    /// workload's cycles.
    pub(crate) fn call_in_bucket(
        &mut self,
        spec: &JniCallSpec,
        bucket: Option<jvmsim_metrics::Bucket>,
    ) -> JniResult {
        self.vm.stats.jni_upcalls += 1;
        if let Some(shard) = self.vm.thread_shard(self.thread) {
            shard.incr(jvmsim_metrics::CounterId::JniUpcalls);
        }
        let cost = self.vm.cost().jni_invoke;
        {
            let _scope = bucket
                .and_then(|b| self.vm.thread_shard(self.thread).map(|shard| (shard, b)))
                .map(|(shard, b)| shard.enter(b));
            self.vm.charge(self.thread, cost);
        }
        // The JNI function's own marshalling is native-code time.
        self.vm.stats.native_cycles += cost;
        let entry = self.vm.jni_table().get(spec.key);
        let result = entry(self, spec);
        // Fault plane: materialise a pending exception at the return of
        // the (possibly intercepted) Call<Type>Method function. By this
        // point any N2J_End bracket installed by an interceptor has
        // already closed, so this models native code discovering a pending
        // exception mid-transition and unwinding with it.
        if result.is_ok()
            && self
                .vm
                .fault(jvmsim_faults::FaultSite::NativePendingThrow)
                .is_some()
        {
            return Err(self.throw_new(
                "jvmsim/faults/InjectedPendingException",
                "fault plane: pending exception at JNI call return",
            ));
        }
        result
    }

    /// Convenience: `CallStatic<ret>Method` with the given style.
    ///
    /// # Errors
    ///
    /// See [`JniEnv::call`].
    pub fn call_static(
        &mut self,
        ret: JniRetType,
        style: ParamStyle,
        class: &str,
        name: &str,
        descriptor: &str,
        args: &[Value],
    ) -> JniResult {
        self.call(&JniCallSpec {
            key: JniCallKey {
                kind: CallKind::Static,
                style,
                ret,
            },
            class: class.to_owned(),
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            receiver: None,
            args: args.to_vec(),
        })
    }

    /// Convenience: `Call<ret>Method` (virtual) with the given style.
    ///
    /// # Errors
    ///
    /// See [`JniEnv::call`].
    #[allow(clippy::too_many_arguments)]
    pub fn call_virtual(
        &mut self,
        ret: JniRetType,
        style: ParamStyle,
        receiver: Value,
        class: &str,
        name: &str,
        descriptor: &str,
        args: &[Value],
    ) -> JniResult {
        self.call(&JniCallSpec {
            key: JniCallKey {
                kind: CallKind::Virtual,
                style,
                ret,
            },
            class: class.to_owned(),
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            receiver: Some(receiver),
            args: args.to_vec(),
        })
    }

    /// The uninstrumented invocation path used by default table entries.
    /// Interceptors call the original entry rather than this.
    ///
    /// # Errors
    ///
    /// Propagates callee exceptions; raises `java/lang/InternalError` on a
    /// return-family mismatch and `java/lang/NoSuchMethodError` on a bad
    /// target.
    pub fn invoke_raw(&mut self, spec: &JniCallSpec) -> JniResult {
        self.vm.invoke_from_jni(self.thread, spec)
    }

    // ------------------------------------------------------------- heap

    /// Allocate an int array.
    pub fn new_int_array(&mut self, len: usize) -> ObjRef {
        let cost = self.vm.cost().alloc_array(len);
        self.vm.charge(self.thread, cost);
        let r = self.vm.heap_mut().alloc_int_array(len);
        self.vm
            .fire_allocation(self.thread, r, "<jni>", "NewIntArray", 0);
        r
    }

    /// Allocate and intern a string.
    pub fn new_string(&mut self, s: &str) -> ObjRef {
        let before = self.vm.heap().len();
        let r = self.vm.heap_mut().intern_string(s);
        // Interning allocates only on a miss.
        if self.vm.heap().len() > before {
            self.vm
                .fire_allocation(self.thread, r, "<jni>", "NewString", 0);
        }
        r
    }

    /// Allocate a fresh (non-interned) string, attributing the allocation
    /// to the synthetic native site `(site_class, site_method)` — what the
    /// built-in `java/lang/String` natives use so the ALLOC agent sees
    /// their allocations like any bytecode site's.
    pub fn alloc_string_at(
        &mut self,
        s: impl Into<String>,
        site_class: &str,
        site_method: &str,
    ) -> ObjRef {
        let r = self.vm.heap_mut().alloc_string(s);
        self.vm.stats.allocations += 1;
        self.vm
            .fire_allocation(self.thread, r, site_class, site_method, 0);
        r
    }

    /// Read a string's contents.
    pub fn get_string(&self, r: ObjRef) -> Option<String> {
        self.vm.heap().as_str(r).map(str::to_owned)
    }

    /// Read an int-array element.
    ///
    /// # Errors
    ///
    /// Throws `java/lang/ArrayIndexOutOfBoundsException` or
    /// `java/lang/InternalError` on a non-int-array reference.
    pub fn get_int_element(&mut self, array: ObjRef, index: usize) -> Result<i64, JThrow> {
        match self.vm.heap().get(array) {
            crate::heap::HeapObject::IntArray(v) => v.get(index).copied().ok_or(()),
            _ => Err(()),
        }
        .map_err(|()| {
            self.vm.throw_new(
                self.thread,
                "java/lang/InternalError",
                "bad array access from native code",
            )
        })
    }

    /// Write an int-array element.
    ///
    /// # Errors
    ///
    /// As [`JniEnv::get_int_element`].
    pub fn set_int_element(
        &mut self,
        array: ObjRef,
        index: usize,
        value: i64,
    ) -> Result<(), JThrow> {
        let ok = match self.vm.heap_mut().get_mut(array) {
            crate::heap::HeapObject::IntArray(v) if index < v.len() => {
                v[index] = value;
                true
            }
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(self.vm.throw_new(
                self.thread,
                "java/lang/InternalError",
                "bad array store from native code",
            ))
        }
    }

    /// Length of any array object.
    pub fn array_len(&self, array: ObjRef) -> Option<usize> {
        self.vm.heap().get(array).array_len()
    }

    // ------------------------------------------------------------- misc

    /// Construct (and return, for `?`-style raising) a new exception.
    pub fn throw_new(&mut self, class: &str, message: &str) -> JThrow {
        self.vm.throw_new(self.thread, class, message)
    }

    /// Read this thread's cycle counter (what PCL ultimately reads).
    pub fn thread_cycles(&self) -> u64 {
        self.vm.thread_cycles(self.thread)
    }

    /// Queue a new VM thread running `class.method(args)`; it executes when
    /// the current thread finishes (run-to-completion green threading).
    pub fn spawn_thread(
        &mut self,
        name: &str,
        class: &str,
        method: &str,
        descriptor: &str,
        args: Vec<Value>,
    ) {
        self.vm.spawn_thread(name, class, method, descriptor, args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling() {
        assert_eq!(mangle("a/B", "f"), "Java_a_B_f");
        assert_eq!(
            mangle("java/lang/System", "arraycopy"),
            "Java_java_lang_System_arraycopy"
        );
        assert_eq!(mangle("a/B", "do_it"), "Java_a_B_do_1it");
        assert_eq!(mangle("p_q/C", "m"), "Java_p_1q_C_m");
    }

    #[test]
    fn library_registration_and_lookup() {
        let mut lib = NativeLibrary::new("demo");
        assert!(lib.is_empty());
        lib.register_method("a/B", "f", |_env, _args| Ok(Value::Int(1)));
        lib.register_symbol("Java_a_B_g", |_env, _args| Ok(Value::Null));
        assert_eq!(lib.len(), 2);
        assert!(lib.lookup("Java_a_B_f").is_some());
        assert!(lib.lookup("Java_a_B_g").is_some());
        assert!(lib.lookup("Java_a_B_h").is_none());
        assert_eq!(lib.name(), "demo");
        let mut syms: Vec<_> = lib.symbols().collect();
        syms.sort_unstable();
        assert_eq!(syms, vec!["Java_a_B_f", "Java_a_B_g"]);
    }
}
