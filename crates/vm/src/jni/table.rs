//! The JNI method-invocation function table.
//!
//! The JNI exposes `Call<Type>Method`, `CallStatic<Type>Method` and
//! `CallNonvirtual<Type>Method`, each in three parameter-passing styles
//! (varargs, `va_list`, argument array) and ten return types — the
//! **3 × 3 × 10 = 90 functions** the paper's IPA intercepts (§IV).
//!
//! The table is the interception point: JVMTI lets a tool replace entries
//! ([`JniFunctionTable::intercept_all`]), and IPA installs wrappers that
//! bracket the original function with `N2J_Begin()` / `N2J_End()`.

use std::fmt;
use std::sync::Arc;

use jvmsim_classfile::ReturnType;

use crate::jni::JniEnv;
use crate::throw::JThrow;
use crate::value::Value;

/// Dispatch kind of a JNI invocation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `Call<Type>Method…` — virtual dispatch on the receiver.
    Virtual,
    /// `CallNonvirtual<Type>Method…` — dispatch to the named class.
    Nonvirtual,
    /// `CallStatic<Type>Method…` — no receiver.
    Static,
}

impl CallKind {
    /// All three kinds.
    pub const ALL: [CallKind; 3] = [CallKind::Virtual, CallKind::Nonvirtual, CallKind::Static];

    fn name_part(self) -> &'static str {
        match self {
            CallKind::Virtual => "",
            CallKind::Nonvirtual => "Nonvirtual",
            CallKind::Static => "Static",
        }
    }
}

/// Parameter-passing style of a JNI invocation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamStyle {
    /// `…Method(env, obj, id, ...)` — C varargs.
    Varargs,
    /// `…MethodV(env, obj, id, va_list)`.
    VaList,
    /// `…MethodA(env, obj, id, jvalue*)`.
    Array,
}

impl ParamStyle {
    /// All three styles.
    pub const ALL: [ParamStyle; 3] = [ParamStyle::Varargs, ParamStyle::VaList, ParamStyle::Array];

    fn suffix(self) -> &'static str {
        match self {
            ParamStyle::Varargs => "",
            ParamStyle::VaList => "V",
            ParamStyle::Array => "A",
        }
    }
}

/// Return type selecting one of the ten JNI invocation function families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JniRetType {
    /// `jobject`.
    Object,
    /// `jboolean`.
    Boolean,
    /// `jbyte`.
    Byte,
    /// `jchar`.
    Char,
    /// `jshort`.
    Short,
    /// `jint`.
    Int,
    /// `jlong`.
    Long,
    /// `jfloat`.
    Float,
    /// `jdouble`.
    Double,
    /// `void`.
    Void,
}

impl JniRetType {
    /// All ten return types.
    pub const ALL: [JniRetType; 10] = [
        JniRetType::Object,
        JniRetType::Boolean,
        JniRetType::Byte,
        JniRetType::Char,
        JniRetType::Short,
        JniRetType::Int,
        JniRetType::Long,
        JniRetType::Float,
        JniRetType::Double,
        JniRetType::Void,
    ];

    fn name_part(self) -> &'static str {
        match self {
            JniRetType::Object => "Object",
            JniRetType::Boolean => "Boolean",
            JniRetType::Byte => "Byte",
            JniRetType::Char => "Char",
            JniRetType::Short => "Short",
            JniRetType::Int => "Int",
            JniRetType::Long => "Long",
            JniRetType::Float => "Float",
            JniRetType::Double => "Double",
            JniRetType::Void => "Void",
        }
    }

    /// Does a method with this declared return type match this JNI family?
    /// (All JVM integral types travel as `Int` in this VM; `Float`/`Double`
    /// as `Float`; references as `Object`.)
    pub fn matches(self, ret: &ReturnType) -> bool {
        use jvmsim_classfile::Type;
        matches!(
            (self, ret),
            (JniRetType::Void, ReturnType::Void)
                | (
                    JniRetType::Object,
                    ReturnType::Value(Type::Object(_) | Type::Array(_))
                )
                | (
                    JniRetType::Boolean
                        | JniRetType::Byte
                        | JniRetType::Char
                        | JniRetType::Short
                        | JniRetType::Int
                        | JniRetType::Long,
                    ReturnType::Value(Type::Int),
                )
                | (
                    JniRetType::Float | JniRetType::Double,
                    ReturnType::Value(Type::Float)
                )
        )
    }
}

/// Identity of one of the 90 JNI invocation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JniCallKey {
    /// Dispatch kind.
    pub kind: CallKind,
    /// Parameter-passing style.
    pub style: ParamStyle,
    /// Return-type family.
    pub ret: JniRetType,
}

impl JniCallKey {
    /// The C-level function name, e.g. `CallStaticIntMethodA`.
    pub fn function_name(self) -> String {
        format!(
            "Call{}{}Method{}",
            self.kind.name_part(),
            self.ret.name_part(),
            self.style.suffix()
        )
    }

    /// Enumerate all 90 keys.
    pub fn all() -> impl Iterator<Item = JniCallKey> {
        CallKind::ALL.into_iter().flat_map(|kind| {
            ParamStyle::ALL.into_iter().flat_map(move |style| {
                JniRetType::ALL
                    .into_iter()
                    .map(move |ret| JniCallKey { kind, style, ret })
            })
        })
    }

    fn slot(self) -> usize {
        let k = match self.kind {
            CallKind::Virtual => 0,
            CallKind::Nonvirtual => 1,
            CallKind::Static => 2,
        };
        let s = match self.style {
            ParamStyle::Varargs => 0,
            ParamStyle::VaList => 1,
            ParamStyle::Array => 2,
        };
        let r = JniRetType::ALL.iter().position(|&x| x == self.ret).unwrap();
        (k * 3 + s) * 10 + r
    }
}

impl fmt::Display for JniCallKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.function_name())
    }
}

/// The target of a JNI invocation, as native code names it.
#[derive(Debug, Clone, PartialEq)]
pub struct JniCallSpec {
    /// Which function was used.
    pub key: JniCallKey,
    /// Class to resolve against (receiver's class is still consulted for
    /// [`CallKind::Virtual`]).
    pub class: String,
    /// Method name.
    pub name: String,
    /// Method descriptor.
    pub descriptor: String,
    /// Receiver, for non-static kinds.
    pub receiver: Option<Value>,
    /// Arguments in declaration order.
    pub args: Vec<Value>,
}

/// Signature of a table entry.
pub type JniEntryFn =
    Arc<dyn Fn(&mut JniEnv<'_>, &JniCallSpec) -> Result<Value, JThrow> + Send + Sync>;

/// The mutable table of 90 invocation functions.
pub struct JniFunctionTable {
    entries: Vec<JniEntryFn>,
}

impl fmt::Debug for JniFunctionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JniFunctionTable")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl JniFunctionTable {
    /// Number of invocation functions (3 kinds × 3 styles × 10 types).
    pub const SIZE: usize = 90;

    /// Build the default table: every entry performs the actual invocation
    /// via [`JniEnv::invoke_raw`].
    pub fn new() -> Self {
        let default: JniEntryFn = Arc::new(|env, spec| env.invoke_raw(spec));
        JniFunctionTable {
            entries: (0..Self::SIZE).map(|_| Arc::clone(&default)).collect(),
        }
    }

    /// Fetch the entry for `key`.
    pub fn get(&self, key: JniCallKey) -> JniEntryFn {
        Arc::clone(&self.entries[key.slot()])
    }

    /// Replace the entry for `key`.
    pub fn set(&mut self, key: JniCallKey, f: JniEntryFn) {
        self.entries[key.slot()] = f;
    }

    /// Wrap every entry: `wrap` receives each key and its current entry and
    /// returns the replacement — how IPA registers its 90 wrappers.
    pub fn intercept_all(&mut self, wrap: impl Fn(JniCallKey, JniEntryFn) -> JniEntryFn) {
        for key in JniCallKey::all() {
            let original = self.get(key);
            self.entries[key.slot()] = wrap(key, original);
        }
    }
}

impl Default for JniFunctionTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_functions() {
        assert_eq!(JniCallKey::all().count(), 90);
        // All slots distinct and in range.
        let mut seen = [false; JniFunctionTable::SIZE];
        for k in JniCallKey::all() {
            assert!(!seen[k.slot()], "slot collision for {k}");
            seen[k.slot()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn function_names() {
        let k = JniCallKey {
            kind: CallKind::Virtual,
            style: ParamStyle::Varargs,
            ret: JniRetType::Int,
        };
        assert_eq!(k.function_name(), "CallIntMethod");
        let k = JniCallKey {
            kind: CallKind::Static,
            style: ParamStyle::Array,
            ret: JniRetType::Void,
        };
        assert_eq!(k.function_name(), "CallStaticVoidMethodA");
        let k = JniCallKey {
            kind: CallKind::Nonvirtual,
            style: ParamStyle::VaList,
            ret: JniRetType::Object,
        };
        assert_eq!(k.function_name(), "CallNonvirtualObjectMethodV");
    }

    #[test]
    fn ret_type_matching() {
        use jvmsim_classfile::ReturnType;
        let void: ReturnType = ReturnType::Void;
        let int: ReturnType = "(I)I"
            .parse::<jvmsim_classfile::MethodDescriptor>()
            .unwrap()
            .return_type()
            .clone();
        let float: ReturnType = "()F"
            .parse::<jvmsim_classfile::MethodDescriptor>()
            .unwrap()
            .return_type()
            .clone();
        let obj: ReturnType = "()Ljava/lang/String;"
            .parse::<jvmsim_classfile::MethodDescriptor>()
            .unwrap()
            .return_type()
            .clone();
        assert!(JniRetType::Void.matches(&void));
        assert!(!JniRetType::Void.matches(&int));
        assert!(JniRetType::Int.matches(&int));
        assert!(JniRetType::Long.matches(&int));
        assert!(JniRetType::Boolean.matches(&int));
        assert!(!JniRetType::Int.matches(&float));
        assert!(JniRetType::Double.matches(&float));
        assert!(JniRetType::Float.matches(&float));
        assert!(JniRetType::Object.matches(&obj));
        assert!(!JniRetType::Object.matches(&int));
    }

    #[test]
    fn intercept_all_wraps_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut table = JniFunctionTable::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let wrapped = Arc::new(AtomicUsize::new(0));
        {
            let wrapped = Arc::clone(&wrapped);
            table.intercept_all(move |_key, original| {
                wrapped.fetch_add(1, Ordering::Relaxed);
                let hits = Arc::clone(&hits);
                Arc::new(move |env, spec| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    original(env, spec)
                })
            });
        }
        assert_eq!(wrapped.load(Ordering::Relaxed), 90);
    }
}
