//! The runtime class registry: linking, layouts, method resolution, and
//! per-method tier state.
//!
//! All class, method, field and descriptor names are interned into a
//! registry-wide [`Interner`] at link time. Resolution on the interpreter's
//! hot paths compares [`Sym`] integers instead of hashing `String`s — the
//! naive per-call `HashMap<String, _>` lookup (the pattern toy JVMs like
//! Birbe__jvm exhibit) never appears after linking.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use jvmsim_classfile::constpool::Constant;
use jvmsim_classfile::{ClassFile, Code, MethodInfo, Type};
use jvmsim_tiers::Tier;

use crate::error::VmError;
use crate::events::MethodView;
use crate::value::Value;

/// An interned string: a dense index into the registry's [`Interner`].
///
/// Two `Sym`s from the *same* interner are equal iff their strings are
/// equal, so symbol comparison and symbol-keyed map lookups do no string
/// hashing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Raw interner index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Registry-wide string interner. Strings are interned once at classfile
/// link time; everything after linking moves [`Sym`]s around.
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Intern `s`, returning its symbol (inserting on first sight).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.index.get(s) {
            return Sym(i);
        }
        let i = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Sym(i)
    }

    /// The symbol for `s` if it was ever interned. Never inserts, so it is
    /// safe on lookup paths: a string nobody interned cannot name anything.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied().map(Sym)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics on a symbol from a different interner (VM bug).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A pre-resolved method call site (one pool `MethodRef`), parsed and
/// interned once at link time so the interpreter's hot path does no
/// string work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Referenced class name.
    pub class: String,
    /// Method name.
    pub name: String,
    /// Method descriptor string.
    pub descriptor: String,
    /// Interned referenced-class name.
    pub class_sym: Sym,
    /// Interned method name.
    pub name_sym: Sym,
    /// Interned descriptor.
    pub desc_sym: Sym,
    /// Declared parameter count (receiver *not* included).
    pub nargs: usize,
    /// Does the callee push a result?
    pub returns_value: bool,
}

/// A pre-resolved field reference (one pool `FieldRef`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSite {
    /// Referenced class name.
    pub class: String,
    /// Field name.
    pub name: String,
    /// Interned field name.
    pub name_sym: Sym,
}

/// Identifier of a linked class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// Raw registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[cfg(test)]
    pub(crate) fn for_test(raw: u32) -> ClassId {
        ClassId(raw)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Identifier of a method within a linked class — the `jmethodID` analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId {
    /// Declaring class.
    pub class: ClassId,
    /// Index into the class's method list.
    pub index: u16,
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#m{}", self.class, self.index)
    }
}

/// One instance-field slot in an object layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSlot {
    /// Field name.
    pub name: String,
    /// Declared type (drives the zero value).
    pub ty: Type,
}

/// A linked class.
#[derive(Debug)]
pub struct RuntimeClass {
    /// This class's id.
    pub id: ClassId,
    /// Internal name.
    pub name: String,
    /// Interned internal name.
    pub name_sym: Sym,
    /// Superclass, `None` only for the root.
    pub super_id: Option<ClassId>,
    /// Methods, cloned out of the classfile at link time.
    pub methods: Vec<MethodInfo>,
    /// Instance-field layout *including inherited slots* (super first).
    pub instance_layout: Vec<FieldSlot>,
    /// Interned field name → slot in `instance_layout` (inherited names
    /// included; shadowing resolves to the most-derived declaration).
    pub instance_index: HashMap<Sym, usize>,
    /// Static field storage for fields this class declares.
    pub statics: Vec<Value>,
    /// Interned static field name → slot in `statics`.
    pub static_index: HashMap<Sym, usize>,
    /// Interned method `(name, descriptor)` → index in `methods`.
    method_index: HashMap<(Sym, Sym), u16>,
    /// Has `<clinit>` run (or been scheduled)?
    pub clinit_started: bool,
    /// Per-method invocation counters (tier-promotion profiling).
    pub invocations: Vec<u32>,
    /// Per-method execution tier.
    pub tiers: Vec<Tier>,
    /// Shared method bodies (parallel to `methods`; `None` for natives).
    pub code: Vec<Option<Arc<Code>>>,
    /// Threaded-engine bodies (parallel to `methods`), filled lazily on
    /// first execution. A direct slot rather than a map: the lookup is on
    /// every bytecode invocation's hot path.
    pub(crate) prepared: Vec<Option<Arc<crate::prepared::PreparedCode>>>,
    /// Pool index → pre-resolved call site, for `invokestatic`/`invokevirtual`.
    pub callsites: HashMap<u16, CallSite>,
    /// Pool index → pre-resolved field reference.
    pub fieldsites: HashMap<u16, FieldSite>,
    /// Pool index → class name, for `new`.
    pub classrefs: HashMap<u16, String>,
    /// Pool index → string constant, for `ldc`.
    pub strings: HashMap<u16, String>,
}

impl RuntimeClass {
    /// Number of instance-field slots (inherited included).
    pub fn instance_slots(&self) -> usize {
        self.instance_layout.len()
    }

    /// Zero values for a fresh instance.
    pub fn field_defaults(&self) -> Vec<Value> {
        self.instance_layout
            .iter()
            .map(|f| Value::default_for(&f.ty))
            .collect()
    }

    /// Look up a declared method by interned name + descriptor.
    pub fn find_method_sym(&self, name: Sym, descriptor: Sym) -> Option<u16> {
        self.method_index.get(&(name, descriptor)).copied()
    }
}

/// The registry of linked classes.
#[derive(Debug, Default)]
pub struct ClassRegistry {
    classes: Vec<RuntimeClass>,
    by_name: HashMap<String, ClassId>,
    interner: Interner,
}

impl ClassRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of linked classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The registry-wide string interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a string into the registry's interner.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// Id of a linked class by name.
    pub fn id_of(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Borrow a linked class.
    ///
    /// # Panics
    ///
    /// Panics on an id not issued by this registry (VM bug).
    pub fn get(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id.index()]
    }

    /// Mutably borrow a linked class.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id (VM bug).
    pub fn get_mut(&mut self, id: ClassId) -> &mut RuntimeClass {
        &mut self.classes[id.index()]
    }

    /// Borrow a method.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id (VM bug).
    pub fn method(&self, id: MethodId) -> &MethodInfo {
        &self.classes[id.class.index()].methods[id.index as usize]
    }

    /// Bytecode instruction count of a method (0 for natives) — the size
    /// input to the tier compile-cost model.
    pub fn insn_count(&self, id: MethodId) -> usize {
        self.classes[id.class.index()].code[id.index as usize]
            .as_ref()
            .map_or(0, |c| c.insns.len())
    }

    /// Build the event-callback view of a method.
    pub fn method_view(&self, id: MethodId) -> MethodView<'_> {
        let class = self.get(id.class);
        let m = &class.methods[id.index as usize];
        MethodView {
            id,
            class_name: &class.name,
            name: m.name(),
            descriptor: m.descriptor_string(),
            is_native: m.is_native(),
        }
    }

    /// Link a decoded classfile. The superclass must already be linked
    /// (callers load bottom-up).
    ///
    /// # Errors
    ///
    /// [`VmError::BadHierarchy`] if the superclass is missing, or a
    /// duplicate definition of the same name.
    pub fn define(&mut self, class: &ClassFile) -> Result<ClassId, VmError> {
        if self.by_name.contains_key(class.name()) {
            return Err(VmError::BadHierarchy(format!(
                "class {} defined twice",
                class.name()
            )));
        }
        let super_id = match class.super_name() {
            None => None,
            Some(s) => Some(self.id_of(s).ok_or_else(|| {
                VmError::BadHierarchy(format!("superclass {s} of {} not linked", class.name()))
            })?),
        };
        // Instance layout: inherited slots first, then own. The symbol
        // index clones cheaply because the interner is registry-wide.
        let (mut instance_layout, mut instance_index) = match super_id {
            Some(sid) => {
                let sup = self.get(sid);
                (sup.instance_layout.clone(), sup.instance_index.clone())
            }
            None => (Vec::new(), HashMap::new()),
        };
        let mut statics = Vec::new();
        let mut static_index = HashMap::new();
        for f in class.fields() {
            let sym = self.interner.intern(f.name());
            if f.is_static() {
                static_index.insert(sym, statics.len());
                statics.push(Value::default_for(f.ty()));
            } else {
                // Shadowing: most-derived wins in the name index, but the
                // inherited slot remains in the layout.
                instance_index.insert(sym, instance_layout.len());
                instance_layout.push(FieldSlot {
                    name: f.name().to_owned(),
                    ty: f.ty().clone(),
                });
            }
        }
        let methods: Vec<MethodInfo> = class.methods().to_vec();
        let mut method_index = HashMap::new();
        for (i, m) in methods.iter().enumerate() {
            let name = self.interner.intern(m.name());
            let desc = self.interner.intern(m.descriptor_string());
            method_index.insert((name, desc), i as u16);
        }
        let code: Vec<Option<Arc<Code>>> = methods
            .iter()
            .map(|m| m.code.clone().map(Arc::new))
            .collect();
        // Pre-resolve pool entries the interpreter dereferences, interning
        // every name a resolve path will ever compare.
        let mut callsites = HashMap::new();
        let mut fieldsites = HashMap::new();
        let mut classrefs = HashMap::new();
        let mut strings = HashMap::new();
        for (i, entry) in class.pool.entries().iter().enumerate() {
            let idx = i as u16;
            let cp = jvmsim_classfile::CpIndex(idx);
            match entry {
                Constant::Utf8(s) => {
                    strings.insert(idx, s.clone());
                }
                Constant::Class { .. } => {
                    if let Ok(name) = class.pool.class_name(cp) {
                        classrefs.insert(idx, name.to_owned());
                    }
                }
                Constant::MethodRef { .. } => {
                    if let Ok(r) = class.pool.method_ref(cp) {
                        if let Ok(desc) = r.descriptor.parse::<jvmsim_classfile::MethodDescriptor>()
                        {
                            callsites.insert(
                                idx,
                                CallSite {
                                    class_sym: self.interner.intern(&r.class),
                                    name_sym: self.interner.intern(&r.name),
                                    desc_sym: self.interner.intern(&r.descriptor),
                                    class: r.class,
                                    name: r.name,
                                    nargs: desc.param_slots(),
                                    returns_value: desc.return_type().is_value(),
                                    descriptor: r.descriptor,
                                },
                            );
                        }
                    }
                }
                Constant::FieldRef { .. } => {
                    if let Ok(r) = class.pool.field_ref(cp) {
                        fieldsites.insert(
                            idx,
                            FieldSite {
                                name_sym: self.interner.intern(&r.name),
                                class: r.class,
                                name: r.name,
                            },
                        );
                    }
                }
            }
        }
        let id = ClassId(u32::try_from(self.classes.len()).expect("too many classes"));
        let n = methods.len();
        let name_sym = self.interner.intern(class.name());
        self.classes.push(RuntimeClass {
            id,
            name: class.name().to_owned(),
            name_sym,
            super_id,
            methods,
            instance_layout,
            instance_index,
            statics,
            static_index,
            method_index,
            clinit_started: false,
            invocations: vec![0; n],
            tiers: vec![Tier::Interp; n],
            code,
            prepared: vec![None; n],
            callsites,
            fieldsites,
            classrefs,
            strings,
        });
        self.by_name.insert(class.name().to_owned(), id);
        Ok(id)
    }

    /// Look up a method declared *directly* on `class` by string name +
    /// descriptor (no superclass walk). Cold-path convenience over
    /// [`RuntimeClass::find_method_sym`].
    pub fn find_method(&self, class: ClassId, name: &str, descriptor: &str) -> Option<u16> {
        let name = self.interner.lookup(name)?;
        let desc = self.interner.lookup(descriptor)?;
        self.get(class).find_method_sym(name, desc)
    }

    /// Resolve interned `(name, descriptor)` starting at `class` and
    /// walking the superclass chain — used for both static and virtual
    /// dispatch. The hot path: integer-keyed map hits, zero string work.
    pub fn resolve_method_sym(
        &self,
        class: ClassId,
        name: Sym,
        descriptor: Sym,
    ) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            let rc = self.get(cid);
            if let Some(index) = rc.find_method_sym(name, descriptor) {
                return Some(MethodId { class: cid, index });
            }
            cur = rc.super_id;
        }
        None
    }

    /// Resolve `(name, descriptor)` by string, walking the superclass
    /// chain. Cold paths only (harness entry, JNI lookups, tests); a name
    /// that was never interned cannot resolve to anything.
    pub fn resolve_method(&self, class: ClassId, name: &str, descriptor: &str) -> Option<MethodId> {
        let name = self.interner.lookup(name)?;
        let descriptor = self.interner.lookup(descriptor)?;
        self.resolve_method_sym(class, name, descriptor)
    }

    /// Resolve a static field by interned name, walking the superclass
    /// chain. Returns the declaring class and slot.
    pub fn resolve_static_sym(&self, class: ClassId, field: Sym) -> Option<(ClassId, usize)> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            let rc = self.get(cid);
            if let Some(&slot) = rc.static_index.get(&field) {
                return Some((cid, slot));
            }
            cur = rc.super_id;
        }
        None
    }

    /// Resolve a static field by string name (cold paths and tests).
    pub fn resolve_static(&self, class: ClassId, field: &str) -> Option<(ClassId, usize)> {
        let field = self.interner.lookup(field)?;
        self.resolve_static_sym(class, field)
    }

    /// Resolve an instance-field slot by interned name for objects whose
    /// dynamic class is `class` (the index already folds in inheritance
    /// and shadowing).
    pub fn resolve_instance_field_sym(&self, class: ClassId, field: Sym) -> Option<usize> {
        self.get(class).instance_index.get(&field).copied()
    }

    /// Resolve an instance-field slot by string name (cold paths and tests).
    pub fn resolve_instance_field(&self, class: ClassId, field: &str) -> Option<usize> {
        let field = self.interner.lookup(field)?;
        self.resolve_instance_field_sym(class, field)
    }

    /// Record one invocation of `id`, returning the new saturating count.
    /// The caller (the tier pipeline in the interpreter) compares the
    /// count against the active threshold and performs any promotion.
    pub fn note_invocation(&mut self, id: MethodId) -> u32 {
        let rc = &mut self.classes[id.class.index()];
        let i = id.index as usize;
        let count = rc.invocations[i].saturating_add(1);
        rc.invocations[i] = count;
        count
    }

    /// The method's current tier, ignoring whether compilation is enabled.
    pub fn tier_of(&self, id: MethodId) -> Tier {
        self.classes[id.class.index()].tiers[id.index as usize]
    }

    /// The tier the method actually executes at: its recorded tier, or
    /// `Interp` when compilation is off (`jit_enabled = false` freezes
    /// everything interpreted — including methods compiled earlier;
    /// HotSpot deoptimises when an agent enables method events, and we
    /// model the steady state).
    pub fn effective_tier(&self, id: MethodId, jit_enabled: bool) -> Tier {
        if jit_enabled {
            self.tier_of(id)
        } else {
            Tier::Interp
        }
    }

    /// Set the method's tier (promotion or demotion).
    pub fn set_tier(&mut self, id: MethodId, tier: Tier) {
        self.classes[id.class.index()].tiers[id.index as usize] = tier;
    }

    /// Reset the method's invocation counter (after a compile, an aborted
    /// compile, or a deoptimization).
    pub fn reset_invocations(&mut self, id: MethodId) {
        self.classes[id.class.index()].invocations[id.index as usize] = 0;
    }

    /// Is the method currently running compiled code (and is the JIT on)?
    pub fn is_compiled(&self, id: MethodId, jit_enabled: bool) -> bool {
        self.effective_tier(id, jit_enabled).is_compiled()
    }

    /// Iterate over linked class names (diagnostics).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(|c| c.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim_classfile::builder::ClassBuilder;
    use jvmsim_classfile::{FieldFlags, MethodFlags, OBJECT_CLASS};

    fn object_class() -> ClassFile {
        ClassBuilder::new(OBJECT_CLASS).finish().unwrap()
    }

    fn registry_with_object() -> (ClassRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let oid = reg.define(&object_class()).unwrap();
        (reg, oid)
    }

    fn class_ab() -> (ClassFile, ClassFile) {
        let mut a = ClassBuilder::new("t/A");
        a.field("x", "I", FieldFlags::EMPTY).unwrap();
        a.field("s", "I", FieldFlags::STATIC).unwrap();
        let mut m = a.method("id", "()I", MethodFlags::PUBLIC);
        m.iconst(1).ireturn();
        m.finish().unwrap();
        let a = a.finish().unwrap();

        let mut b = ClassBuilder::new("t/B");
        b.extends("t/A");
        b.field("y", "F", FieldFlags::EMPTY).unwrap();
        let mut m = b.method("id", "()I", MethodFlags::PUBLIC);
        m.iconst(2).ireturn();
        m.finish().unwrap();
        let b = b.finish().unwrap();
        (a, b)
    }

    #[test]
    fn define_and_lookup() {
        let (mut reg, _) = registry_with_object();
        let (a, b) = class_ab();
        let aid = reg.define(&a).unwrap();
        let bid = reg.define(&b).unwrap();
        assert_eq!(reg.id_of("t/A"), Some(aid));
        assert_eq!(reg.id_of("t/B"), Some(bid));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.get(bid).super_id, Some(aid));
    }

    #[test]
    fn super_must_be_linked_first() {
        let (mut reg, _) = registry_with_object();
        let (_, b) = class_ab();
        let err = reg.define(&b).unwrap_err();
        assert!(matches!(err, VmError::BadHierarchy(_)));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let (mut reg, _) = registry_with_object();
        let (a, _) = class_ab();
        reg.define(&a).unwrap();
        assert!(matches!(reg.define(&a), Err(VmError::BadHierarchy(_))));
    }

    #[test]
    fn instance_layout_includes_supers() {
        let (mut reg, _) = registry_with_object();
        let (a, b) = class_ab();
        reg.define(&a).unwrap();
        let bid = reg.define(&b).unwrap();
        let rb = reg.get(bid);
        assert_eq!(rb.instance_slots(), 2); // x from A, y from B
        assert_eq!(reg.resolve_instance_field(bid, "x"), Some(0));
        assert_eq!(reg.resolve_instance_field(bid, "y"), Some(1));
        assert_eq!(rb.field_defaults(), vec![Value::Int(0), Value::Float(0.0)]);
    }

    #[test]
    fn virtual_dispatch_picks_most_derived() {
        let (mut reg, _) = registry_with_object();
        let (a, b) = class_ab();
        let aid = reg.define(&a).unwrap();
        let bid = reg.define(&b).unwrap();
        let on_b = reg.resolve_method(bid, "id", "()I").unwrap();
        assert_eq!(on_b.class, bid);
        let on_a = reg.resolve_method(aid, "id", "()I").unwrap();
        assert_eq!(on_a.class, aid);
        // Inherited resolution: a method only on A found from B.
        assert!(reg.resolve_method(bid, "missing", "()V").is_none());
    }

    #[test]
    fn static_field_resolution_walks_supers() {
        let (mut reg, _) = registry_with_object();
        let (a, b) = class_ab();
        let aid = reg.define(&a).unwrap();
        let bid = reg.define(&b).unwrap();
        assert_eq!(reg.resolve_static(bid, "s"), Some((aid, 0)));
        assert_eq!(reg.resolve_static(bid, "nope"), None);
    }

    #[test]
    fn interning_is_idempotent_and_symbols_compare_equal() {
        let mut i = Interner::default();
        let a1 = i.intern("t/A");
        let a2 = i.intern("t/A");
        let b = i.intern("t/B");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(i.lookup("t/A"), Some(a1));
        assert_eq!(i.lookup("never"), None);
        assert_eq!(i.resolve(b), "t/B");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn sym_resolution_matches_string_resolution() {
        let (mut reg, _) = registry_with_object();
        let (a, b) = class_ab();
        reg.define(&a).unwrap();
        let bid = reg.define(&b).unwrap();
        let name = reg.interner().lookup("id").unwrap();
        let desc = reg.interner().lookup("()I").unwrap();
        assert_eq!(
            reg.resolve_method_sym(bid, name, desc),
            reg.resolve_method(bid, "id", "()I")
        );
        let x = reg.interner().lookup("x").unwrap();
        assert_eq!(
            reg.resolve_instance_field_sym(bid, x),
            reg.resolve_instance_field(bid, "x")
        );
        let s = reg.interner().lookup("s").unwrap();
        assert_eq!(reg.resolve_static_sym(bid, s), reg.resolve_static(bid, "s"));
    }

    #[test]
    fn tier_state_promotes_and_demotes() {
        let (mut reg, _) = registry_with_object();
        let (a, _) = class_ab();
        let aid = reg.define(&a).unwrap();
        let mid = reg.resolve_method(aid, "id", "()I").unwrap();
        assert_eq!(reg.tier_of(mid), Tier::Interp);
        for want in 1..=9u32 {
            assert_eq!(reg.note_invocation(mid), want);
        }
        reg.set_tier(mid, Tier::C1);
        assert_eq!(reg.tier_of(mid), Tier::C1);
        assert!(reg.is_compiled(mid, true));
        // JIT off hides compiled state.
        assert_eq!(reg.effective_tier(mid, false), Tier::Interp);
        assert!(!reg.is_compiled(mid, false));
        reg.reset_invocations(mid);
        assert_eq!(reg.note_invocation(mid), 1);
        reg.set_tier(mid, Tier::Interp);
        assert_eq!(reg.tier_of(mid), Tier::Interp);
    }

    #[test]
    fn insn_count_is_zero_for_natives() {
        let (mut reg, _) = registry_with_object();
        let mut c = ClassBuilder::new("t/N");
        c.native_method("nat", "(I)I", MethodFlags::PUBLIC).unwrap();
        let mut m = c.method("f", "()I", MethodFlags::PUBLIC);
        m.iconst(1).ireturn();
        m.finish().unwrap();
        let cid = reg.define(&c.finish().unwrap()).unwrap();
        let nat = reg.resolve_method(cid, "nat", "(I)I").unwrap();
        let f = reg.resolve_method(cid, "f", "()I").unwrap();
        assert_eq!(reg.insn_count(nat), 0);
        assert!(reg.insn_count(f) > 0);
    }

    #[test]
    fn method_view_exposes_nativeness() {
        let (mut reg, _) = registry_with_object();
        let mut c = ClassBuilder::new("t/N");
        c.native_method("nat", "(I)I", MethodFlags::PUBLIC).unwrap();
        let cid = reg.define(&c.finish().unwrap()).unwrap();
        let mid = reg.resolve_method(cid, "nat", "(I)I").unwrap();
        let view = reg.method_view(mid);
        assert!(view.is_native);
        assert_eq!(view.class_name, "t/N");
        assert_eq!(view.name, "nat");
        assert_eq!(view.descriptor, "(I)I");
    }
}
