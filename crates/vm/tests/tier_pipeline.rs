//! Tiered-execution oracles: hand-computed promotion points.
//!
//! The cost model pins exact constants (`interp_insn` 8 / `c1_insn` 2 /
//! `c2_insn` 1, call overheads 30/8/4, thresholds C1=20 / C2=200 /
//! OSR=200, compile charges 50 and 200 per instruction), so every cycle
//! a run charges is computable by hand. These tests build tiny methods
//! with known instruction counts and loop trip counts and assert the
//! *exact* per-tier cycle ledger, OSR/compile counts, and the
//! tier-transition event sequence — on both dispatch engines, at every
//! point of the `--tiers` axis.

use std::sync::Mutex;

use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::{Cond, MethodFlags};
use jvmsim_vm::{
    DispatchMode, MethodId, ThreadId, TiersMode, TraceEventKind, TraceSink, Value, Vm, VmStats,
};
use proptest::prelude::*;

/// Collects every trace event in emission order.
#[derive(Default)]
struct CollectingSink {
    events: Mutex<Vec<(TraceEventKind, u64, Option<MethodId>)>>,
}

impl TraceSink for CollectingSink {
    fn record(&self, _t: ThreadId, kind: TraceEventKind, cycles: u64, method: Option<MethodId>) {
        self.events.lock().unwrap().push((kind, cycles, method));
    }
}

/// `f(n)`: count `i` from 0 to `n` with one backward branch per
/// iteration. Exactly 9 instructions; 2 prologue + 5 per continuing
/// iteration + 5 on the exit path (final check + return).
fn loop_class() -> jvmsim_classfile::ClassFile {
    let mut cb = ClassBuilder::new("tier/Loop");
    let mut m = cb.method("f", "(I)I", MethodFlags::STATIC);
    let top = m.new_label();
    let done = m.new_label();
    m.iconst(0).istore(1);
    m.bind(top);
    m.iload(1).iload(0).if_icmp(Cond::Ge, done);
    m.iinc(1, 1);
    m.goto(top);
    m.bind(done);
    m.iload(1).ireturn();
    m.finish().unwrap();
    cb.finish().unwrap()
}

struct LoopRun {
    stats: VmStats,
    result: i64,
    /// Tier-transition events only, in order.
    transitions: Vec<(TraceEventKind, u64)>,
    /// The full event stream (for engine differentials).
    events: Vec<(TraceEventKind, u64, Option<MethodId>)>,
}

fn run_loop(n: i64, mode: TiersMode, dispatch: DispatchMode) -> LoopRun {
    let mut vm = Vm::new();
    vm.set_tiers_mode(mode);
    vm.set_dispatch(dispatch);
    let sink = std::sync::Arc::new(CollectingSink::default());
    vm.set_trace_sink(sink.clone());
    vm.add_classfile(&loop_class());
    let result = match vm
        .call_static("tier/Loop", "f", "(I)I", vec![Value::Int(n)])
        .expect("link")
        .expect("no exception")
    {
        Value::Int(v) => v,
        other => panic!("non-int {other:?}"),
    };
    let events = sink.events.lock().unwrap().clone();
    let transitions = events
        .iter()
        .filter(|(k, _, _)| {
            matches!(
                k,
                TraceEventKind::MethodCompile
                    | TraceEventKind::TierUpC1
                    | TraceEventKind::TierUpC2
                    | TraceEventKind::Osr
                    | TraceEventKind::Deopt
            )
        })
        .map(|&(k, c, _)| (k, c))
        .collect();
    LoopRun {
        stats: vm.stats(),
        result,
        transitions,
        events,
    }
}

/// 500 iterations under `full`: the 200th backward branch OSRs the
/// running frame to C1, the 400th to C2, and the last 100 iterations run
/// at the top tier. Every cycle is hand-computed.
#[test]
fn osr_oracle_full_pipeline() {
    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let run = run_loop(500, TiersMode::Full, dispatch);
        assert_eq!(run.result, 500);
        let s = run.stats;
        // 2 prologue + 200 iterations x 5 insns before the first OSR.
        assert_eq!(s.interp_cycles, 1002 * 8 + 30, "{dispatch:?}");
        // Iterations 201..=400 at C1.
        assert_eq!(s.c1_cycles, 1000 * 2, "{dispatch:?}");
        // Iterations 401..=500 plus the 5-insn exit path at C2.
        assert_eq!(s.c2_cycles, 505, "{dispatch:?}");
        // f is 9 instructions: compile charges are 9x50 and 9x200.
        assert_eq!(s.c1_compile_cycles, 450, "{dispatch:?}");
        assert_eq!(s.c2_compile_cycles, 1800, "{dispatch:?}");
        assert_eq!(
            (s.osrs, s.c1_compiles, s.c2_compiles, s.deopts),
            (2, 1, 1, 0),
            "{dispatch:?}"
        );
        assert_eq!(s.insns, 2507, "{dispatch:?}");
        // Transition ordinals: legacy MethodCompile fires on the first
        // departure from the interpreter only.
        let kinds: Vec<TraceEventKind> = run.transitions.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::MethodCompile,
                TraceEventKind::TierUpC1,
                TraceEventKind::Osr,
                TraceEventKind::TierUpC2,
                TraceEventKind::Osr,
            ],
            "{dispatch:?}"
        );
    }
}

/// Same loop under `tiered`: the C1 ceiling stops the second OSR.
#[test]
fn osr_oracle_respects_the_c1_ceiling() {
    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let run = run_loop(500, TiersMode::Tiered, dispatch);
        let s = run.stats;
        assert_eq!(s.interp_cycles, 1002 * 8 + 30, "{dispatch:?}");
        // Iterations 201..=500 plus the exit path all stay at C1.
        assert_eq!(s.c1_cycles, 1505 * 2, "{dispatch:?}");
        assert_eq!(s.c2_cycles, 0, "{dispatch:?}");
        assert_eq!(s.c1_compile_cycles, 450, "{dispatch:?}");
        assert_eq!(s.c2_compile_cycles, 0, "{dispatch:?}");
        assert_eq!(
            (s.osrs, s.c1_compiles, s.c2_compiles),
            (1, 1, 0),
            "{dispatch:?}"
        );
    }
}

/// Same loop under `interp-only`: back-edges are never even counted.
#[test]
fn osr_oracle_interp_only_never_promotes() {
    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let run = run_loop(500, TiersMode::InterpOnly, dispatch);
        let s = run.stats;
        assert_eq!(s.interp_cycles, 2507 * 8 + 30, "{dispatch:?}");
        assert_eq!(s.c1_cycles + s.c2_cycles, 0, "{dispatch:?}");
        assert_eq!(s.c1_compile_cycles + s.c2_compile_cycles, 0, "{dispatch:?}");
        assert_eq!((s.osrs, s.c1_compiles, s.c2_compiles), (0, 0, 0));
        assert!(run.transitions.is_empty(), "{dispatch:?}");
    }
}

/// Invocation-counter promotion: a 2-instruction method crosses the C1
/// threshold on its 20th call and the C2 threshold on its 200th.
#[test]
fn invocation_threshold_oracle() {
    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let mut cb = ClassBuilder::new("tier/Hot");
        let mut m = cb.method("g", "()I", MethodFlags::STATIC);
        m.iconst(7).ireturn();
        m.finish().unwrap();
        let class = cb.finish().unwrap();
        let mut vm = Vm::new();
        vm.set_dispatch(dispatch);
        vm.add_classfile(&class);
        for _ in 0..200 {
            let v = vm
                .call_static("tier/Hot", "g", "()I", vec![])
                .expect("link")
                .expect("no exception");
            assert_eq!(v, Value::Int(7));
        }
        let s = vm.stats();
        // Calls 1..=19 interpreted: 2 insns x 8 + 30 overhead each.
        assert_eq!(s.interp_cycles, 19 * (2 * 8 + 30), "{dispatch:?}");
        // Call 20 compiles to C1 and runs there; calls 20..=199 at C1.
        assert_eq!(s.c1_cycles, 180 * (2 * 2 + 8), "{dispatch:?}");
        // Call 200 compiles to C2 and runs there.
        assert_eq!(s.c2_cycles, 2 + 4, "{dispatch:?}");
        assert_eq!(s.c1_compile_cycles, 2 * 50, "{dispatch:?}");
        assert_eq!(s.c2_compile_cycles, 2 * 200, "{dispatch:?}");
        assert_eq!((s.c1_compiles, s.c2_compiles, s.osrs), (1, 1, 0));
    }
}

/// An exception unwinding out of a compiled activation deoptimizes: the
/// method drops back to the interpreter and must re-earn promotion.
#[test]
fn unhandled_throw_from_compiled_tier_deopts() {
    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let mut cb = ClassBuilder::new("tier/Thrower");
        let mut m = cb.method("h", "(I)I", MethodFlags::STATIC);
        // 100 / x: throws ArithmeticException when x == 0.
        m.iconst(100).iload(0).idiv().ireturn();
        m.finish().unwrap();
        let class = cb.finish().unwrap();
        let mut vm = Vm::new();
        vm.set_dispatch(dispatch);
        vm.add_classfile(&class);
        // Promote to C1 with benign calls.
        for _ in 0..25 {
            vm.call_static("tier/Thrower", "h", "(I)I", vec![Value::Int(5)])
                .expect("link")
                .expect("benign");
        }
        assert_eq!(vm.stats().c1_compiles, 1, "{dispatch:?}");
        // Throw out of the C1 activation.
        let thrown = vm
            .call_static("tier/Thrower", "h", "(I)I", vec![Value::Int(0)])
            .expect("link");
        assert_eq!(
            thrown.unwrap_err().class_name,
            "java/lang/ArithmeticException",
            "{dispatch:?}"
        );
        assert_eq!(vm.stats().deopts, 1, "{dispatch:?}");
        // The next benign call runs interpreted again (the counter reset).
        let interp_before = vm.stats().interp_cycles;
        vm.call_static("tier/Thrower", "h", "(I)I", vec![Value::Int(5)])
            .expect("link")
            .expect("benign");
        assert!(
            vm.stats().interp_cycles > interp_before,
            "{dispatch:?}: post-deopt call must charge interpreter cycles"
        );
    }
}

/// The `tier-compile-abort` fault site at full rate: every compile
/// attempt is thrown away half-charged, the method never leaves the
/// interpreter, the invocation counter re-arms — and the bucket ledger
/// still partitions the PCL total exactly.
#[test]
fn tier_compile_abort_half_charges_and_keeps_the_ledger_exact() {
    use jvmsim_faults::{FaultInjector, FaultPlan, FaultSite, PPM};
    use jvmsim_metrics::{Bucket, MetricsRegistry};

    for dispatch in [DispatchMode::Switch, DispatchMode::Threaded] {
        let mut cb = ClassBuilder::new("tier/Hot");
        let mut m = cb.method("g", "()I", MethodFlags::STATIC);
        m.iconst(7).ireturn();
        m.finish().unwrap();
        let class = cb.finish().unwrap();
        let mut vm = Vm::new();
        vm.set_dispatch(dispatch);
        let metrics = MetricsRegistry::new();
        vm.set_metrics(metrics.clone());
        vm.set_fault_injector(std::sync::Arc::new(FaultInjector::new(
            FaultPlan::new(11).with_rate(FaultSite::TierCompileAbort, PPM),
        )));
        vm.add_classfile(&class);
        let pcl = vm.pcl();
        for _ in 0..100 {
            let v = vm
                .call_static("tier/Hot", "g", "()I", vec![])
                .expect("link")
                .expect("no exception");
            assert_eq!(v, Value::Int(7));
        }
        let s = vm.stats();
        // The counter re-arms after each abort, so the compile is
        // re-attempted (and re-aborted) every 20th call: 5 aborts in 100
        // calls, each charging half the 2-insn C1 compile cost (50).
        assert_eq!(s.tier_compile_aborts, 5, "{dispatch:?}");
        assert_eq!((s.c1_compiles, s.c2_compiles, s.osrs), (0, 0, 0));
        assert_eq!(s.c1_compile_cycles, 5 * 50, "{dispatch:?}");
        assert_eq!(s.c1_cycles + s.c2_cycles, 0, "{dispatch:?}");
        assert_eq!(s.interp_cycles, 100 * (2 * 8 + 30), "{dispatch:?}");
        // Chaos-checked invariant: the half-charges landed in the compile
        // bucket and the ledger still sums to the PCL total exactly.
        let snap = metrics.snapshot();
        assert_eq!(snap.bucket_cycles(Bucket::C1Compile), 5 * 50);
        assert_eq!(snap.total_cycles(), pcl.total_cycles(), "{dispatch:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine differential: for any trip count and tiers mode, the
    /// switch and threaded engines produce identical results, identical
    /// `VmStats` (per-tier cycle columns included), and an identical
    /// trace event stream — cycles-at-emission and all.
    #[test]
    fn dispatch_engines_are_byte_identical(
        n in 0i64..700,
        mode_ix in 0usize..3,
    ) {
        let mode = [TiersMode::InterpOnly, TiersMode::Tiered, TiersMode::Full][mode_ix];
        let a = run_loop(n, mode, DispatchMode::Switch);
        let b = run_loop(n, mode, DispatchMode::Threaded);
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.events, b.events);
    }
}
