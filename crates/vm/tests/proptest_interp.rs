//! Property test: the interpreter computes what the bytecode says.
//!
//! Random integer expression trees are compiled to bytecode with the
//! assembler and evaluated both by a reference Rust evaluator and by the
//! VM; results must agree exactly (including wrapping arithmetic and
//! division-by-zero exceptions). Additionally, JIT state must never change
//! results: interpreted-only and JIT-enabled runs agree.

use jvmsim_classfile::builder::{ClassBuilder, MethodBuilder};
use jvmsim_classfile::MethodFlags;
use jvmsim_vm::{Value, Vm};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Arg(u8), // 0..3
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Rem(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    // if a >= b { c } else { d }
    IfGe(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Reference semantics; `None` models a thrown ArithmeticException.
fn eval(e: &Expr, args: &[i64; 3]) -> Option<i64> {
    Some(match e {
        Expr::Const(c) => *c,
        Expr::Arg(i) => args[*i as usize % 3],
        Expr::Add(a, b) => eval(a, args)?.wrapping_add(eval(b, args)?),
        Expr::Sub(a, b) => eval(a, args)?.wrapping_sub(eval(b, args)?),
        Expr::Mul(a, b) => eval(a, args)?.wrapping_mul(eval(b, args)?),
        Expr::Div(a, b) => {
            let (x, y) = (eval(a, args)?, eval(b, args)?);
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        Expr::Rem(a, b) => {
            let (x, y) = (eval(a, args)?, eval(b, args)?);
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        Expr::Neg(a) => eval(a, args)?.wrapping_neg(),
        Expr::And(a, b) => eval(a, args)? & eval(b, args)?,
        Expr::Or(a, b) => eval(a, args)? | eval(b, args)?,
        Expr::Xor(a, b) => eval(a, args)? ^ eval(b, args)?,
        Expr::IfGe(a, b, c, d) => {
            if eval(a, args)? >= eval(b, args)? {
                eval(c, args)?
            } else {
                eval(d, args)?
            }
        }
    })
}

/// Compile the expression onto the operand stack.
fn compile(e: &Expr, m: &mut MethodBuilder<'_>) {
    match e {
        Expr::Const(c) => {
            m.iconst(*c);
        }
        Expr::Arg(i) => {
            m.iload(u16::from(*i % 3));
        }
        Expr::Add(a, b) => {
            compile(a, m);
            compile(b, m);
            m.iadd();
        }
        Expr::Sub(a, b) => {
            compile(a, m);
            compile(b, m);
            m.isub();
        }
        Expr::Mul(a, b) => {
            compile(a, m);
            compile(b, m);
            m.imul();
        }
        Expr::Div(a, b) => {
            compile(a, m);
            compile(b, m);
            m.idiv();
        }
        Expr::Rem(a, b) => {
            compile(a, m);
            compile(b, m);
            m.irem();
        }
        Expr::Neg(a) => {
            compile(a, m);
            m.ineg();
        }
        Expr::And(a, b) => {
            compile(a, m);
            compile(b, m);
            m.iand();
        }
        Expr::Or(a, b) => {
            compile(a, m);
            compile(b, m);
            m.ior();
        }
        Expr::Xor(a, b) => {
            compile(a, m);
            compile(b, m);
            m.ixor();
        }
        Expr::IfGe(a, b, c, d) => {
            let else_l = m.new_label();
            let end_l = m.new_label();
            compile(a, m);
            compile(b, m);
            m.if_icmp(jvmsim_classfile::Cond::Lt, else_l);
            compile(c, m);
            m.goto(end_l);
            m.bind(else_l);
            compile(d, m);
            m.bind(end_l);
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Const),
        (0u8..3).prop_map(Expr::Arg),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c, d)| Expr::IfGe(a.into(), b.into(), c.into(), d.into())),
        ]
    })
}

fn run_in_vm(expr: &Expr, args: [i64; 3], jit: bool) -> Result<i64, String> {
    let mut cb = ClassBuilder::new("pt/Expr");
    let mut m = cb.method("eval", "(III)I", MethodFlags::STATIC);
    compile(expr, &mut m);
    m.ireturn();
    m.finish().map_err(|e| e.to_string())?;
    let class = cb.finish().map_err(|e| e.to_string())?;
    let mut vm = Vm::new();
    vm.set_jit_requested(jit);
    vm.add_classfile(&class);
    let result = vm
        .call_static(
            "pt/Expr",
            "eval",
            "(III)I",
            args.iter().map(|&a| Value::Int(a)).collect(),
        )
        .map_err(|e| e.to_string())?;
    match result {
        Ok(Value::Int(v)) => Ok(v),
        Ok(other) => Err(format!("non-int result {other:?}")),
        Err(info) => Err(info.class_name),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn interpreter_matches_reference_semantics(
        expr in arb_expr(),
        a in -100i64..100,
        b in -100i64..100,
        c in -100i64..100,
    ) {
        let args = [a, b, c];
        let expected = eval(&expr, &args);
        let got = run_in_vm(&expr, args, true);
        match (expected, got) {
            (Some(v), Ok(w)) => prop_assert_eq!(v, w),
            (None, Err(class)) => {
                prop_assert_eq!(class, "java/lang/ArithmeticException".to_owned());
            }
            (exp, got) => prop_assert!(false, "mismatch: expected {:?}, got {:?}", exp, got),
        }
    }

    #[test]
    fn jit_never_changes_results(
        expr in arb_expr(),
        a in -100i64..100,
    ) {
        let args = [a, a ^ 3, a.wrapping_mul(7)];
        let jit = run_in_vm(&expr, args, true);
        let interp = run_in_vm(&expr, args, false);
        prop_assert_eq!(jit, interp);
    }
}
