//! Behavioural tests for the simulated JVM: execution semantics, exception
//! handling, native linkage (with prefix retry), JNI upcalls and
//! interception, events, JIT promotion, threads and class loading.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jvmsim_classfile::builder::{single_method_class, ClassBuilder};
use jvmsim_classfile::{Cond, FieldFlags, MethodFlags};
use jvmsim_vm::jni::{JniRetType, NativeLibrary, ParamStyle};
use jvmsim_vm::{builtins, EventMask, MethodView, ThreadId, Value, Vm, VmEventSink};

const ST: MethodFlags = MethodFlags::STATIC;

fn run_expr(build: impl FnOnce(&mut jvmsim_classfile::builder::MethodBuilder<'_>)) -> Value {
    let class = single_method_class("t/Expr", "eval", "()I", build).unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    vm.call_static("t/Expr", "eval", "()I", vec![])
        .unwrap()
        .unwrap()
}

#[test]
fn arithmetic_and_control_flow() {
    // sum of 1..=10 via a loop
    let class = single_method_class("t/Sum", "sum", "(I)I", |m| {
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(1);
        m.bind(top);
        m.iload(0).if_(Cond::Le, done);
        m.iload(1).iload(0).iadd().istore(1);
        m.iinc(0, -1).goto(top);
        m.bind(done);
        m.iload(1).ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let r = vm
        .call_static("t/Sum", "sum", "(I)I", vec![Value::Int(10)])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(55));
}

#[test]
fn division_by_zero_throws_and_is_catchable() {
    let class = single_method_class("t/Div", "f", "()I", |m| {
        let start = m.new_label();
        let end = m.new_label();
        let handler = m.new_label();
        m.bind(start);
        m.iconst(1).iconst(0).idiv().ireturn();
        m.bind(end);
        m.bind(handler);
        m.pop(); // discard exception
        m.iconst(-7).ireturn();
        m.try_region(start, end, handler, Some("java/lang/ArithmeticException"));
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let r = vm
        .call_static("t/Div", "f", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(-7));
}

#[test]
fn uncaught_exception_escapes_with_class_and_message() {
    let class = single_method_class("t/Crash", "f", "()I", |m| {
        m.iconst(1).iconst(0).irem().ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Crash", "f", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/ArithmeticException");
    assert_eq!(err.message.as_deref(), Some("/ by zero"));
}

#[test]
fn catch_matches_superclasses_but_not_siblings() {
    // Throws NullPointerException; handler catches RuntimeException.
    let class = single_method_class("t/Super", "f", "()I", |m| {
        let start = m.new_label();
        let end = m.new_label();
        let handler = m.new_label();
        m.bind(start);
        m.aconst_null().invokevirtual("t/Super", "whatever", "()V");
        m.iconst(0).ireturn();
        m.bind(end);
        m.bind(handler);
        m.pop().iconst(42).ireturn();
        m.try_region(start, end, handler, Some("java/lang/RuntimeException"));
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let r = vm
        .call_static("t/Super", "f", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(42));

    // Same throw with an ArithmeticException handler: escapes.
    let class = single_method_class("t/Sib", "f", "()I", |m| {
        let start = m.new_label();
        let end = m.new_label();
        let handler = m.new_label();
        m.bind(start);
        m.aconst_null().invokevirtual("t/Sib", "whatever", "()V");
        m.iconst(0).ireturn();
        m.bind(end);
        m.bind(handler);
        m.pop().iconst(42).ireturn();
        m.try_region(start, end, handler, Some("java/lang/ArithmeticException"));
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Sib", "f", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/NullPointerException");
}

#[test]
fn finally_style_catch_all_runs_on_throw() {
    // Counter static field incremented in a catch-all that rethrows.
    let mut cb = ClassBuilder::new("t/Fin");
    cb.field("cleanups", "I", FieldFlags::STATIC).unwrap();
    let mut m = cb.method("f", "()V", ST);
    let start = m.new_label();
    let end = m.new_label();
    let handler = m.new_label();
    m.bind(start);
    m.iconst(1).iconst(0).idiv().pop().ret_void();
    m.bind(end);
    m.bind(handler);
    m.getstatic("t/Fin", "cleanups", "I").iconst(1).iadd();
    m.putstatic("t/Fin", "cleanups", "I");
    m.athrow();
    m.try_region(start, end, handler, None);
    m.finish().unwrap();
    let mut mg = cb.method("cleanups", "()I", ST);
    mg.getstatic("t/Fin", "cleanups", "I").ireturn();
    mg.finish().unwrap();
    let class = cb.finish().unwrap();

    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Fin", "f", "()V", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/ArithmeticException");
    let count = vm
        .call_static("t/Fin", "cleanups", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(count, Value::Int(1));
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    let mut a = ClassBuilder::new("t/A");
    a.field("v", "I", FieldFlags::PUBLIC).unwrap();
    let mut m = a.method("get", "()I", MethodFlags::PUBLIC);
    m.aload(0).getfield("t/A", "v", "I").ireturn();
    m.finish().unwrap();
    let a = a.finish().unwrap();

    let mut b = ClassBuilder::new("t/B");
    b.extends("t/A");
    let mut m = b.method("get", "()I", MethodFlags::PUBLIC);
    m.aload(0)
        .getfield("t/A", "v", "I")
        .iconst(100)
        .iadd()
        .ireturn();
    m.finish().unwrap();
    let b = b.finish().unwrap();

    let main = single_method_class("t/Main", "main", "()I", |m| {
        // new A(v=1).get() + new B(v=2).get()  => 1 + 102 = 103
        m.new_obj("t/A").astore(0);
        m.aload(0).iconst(1).putfield("t/A", "v", "I");
        m.new_obj("t/B").astore(1);
        m.aload(1).iconst(2).putfield("t/A", "v", "I");
        m.aload(0).invokevirtual("t/A", "get", "()I");
        m.aload(1).invokevirtual("t/A", "get", "()I");
        m.iadd().ireturn();
    })
    .unwrap();

    let mut vm = Vm::new();
    vm.add_classfile(&a);
    vm.add_classfile(&b);
    vm.add_classfile(&main);
    let r = vm
        .call_static("t/Main", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(103));
}

#[test]
fn arrays_bounds_and_kinds() {
    let r = run_expr(|m| {
        m.iconst(5)
            .newarray(jvmsim_classfile::ArrayKind::Int)
            .astore(0);
        m.aload(0).iconst(2).iconst(77).iastore();
        m.aload(0).iconst(2).iaload();
        m.aload(0).arraylength().iadd().ireturn();
    });
    assert_eq!(r, Value::Int(82));

    // Out of bounds
    let class = single_method_class("t/Oob", "f", "()I", |m| {
        m.iconst(2)
            .newarray(jvmsim_classfile::ArrayKind::Int)
            .astore(0);
        m.aload(0).iconst(5).iaload().ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Oob", "f", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/ArrayIndexOutOfBoundsException");

    // Negative size
    let class = single_method_class("t/Neg", "f", "()I", |m| {
        m.iconst(-3)
            .newarray(jvmsim_classfile::ArrayKind::Int)
            .arraylength()
            .ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Neg", "f", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/NegativeArraySizeException");
}

#[test]
fn clinit_runs_once_before_first_use() {
    let mut cb = ClassBuilder::new("t/Init");
    cb.field("inits", "I", FieldFlags::STATIC).unwrap();
    let mut m = cb.method("<clinit>", "()V", ST);
    m.getstatic("t/Init", "inits", "I").iconst(1).iadd();
    m.putstatic("t/Init", "inits", "I").ret_void();
    m.finish().unwrap();
    let mut m = cb.method("get", "()I", ST);
    m.getstatic("t/Init", "inits", "I").ireturn();
    m.finish().unwrap();
    let class = cb.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    assert_eq!(
        vm.call_static("t/Init", "get", "()I", vec![])
            .unwrap()
            .unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        vm.call_static("t/Init", "get", "()I", vec![])
            .unwrap()
            .unwrap(),
        Value::Int(1),
        "clinit must not run twice"
    );
}

#[test]
fn deep_recursion_throws_stack_overflow() {
    let class = single_method_class("t/Rec", "f", "(I)I", |m| {
        m.iload(0).iconst(1).iadd();
        m.invokestatic("t/Rec", "f", "(I)I").ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.set_max_call_depth(200);
    vm.add_classfile(&class);
    let err = vm
        .call_static("t/Rec", "f", "(I)I", vec![Value::Int(0)])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/StackOverflowError");
}

// ---------------------------------------------------------------- natives

fn native_lib() -> NativeLibrary {
    let mut lib = NativeLibrary::new("testnat");
    lib.register_method("t/Nat", "twice", |env, args| {
        env.work(100);
        Ok(Value::Int(args[0].as_int() * 2))
    });
    lib
}

#[test]
fn native_method_resolution_and_execution() {
    let mut cb = ClassBuilder::new("t/Nat");
    cb.native_method("twice", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(21)
        .invokestatic("t/Nat", "twice", "(I)I")
        .ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(native_lib(), true);
    let r = vm
        .call_static("t/Nat", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(42));
    assert_eq!(vm.stats().native_calls, 1);
    assert!(vm.stats().native_cycles >= 100);
}

#[test]
fn missing_native_library_throws_unsatisfied_link() {
    let mut cb = ClassBuilder::new("t/Nat");
    cb.native_method("twice", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(21)
        .invokestatic("t/Nat", "twice", "(I)I")
        .ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    // No library registered.
    let err = vm
        .call_static("t/Nat", "main", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/UnsatisfiedLinkError");
    assert!(err.message.unwrap().contains("Java_t_Nat_twice"));
}

#[test]
fn native_prefix_retry_binds_renamed_method() {
    // The instrumented world: the native method was renamed to
    // $$ipa$$twice but the library still exports Java_t_Nat_twice.
    let mut cb = ClassBuilder::new("t/Nat");
    cb.native_method("$$ipa$$twice", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(21)
        .invokestatic("t/Nat", "$$ipa$$twice", "(I)I")
        .ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(native_lib(), true);

    // Without the prefix registered: link error.
    let err = vm
        .call_static("t/Nat", "main", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/UnsatisfiedLinkError");

    // With the prefix registered: resolution retries without the prefix.
    let mut vm = Vm::new();
    let mut cb = ClassBuilder::new("t/Nat");
    cb.native_method("$$ipa$$twice", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(21)
        .invokestatic("t/Nat", "$$ipa$$twice", "(I)I")
        .ireturn();
    m.finish().unwrap();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(native_lib(), true);
    vm.register_native_prefix("$$ipa$$");
    let r = vm
        .call_static("t/Nat", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(42));
}

#[test]
fn native_exception_propagates_to_java_handler() {
    let mut lib = NativeLibrary::new("thrower");
    lib.register_method("t/T", "boom", |env, _| {
        Err(env.throw_new("java/lang/IllegalArgumentException", "from native"))
    });
    let mut cb = ClassBuilder::new("t/T");
    cb.native_method("boom", "()V", ST).unwrap();
    let mut m = cb.method("main", "()I", ST);
    let start = m.new_label();
    let end = m.new_label();
    let handler = m.new_label();
    m.bind(start);
    m.invokestatic("t/T", "boom", "()V");
    m.iconst(0).ireturn();
    m.bind(end);
    m.bind(handler);
    m.pop().iconst(9).ireturn();
    m.try_region(
        start,
        end,
        handler,
        Some("java/lang/IllegalArgumentException"),
    );
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    let r = vm
        .call_static("t/T", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(9));
}

// ------------------------------------------------------------ JNI upcalls

#[test]
fn native_code_calls_java_through_jni_table() {
    // Native method calls back into Java: callback(x) = x + 5.
    let mut lib = NativeLibrary::new("upcall");
    lib.register_method("t/U", "viaJni", |env, args| {
        env.work(50);
        env.call_static(
            JniRetType::Int,
            ParamStyle::Varargs,
            "t/U",
            "callback",
            "(I)I",
            &[args[0]],
        )
    });
    let mut cb = ClassBuilder::new("t/U");
    cb.native_method("viaJni", "(I)I", ST).unwrap();
    let mut m = cb.method("callback", "(I)I", ST);
    m.iload(0).iconst(5).iadd().ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(10).invokestatic("t/U", "viaJni", "(I)I").ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    let r = vm
        .call_static("t/U", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(15));
    assert_eq!(vm.stats().jni_upcalls, 1);
}

#[test]
fn jni_return_family_mismatch_is_detected() {
    let mut lib = NativeLibrary::new("bad");
    lib.register_method("t/U", "viaJni", |env, args| {
        // CallFloatMethod against an (I)I method: family mismatch.
        env.call_static(
            JniRetType::Float,
            ParamStyle::Array,
            "t/U",
            "callback",
            "(I)I",
            &[args[0]],
        )
    });
    let mut cb = ClassBuilder::new("t/U");
    cb.native_method("viaJni", "(I)I", ST).unwrap();
    let mut m = cb.method("callback", "(I)I", ST);
    m.iload(0).ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(1).invokestatic("t/U", "viaJni", "(I)I").ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    let err = vm
        .call_static("t/U", "main", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/InternalError");
    assert!(err.message.unwrap().contains("CallStaticFloatMethodA"));
}

#[test]
fn jni_table_interception_sees_upcalls() {
    let hits = Arc::new(AtomicU64::new(0));
    let mut lib = NativeLibrary::new("upcall");
    lib.register_method("t/U", "viaJni", |env, args| {
        env.call_static(
            JniRetType::Int,
            ParamStyle::VaList,
            "t/U",
            "callback",
            "(I)I",
            &[args[0]],
        )
    });
    let mut cb = ClassBuilder::new("t/U");
    cb.native_method("viaJni", "(I)I", ST).unwrap();
    let mut m = cb.method("callback", "(I)I", ST);
    m.iload(0).ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(3).invokestatic("t/U", "viaJni", "(I)I").ireturn();
    m.finish().unwrap();

    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    {
        let hits = Arc::clone(&hits);
        vm.jni_table_mut().intercept_all(move |_key, original| {
            let hits = Arc::clone(&hits);
            Arc::new(move |env, spec| {
                hits.fetch_add(1, Ordering::Relaxed);
                original(env, spec)
            })
        });
    }
    let r = vm
        .call_static("t/U", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(3));
    assert_eq!(hits.load(Ordering::Relaxed), 1);
}

// ---------------------------------------------------------------- events

#[derive(Default)]
struct CountingSink {
    entries: AtomicU64,
    exits: AtomicU64,
    native_entries: AtomicU64,
    exceptional_exits: AtomicU64,
    thread_starts: AtomicU64,
    thread_ends: AtomicU64,
    deaths: AtomicU64,
}

impl VmEventSink for CountingSink {
    fn method_entry(&self, _t: ThreadId, m: MethodView<'_>) {
        self.entries.fetch_add(1, Ordering::Relaxed);
        if m.is_native {
            self.native_entries.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn method_exit(&self, _t: ThreadId, _m: MethodView<'_>, via_exception: bool) {
        self.exits.fetch_add(1, Ordering::Relaxed);
        if via_exception {
            self.exceptional_exits.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn thread_start(&self, _t: ThreadId) {
        self.thread_starts.fetch_add(1, Ordering::Relaxed);
    }
    fn thread_end(&self, _t: ThreadId) {
        self.thread_ends.fetch_add(1, Ordering::Relaxed);
    }
    fn vm_death(&self) {
        self.deaths.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn method_events_fire_for_bytecode_and_native_and_balance() {
    let mut cb = ClassBuilder::new("t/E");
    cb.native_method("nat", "()V", ST).unwrap();
    let mut m = cb.method("leaf", "()V", ST);
    m.ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()V", ST);
    m.invokestatic("t/E", "leaf", "()V");
    m.invokestatic("t/E", "nat", "()V");
    m.ret_void();
    m.finish().unwrap();
    let mut lib = NativeLibrary::new("n");
    lib.register_method("t/E", "nat", |_env, _| Ok(Value::Null));

    let sink = Arc::new(CountingSink::default());
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    vm.set_event_sink(Arc::clone(&sink) as Arc<dyn VmEventSink>);
    vm.set_event_mask(EventMask::all());
    let outcome = vm.run("t/E", "main", "()V", vec![]).unwrap();
    assert!(outcome.main.is_ok());
    // main + leaf + nat = 3 entries, 3 exits, 1 native entry.
    assert_eq!(sink.entries.load(Ordering::Relaxed), 3);
    assert_eq!(sink.exits.load(Ordering::Relaxed), 3);
    assert_eq!(sink.native_entries.load(Ordering::Relaxed), 1);
    assert_eq!(sink.exceptional_exits.load(Ordering::Relaxed), 0);
    // Primordial thread: no ThreadStart, but a ThreadEnd; one VMDeath.
    assert_eq!(sink.thread_starts.load(Ordering::Relaxed), 0);
    assert_eq!(sink.thread_ends.load(Ordering::Relaxed), 1);
    assert_eq!(sink.deaths.load(Ordering::Relaxed), 1);
}

#[test]
fn method_exit_reports_exceptional_unwind() {
    let class = single_method_class("t/Ex", "main", "()V", |m| {
        m.iconst(1).iconst(0).idiv().pop().ret_void();
    })
    .unwrap();
    let sink = Arc::new(CountingSink::default());
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    vm.set_event_sink(Arc::clone(&sink) as Arc<dyn VmEventSink>);
    vm.set_event_mask(EventMask::all());
    let outcome = vm.run("t/Ex", "main", "()V", vec![]).unwrap();
    assert!(outcome.main.is_err());
    assert_eq!(sink.exceptional_exits.load(Ordering::Relaxed), 1);
}

#[test]
fn enabling_method_events_disables_jit() {
    let mut vm = Vm::new();
    assert!(vm.jit_enabled());
    vm.set_event_mask(EventMask {
        method_events: true,
        ..EventMask::none()
    });
    assert!(!vm.jit_enabled());
    vm.set_event_mask(EventMask::none());
    assert!(vm.jit_enabled());
    vm.set_jit_requested(false);
    assert!(!vm.jit_enabled());
}

fn hot_loop_class() -> jvmsim_classfile::ClassFile {
    // main calls leaf() 10_000 times.
    let mut cb = ClassBuilder::new("t/Hot");
    let mut m = cb.method("leaf", "(I)I", ST);
    m.iload(0).iconst(3).imul().ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    let top = m.new_label();
    let done = m.new_label();
    m.iconst(10_000).istore(0).iconst(0).istore(1);
    m.bind(top);
    m.iload(0).if_(Cond::Le, done);
    m.iload(1).invokestatic("t/Hot", "leaf", "(I)I").istore(1);
    m.iinc(0, -1).goto(top);
    m.bind(done);
    m.iload(1).ireturn();
    m.finish().unwrap();
    cb.finish().unwrap()
}

#[test]
fn jit_makes_hot_code_much_faster() {
    let run = |jit: bool| -> u64 {
        let mut vm = Vm::new();
        vm.set_jit_requested(jit);
        vm.add_classfile(&hot_loop_class());
        let outcome = vm.run("t/Hot", "main", "()I", vec![]).unwrap();
        outcome.total_cycles
    };
    let jit_cycles = run(true);
    let interp_cycles = run(false);
    assert!(
        interp_cycles > 4 * jit_cycles,
        "interp {interp_cycles} vs jit {jit_cycles}"
    );
}

#[test]
fn method_events_cost_dwarfs_plain_execution() {
    // The SPA pathology: events on (JIT off) vs off.
    let run = |events: bool| -> u64 {
        let mut vm = Vm::new();
        vm.add_classfile(&hot_loop_class());
        if events {
            vm.set_event_sink(Arc::new(CountingSink::default()));
            vm.set_event_mask(EventMask::all());
        }
        let outcome = vm.run("t/Hot", "main", "()I", vec![]).unwrap();
        outcome.total_cycles
    };
    let plain = run(false);
    let evented = run(true);
    assert!(
        evented > 20 * plain,
        "events {evented} vs plain {plain}: SPA-style overhead must be catastrophic"
    );
}

// ------------------------------------------------------------- threading

#[test]
fn spawned_threads_run_with_events_and_own_clocks() {
    let mut cb = ClassBuilder::new("t/Th");
    let mut m = cb.method("worker", "(I)V", ST);
    let top = m.new_label();
    let done = m.new_label();
    m.bind(top);
    m.iload(0).if_(Cond::Le, done);
    m.iinc(0, -1).goto(top);
    m.bind(done);
    m.ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()V", ST);
    m.ldc_str("w1")
        .ldc_str("t/Th")
        .ldc_str("worker")
        .iconst(1000);
    m.invokestatic(
        "java/lang/Threads",
        "start",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V",
    );
    m.ldc_str("w2")
        .ldc_str("t/Th")
        .ldc_str("worker")
        .iconst(2000);
    m.invokestatic(
        "java/lang/Threads",
        "start",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V",
    );
    m.ret_void();
    m.finish().unwrap();

    let sink = Arc::new(CountingSink::default());
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    // Interpreted-only so the two workers' cycle counts are directly
    // comparable (otherwise w1 warms the shared code cache for w2).
    vm.set_jit_requested(false);
    vm.add_classfile(&cb.finish().unwrap());
    vm.set_event_sink(Arc::clone(&sink) as Arc<dyn VmEventSink>);
    vm.set_event_mask(EventMask {
        thread_events: true,
        vm_death: true,
        ..EventMask::none()
    });
    let outcome = vm.run("t/Th", "main", "()V", vec![]).unwrap();
    assert_eq!(outcome.threads.len(), 3);
    assert_eq!(outcome.threads[1].name, "w1");
    assert_eq!(outcome.threads[2].name, "w2");
    assert!(outcome.threads.iter().all(|t| t.result.is_ok()));
    // w2 loops twice as long as w1.
    assert!(outcome.threads[2].cycles > outcome.threads[1].cycles);
    // Spawned threads get ThreadStart; primordial does not.
    assert_eq!(sink.thread_starts.load(Ordering::Relaxed), 2);
    assert_eq!(sink.thread_ends.load(Ordering::Relaxed), 3);
}

// -------------------------------------------------------- class loading

#[test]
fn class_file_load_hook_can_rewrite_classes() {
    // The hook swaps the whole classfile for one whose f() returns 7.
    struct Rewriter;
    impl VmEventSink for Rewriter {
        fn class_file_load(&self, class_name: &str, _bytes: &[u8]) -> Option<Vec<u8>> {
            if class_name != "t/Hooked" {
                return None;
            }
            let replacement = single_method_class("t/Hooked", "f", "()I", |m| {
                m.iconst(7).ireturn();
            })
            .unwrap();
            Some(jvmsim_classfile::codec::encode(&replacement))
        }
    }
    let original = single_method_class("t/Hooked", "f", "()I", |m| {
        m.iconst(1).ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&original);
    vm.set_event_sink(Arc::new(Rewriter));
    vm.set_event_mask(EventMask {
        class_file_load_hook: true,
        ..EventMask::none()
    });
    let r = vm
        .call_static("t/Hooked", "f", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(7));
}

#[test]
fn missing_class_is_a_vm_error() {
    let mut vm = Vm::new();
    let err = vm.call_static("no/Such", "f", "()V", vec![]).unwrap_err();
    assert!(matches!(err, jvmsim_vm::VmError::ClassNotFound(_)));
}

#[test]
fn corrupt_classfile_is_a_vm_error() {
    let mut vm = Vm::new();
    vm.add_class_bytes("t/Bad", vec![1, 2, 3]);
    let err = vm.call_static("t/Bad", "f", "()V", vec![]).unwrap_err();
    assert!(matches!(err, jvmsim_vm::VmError::ClassFormat { .. }));
}

// ---------------------------------------------------------------- builtins

#[test]
fn builtin_string_and_io_natives_work() {
    let mut cb = ClassBuilder::new("t/B");
    let mut m = cb.method("main", "()I", ST);
    // String.length("hello") + FileIO.read(open("x"), buf, 8)
    m.ldc_str("hello");
    m.invokestatic("java/lang/String", "length", "(Ljava/lang/String;)I");
    m.ldc_str("x");
    m.invokestatic("java/io/FileIO", "open", "(Ljava/lang/String;)I");
    m.istore(0);
    m.iconst(8)
        .newarray(jvmsim_classfile::ArrayKind::Int)
        .astore(1);
    m.iload(0).aload(1).iconst(8);
    m.invokestatic("java/io/FileIO", "read", "(I[II)I");
    m.iadd().ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&cb.finish().unwrap());
    let r = vm
        .call_static("t/B", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(5 + 8));
    assert!(vm.stats().native_calls >= 3);
}

#[test]
fn builtin_loadlibrary_gates_resolution() {
    // A class calling its own native method after System.loadLibrary.
    let mut cb = ClassBuilder::new("t/L");
    cb.native_method("nat", "()I", ST).unwrap();
    let mut m = cb.method("<clinit>", "()V", ST);
    m.ldc_str("mylib");
    m.invokestatic("java/lang/System", "loadLibrary", "(Ljava/lang/String;)V");
    m.ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.invokestatic("t/L", "nat", "()I").ireturn();
    m.finish().unwrap();

    let mut mylib = NativeLibrary::new("mylib");
    mylib.register_method("t/L", "nat", |_env, _| Ok(Value::Int(123)));

    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(mylib, false); // NOT auto-loaded
    let r = vm
        .call_static("t/L", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(123));
}

#[test]
fn run_outcome_reports_cycles_and_seconds() {
    let mut vm = Vm::new();
    vm.add_classfile(&hot_loop_class());
    let pcl = vm.pcl();
    let outcome = vm.run("t/Hot", "main", "()I", vec![]).unwrap();
    assert!(outcome.total_cycles > 0);
    let secs = outcome.seconds(&pcl);
    assert!(secs > 0.0 && secs < 1.0);
    assert_eq!(outcome.stats.invocations, 10_001);
}
