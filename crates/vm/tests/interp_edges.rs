//! Interpreter edge cases: IEEE semantics, shift masking, switch bounds,
//! aliasing arraycopy, nested handlers, inheritance, and builtin corners.

use jvmsim_classfile::builder::{single_method_class, ClassBuilder};
use jvmsim_classfile::{ArrayKind, Cond, FieldFlags, MethodFlags};
use jvmsim_vm::{builtins, Value, Vm};

const ST: MethodFlags = MethodFlags::STATIC;

fn eval_i(
    build: impl FnOnce(&mut jvmsim_classfile::builder::MethodBuilder<'_>),
) -> Result<i64, String> {
    let class = single_method_class("e/E", "f", "()I", build).unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    match vm
        .call_static("e/E", "f", "()I", vec![])
        .map_err(|e| e.to_string())?
    {
        Ok(Value::Int(v)) => Ok(v),
        Ok(other) => Err(format!("{other:?}")),
        Err(e) => Err(e.class_name),
    }
}

#[test]
fn fcmp_orders_nan_as_greater() {
    // 0.0 / 0.0 = NaN; fcmp(NaN, 1.0) must push 1 (fcmpg semantics).
    let v = eval_i(|m| {
        m.fconst(0.0).fconst(0.0).fdiv(); // NaN
        m.fconst(1.0).fcmp().ireturn();
    })
    .unwrap();
    assert_eq!(v, 1);
    // And symmetric: fcmp(1.0, NaN) is also 1.
    let v = eval_i(|m| {
        m.fconst(1.0);
        m.fconst(0.0).fconst(0.0).fdiv();
        m.fcmp().ireturn();
    })
    .unwrap();
    assert_eq!(v, 1);
}

#[test]
fn f2i_saturates_and_nan_is_zero() {
    let v = eval_i(|m| {
        m.fconst(1.0e300).f2i().ireturn();
    })
    .unwrap();
    assert_eq!(v, i64::MAX);
    let v = eval_i(|m| {
        m.fconst(-1.0e300).f2i().ireturn();
    })
    .unwrap();
    assert_eq!(v, i64::MIN);
    let v = eval_i(|m| {
        m.fconst(0.0).fconst(0.0).fdiv().f2i().ireturn();
    })
    .unwrap();
    assert_eq!(v, 0);
}

#[test]
fn shifts_mask_to_63_bits() {
    let v = eval_i(|m| {
        m.iconst(1).iconst(64).ishl().ireturn(); // 64 & 63 == 0
    })
    .unwrap();
    assert_eq!(v, 1);
    let v = eval_i(|m| {
        m.iconst(-8).iconst(1).iushr().ireturn();
    })
    .unwrap();
    assert_eq!(v, ((-8i64) as u64 >> 1) as i64);
    let v = eval_i(|m| {
        m.iconst(-8).iconst(1).ishr().ireturn();
    })
    .unwrap();
    assert_eq!(v, -4);
}

#[test]
fn integer_overflow_wraps() {
    let v = eval_i(|m| {
        m.iconst(i64::MAX).iconst(1).iadd().ireturn();
    })
    .unwrap();
    assert_eq!(v, i64::MIN);
    let v = eval_i(|m| {
        m.iconst(i64::MIN).iconst(-1).idiv().ireturn();
    })
    .unwrap();
    assert_eq!(v, i64::MIN, "MIN / -1 wraps instead of trapping");
}

#[test]
fn tableswitch_bounds() {
    let class = single_method_class("e/Sw", "pick", "(I)I", |m| {
        let c0 = m.new_label();
        let c1 = m.new_label();
        let def = m.new_label();
        m.iload(0).tableswitch(10, &[c0, c1], def);
        m.bind(c0);
        m.iconst(100).ireturn();
        m.bind(c1);
        m.iconst(101).ireturn();
        m.bind(def);
        m.iconst(-1).ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let pick = |vm: &mut Vm, k: i64| {
        vm.call_static("e/Sw", "pick", "(I)I", vec![Value::Int(k)])
            .unwrap()
            .unwrap()
    };
    assert_eq!(pick(&mut vm, 10), Value::Int(100));
    assert_eq!(pick(&mut vm, 11), Value::Int(101));
    assert_eq!(pick(&mut vm, 9), Value::Int(-1));
    assert_eq!(pick(&mut vm, 12), Value::Int(-1));
    assert_eq!(pick(&mut vm, i64::MIN), Value::Int(-1));
    assert_eq!(pick(&mut vm, i64::MAX), Value::Int(-1));
}

#[test]
fn nested_exception_handlers_inner_wins() {
    let class = single_method_class("e/N", "f", "()I", |m| {
        let outer_start = m.new_label();
        let outer_end = m.new_label();
        let outer_h = m.new_label();
        let inner_start = m.new_label();
        let inner_end = m.new_label();
        let inner_h = m.new_label();
        m.bind(outer_start);
        m.bind(inner_start);
        m.iconst(1).iconst(0).idiv().ireturn();
        m.bind(inner_end);
        m.bind(outer_end);
        m.bind(inner_h);
        m.pop().iconst(1).ireturn(); // inner handler
        m.bind(outer_h);
        m.pop().iconst(2).ireturn(); // outer handler
                                     // Inner region listed first: the table is searched in order.
        m.try_region(
            inner_start,
            inner_end,
            inner_h,
            Some("java/lang/ArithmeticException"),
        );
        m.try_region(outer_start, outer_end, outer_h, None);
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let r = vm.call_static("e/N", "f", "()I", vec![]).unwrap().unwrap();
    assert_eq!(r, Value::Int(1), "inner (first-listed) handler must win");
}

#[test]
fn handler_rethrow_reaches_outer_handler_in_caller() {
    // callee: catch-all that rethrows; caller catches.
    let mut cb = ClassBuilder::new("e/R");
    let mut m = cb.method("callee", "()V", ST);
    let s = m.new_label();
    let e = m.new_label();
    let h = m.new_label();
    m.bind(s);
    m.iconst(3).iconst(0).irem().pop().ret_void();
    m.bind(e);
    m.bind(h);
    m.athrow();
    m.try_region(s, e, h, None);
    m.finish().unwrap();
    let mut m = cb.method("caller", "()I", ST);
    let s = m.new_label();
    let e = m.new_label();
    let h = m.new_label();
    m.bind(s);
    m.invokestatic("e/R", "callee", "()V");
    m.iconst(0).ireturn();
    m.bind(e);
    m.bind(h);
    m.pop().iconst(5).ireturn();
    m.try_region(s, e, h, Some("java/lang/ArithmeticException"));
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    let r = vm
        .call_static("e/R", "caller", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(5));
}

#[test]
fn inherited_methods_resolve_through_super() {
    let mut a = ClassBuilder::new("e/Base");
    let mut m = a.method("answer", "()I", MethodFlags::PUBLIC);
    m.iconst(42).ireturn();
    m.finish().unwrap();
    let a = a.finish().unwrap();
    let b = ClassBuilder::new("e/Derived");
    let mut b = b;
    b.extends("e/Base");
    let b = b.finish().unwrap();
    let main = single_method_class("e/M", "f", "()I", |m| {
        m.new_obj("e/Derived")
            .invokevirtual("e/Derived", "answer", "()I");
        m.ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&a);
    vm.add_classfile(&b);
    vm.add_classfile(&main);
    let r = vm.call_static("e/M", "f", "()I", vec![]).unwrap().unwrap();
    assert_eq!(r, Value::Int(42));
}

#[test]
fn field_shadowing_resolves_to_most_derived() {
    let mut a = ClassBuilder::new("e/FA");
    a.field("v", "I", FieldFlags::PUBLIC).unwrap();
    let a = a.finish().unwrap();
    let mut b = ClassBuilder::new("e/FB");
    b.extends("e/FA");
    b.field("v", "I", FieldFlags::PUBLIC).unwrap(); // shadows
    let b = b.finish().unwrap();
    let main = single_method_class("e/FM", "f", "()I", |m| {
        m.new_obj("e/FB").astore(0);
        m.aload(0).iconst(9).putfield("e/FB", "v", "I");
        m.aload(0).getfield("e/FB", "v", "I").ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&a);
    vm.add_classfile(&b);
    vm.add_classfile(&main);
    let r = vm.call_static("e/FM", "f", "()I", vec![]).unwrap().unwrap();
    assert_eq!(r, Value::Int(9));
}

#[test]
fn clinit_exception_is_a_linkage_error() {
    let mut cb = ClassBuilder::new("e/BadInit");
    let mut m = cb.method("<clinit>", "()V", ST);
    m.iconst(1).iconst(0).idiv().pop().ret_void();
    m.finish().unwrap();
    let mut m = cb.method("f", "()I", ST);
    m.iconst(1).ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    let err = vm.call_static("e/BadInit", "f", "()I", vec![]).unwrap_err();
    assert!(err.to_string().contains("<clinit>"), "{err}");
}

#[test]
fn aliasing_arraycopy_behaves_like_memmove() {
    let class = single_method_class("e/AC", "f", "()I", |m| {
        // a = [0,1,2,3,4,5,6,7]; arraycopy(a,0,a,1,6); return a[1]*10+a[7]
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(8).newarray(ArrayKind::Int).astore(0);
        m.iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(8).if_icmp(Cond::Ge, done);
        m.aload(0).iload(1).iload(1).iastore();
        m.iinc(1, 1);
        m.goto(top);
        m.bind(done);
        m.aload(0).iconst(0).aload(0).iconst(1).iconst(6);
        m.invokestatic("java/lang/System", "arraycopy", "([II[III)V");
        m.aload(0).iconst(1).iaload().iconst(10).imul();
        m.aload(0).iconst(7).iaload().iadd();
        m.ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&class);
    let r = vm.call_static("e/AC", "f", "()I", vec![]).unwrap().unwrap();
    // Copy-out-then-in semantics: a[1] = old a[0] = 0; a[7] untouched = 7.
    assert_eq!(r, Value::Int(7));
}

#[test]
fn string_builtin_corner_cases() {
    let class = single_method_class("e/S", "f", "()I", |m| {
        // substring out of range must throw; catch and return charAt of an
        // interned concat instead.
        let s = m.new_label();
        let e = m.new_label();
        let h = m.new_label();
        m.bind(s);
        m.ldc_str("abc").iconst(1).iconst(99);
        m.invokestatic(
            "java/lang/String",
            "substring",
            "(Ljava/lang/String;II)Ljava/lang/String;",
        );
        m.pop().iconst(0).ireturn();
        m.bind(e);
        m.bind(h);
        m.pop();
        m.ldc_str("ab").ldc_str("cd");
        m.invokestatic(
            "java/lang/String",
            "concat",
            "(Ljava/lang/String;Ljava/lang/String;)Ljava/lang/String;",
        );
        m.iconst(2);
        m.invokestatic("java/lang/String", "charAt", "(Ljava/lang/String;I)I");
        m.ireturn();
        m.try_region(s, e, h, None);
    })
    .unwrap();
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&class);
    let r = vm.call_static("e/S", "f", "()I", vec![]).unwrap().unwrap();
    assert_eq!(r, Value::Int(i64::from(b'c')));
}

#[test]
fn equals_and_hashcode_builtins() {
    let class = single_method_class("e/Eq", "f", "()I", |m| {
        // equals("x","x")*2 + equals("x","y") + (hash("")==0)
        m.ldc_str("x").ldc_str("x");
        m.invokestatic(
            "java/lang/String",
            "equals",
            "(Ljava/lang/String;Ljava/lang/String;)I",
        );
        m.iconst(2).imul();
        m.ldc_str("x").ldc_str("y");
        m.invokestatic(
            "java/lang/String",
            "equals",
            "(Ljava/lang/String;Ljava/lang/String;)I",
        );
        m.iadd();
        m.ldc_str("");
        m.invokestatic("java/lang/String", "hashCode", "(Ljava/lang/String;)I");
        m.iadd();
        m.ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&class);
    let r = vm.call_static("e/Eq", "f", "()I", vec![]).unwrap().unwrap();
    assert_eq!(r, Value::Int(2));
}

#[test]
fn iinc_wraps_like_iadd() {
    let class = single_method_class("e/W", "f", "(I)I", |m| {
        m.iinc(0, i32::MAX);
        m.iinc(0, i32::MAX);
        m.iload(0).ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    let r = vm
        .call_static("e/W", "f", "(I)I", vec![Value::Int(i64::MAX - 100)])
        .unwrap()
        .unwrap();
    assert_eq!(
        r,
        Value::Int((i64::MAX - 100).wrapping_add(2 * i64::from(i32::MAX)))
    );
}
