//! Regression tests for defects found in code review: sampler termination,
//! JNI arity safety, clinit thread attribution, call-kind/static mismatch,
//! thread-local linkage failures, and shadowed-field resolution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jvmsim_classfile::builder::{single_method_class, ClassBuilder};
use jvmsim_classfile::{Cond, FieldFlags, MethodFlags};
use jvmsim_vm::events::SampleSink;
use jvmsim_vm::jni::{JniRetType, ParamStyle};
use jvmsim_vm::{builtins, NativeLibrary, ThreadId, Value, Vm};

const ST: MethodFlags = MethodFlags::STATIC;

struct CountSink(AtomicU64);
impl SampleSink for CountSink {
    fn sample(&self, _t: ThreadId, _n: bool) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn sampler_terminates_when_interval_is_below_dispatch_cost() {
    // interval (50) < sample_dispatch (400): every delivered sample pushes
    // the clock past several further due-points; the poll must still
    // terminate (it samples against a snapshot of the clock).
    let class = single_method_class("r/S", "main", "()I", |m| {
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(2_000).istore(0);
        m.bind(top);
        m.iload(0).if_(Cond::Le, done);
        m.iinc(0, -1).goto(top);
        m.bind(done);
        m.iconst(0).ireturn();
    })
    .unwrap();
    let sink = Arc::new(CountSink(AtomicU64::new(0)));
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    vm.set_sampler(50, Arc::clone(&sink) as Arc<dyn SampleSink>);
    let outcome = vm.run("r/S", "main", "()I", vec![]).unwrap();
    assert!(outcome.main.is_ok());
    assert!(sink.0.load(Ordering::Relaxed) > 0);
    assert_eq!(outcome.stats.samples_taken, sink.0.load(Ordering::Relaxed));
}

#[test]
fn jni_arity_mismatch_is_a_java_error_not_a_panic() {
    let mut cb = ClassBuilder::new("r/A");
    cb.native_method("go", "()V", ST).unwrap();
    let mut m = cb.method("target", "()I", ST);
    m.iconst(1).ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()V", ST);
    m.invokestatic("r/A", "go", "()V").ret_void();
    m.finish().unwrap();
    let mut lib = NativeLibrary::new("r");
    lib.register_method("r/A", "go", |env, _| {
        // Two args against a zero-arg method.
        env.call_static(
            JniRetType::Int,
            ParamStyle::Varargs,
            "r/A",
            "target",
            "()I",
            &[Value::Int(1), Value::Int(2)],
        )?;
        Ok(Value::Null)
    });
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    vm.register_native_library(lib, true);
    let err = vm
        .call_static("r/A", "main", "()V", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/InternalError");
    assert!(err.message.unwrap().contains("expected 0"));
}

#[test]
fn clinit_cycles_charge_the_loading_thread() {
    // Worker thread is the first user of r/Lazy (heavy <clinit>); its
    // cycles must land on the worker's clock, not main's.
    let mut lazy = ClassBuilder::new("r/Lazy");
    lazy.field("seed", "I", FieldFlags::STATIC).unwrap();
    let mut m = lazy.method("<clinit>", "()V", ST);
    let top = m.new_label();
    let done = m.new_label();
    m.iconst(50_000).istore(0);
    m.bind(top);
    m.iload(0).if_(Cond::Le, done);
    m.iinc(0, -1).goto(top);
    m.bind(done);
    m.iconst(7).putstatic("r/Lazy", "seed", "I");
    m.ret_void();
    m.finish().unwrap();
    let lazy = lazy.finish().unwrap();

    let mut cb = ClassBuilder::new("r/Main");
    let mut m = cb.method("worker", "(I)V", ST);
    m.getstatic("r/Lazy", "seed", "I").pop().ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()V", ST);
    m.ldc_str("w").ldc_str("r/Main").ldc_str("worker").iconst(0);
    m.invokestatic(
        "java/lang/Threads",
        "start",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V",
    );
    m.ret_void();
    m.finish().unwrap();

    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&lazy);
    vm.add_classfile(&cb.finish().unwrap());
    let outcome = vm.run("r/Main", "main", "()V", vec![]).unwrap();
    assert_eq!(outcome.threads.len(), 2);
    let main_cycles = outcome.threads[0].cycles;
    let worker_cycles = outcome.threads[1].cycles;
    assert!(
        worker_cycles > main_cycles,
        "clinit (~400k cycles) must be on the worker: main {main_cycles}, worker {worker_cycles}"
    );
}

#[test]
fn invokestatic_of_instance_method_throws() {
    let mut cb = ClassBuilder::new("r/K");
    let mut m = cb.method("inst", "()I", MethodFlags::PUBLIC); // instance!
    m.iconst(1).ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.invokestatic("r/K", "inst", "()I").ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    let err = vm
        .call_static("r/K", "main", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/NoSuchMethodError");
    assert!(err
        .message
        .unwrap()
        .contains("invokestatic of instance method"));
}

#[test]
fn invokevirtual_of_static_method_throws() {
    let mut cb = ClassBuilder::new("r/V");
    let mut m = cb.method("stat", "()I", ST);
    m.iconst(1).ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.new_obj("r/V")
        .invokevirtual("r/V", "stat", "()I")
        .ireturn();
    m.finish().unwrap();
    let mut vm = Vm::new();
    vm.add_classfile(&cb.finish().unwrap());
    let err = vm
        .call_static("r/V", "main", "()I", vec![])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/NoSuchMethodError");
    assert!(err
        .message
        .unwrap()
        .contains("invokevirtual of static method"));
}

#[test]
fn spawned_thread_linkage_error_is_thread_local() {
    let class = single_method_class("r/T", "main", "()I", |m| {
        m.ldc_str("bad").ldc_str("no/Such").ldc_str("run").iconst(0);
        m.invokestatic(
            "java/lang/Threads",
            "start",
            "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V",
        );
        m.iconst(42).ireturn();
    })
    .unwrap();
    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&class);
    let outcome = vm.run("r/T", "main", "()I", vec![]).unwrap();
    // Main's result survives; the bad thread records its failure.
    assert_eq!(outcome.main.unwrap(), Value::Int(42));
    assert_eq!(outcome.threads.len(), 2);
    let bad = outcome.threads[1].result.as_ref().unwrap_err();
    assert_eq!(bad.class_name, "java/lang/NoClassDefFoundError");
}

#[test]
fn superclass_methods_keep_their_own_shadowed_field() {
    // Super declares x and inc() { this.x += 1 } referencing Super.x;
    // Sub shadows x. inc() on a Sub must mutate Super's slot, and Sub's
    // own accessor must see Sub's slot untouched.
    let mut sup = ClassBuilder::new("r/Super");
    sup.field("x", "I", FieldFlags::PUBLIC).unwrap();
    let mut m = sup.method("inc", "()V", MethodFlags::PUBLIC);
    m.aload(0);
    m.aload(0).getfield("r/Super", "x", "I").iconst(1).iadd();
    m.putfield("r/Super", "x", "I");
    m.ret_void();
    m.finish().unwrap();
    let mut m = sup.method("superX", "()I", MethodFlags::PUBLIC);
    m.aload(0).getfield("r/Super", "x", "I").ireturn();
    m.finish().unwrap();
    let sup = sup.finish().unwrap();

    let mut sub = ClassBuilder::new("r/Sub");
    sub.extends("r/Super");
    sub.field("x", "I", FieldFlags::PUBLIC).unwrap(); // shadow
    let mut m = sub.method("subX", "()I", MethodFlags::PUBLIC);
    m.aload(0).getfield("r/Sub", "x", "I").ireturn();
    m.finish().unwrap();
    let sub = sub.finish().unwrap();

    let main = single_method_class("r/M", "main", "()I", |m| {
        m.new_obj("r/Sub").astore(0);
        // inc() twice through the inherited method.
        m.aload(0).invokevirtual("r/Sub", "inc", "()V");
        m.aload(0).invokevirtual("r/Sub", "inc", "()V");
        // result = superX * 10 + subX  → 2 * 10 + 0 = 20
        m.aload(0)
            .invokevirtual("r/Sub", "superX", "()I")
            .iconst(10)
            .imul();
        m.aload(0).invokevirtual("r/Sub", "subX", "()I").iadd();
        m.ireturn();
    })
    .unwrap();

    let mut vm = Vm::new();
    vm.add_classfile(&sup);
    vm.add_classfile(&sub);
    vm.add_classfile(&main);
    let r = vm
        .call_static("r/M", "main", "()I", vec![])
        .unwrap()
        .unwrap();
    assert_eq!(r, Value::Int(20), "Super.inc must touch Super.x, not Sub.x");
}
