//! jvmsim-cache — a content-addressed, verified-on-read cache for the
//! jvmsim stack.
//!
//! The paper's IPA agent earns its 0–20% overhead (Table I) by paying
//! instrumentation cost *once*, statically. The suite driver used to throw
//! that lesson away: every cell of every run re-instrumented its archive
//! from scratch, and every chaos seed repeated the whole deterministic
//! simulation. This crate memoizes both, on two planes:
//!
//! * [`Plane::Instrumentation`] — serialized instrumented archives, keyed
//!   by the digest of the input classfile bytes plus the wrapper
//!   configuration, shared by every cell and every chaos seed;
//! * [`Plane::CellResult`] — completed suite-cell rows, keyed by the full
//!   run identity (workload, size, agent, cost model, fault plan, bytes),
//!   sound because runs are bit-deterministic.
//!
//! Correctness is non-negotiable: every entry stores a SHA-256 of its
//! payload and **every hit re-verifies it**. An entry that fails
//! verification — disk rot, a concurrent writer torn mid-entry, or the
//! [`FaultSite::CacheCorrupt`] chaos site flipping a byte on read — is
//! quarantined and recomputed. A warm run can therefore never differ from
//! a cold run by a single byte; a poisoned cache costs time, never truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;

pub use digest::{Digest, Sha256};

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jvmsim_faults::{FaultInjector, FaultSite};
use jvmsim_metrics::{CounterId, MetricsShard};

/// Bumped whenever the entry layout or any key-derivation rule changes;
/// mixed into every [`KeyHasher`], so a new scheme simply never sees old
/// entries (invalidation by construction, no migration code). Version 2:
/// the agent axis widened the memoized cell row with ALLOC/LOCK columns.
/// Version 3: the tiered execution engine widened the row with per-tier
/// cycle columns and added the tiers mode to every result identity.
pub const CACHE_SCHEMA_VERSION: u32 = 3;

/// Entry file magic: `JVCE` (JVmsim Cache Entry).
const ENTRY_MAGIC: [u8; 4] = *b"JVCE";

/// magic(4) + version(4) + plane(1) + key(32) + payload digest(32) + len(8).
const HEADER_LEN: usize = 81;

/// Which cache plane an entry lives on. Planes are separate namespaces
/// (separate subdirectories) so a key collision across planes is
/// structurally impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// Memoized `Archive::instrument` output (serialized archives).
    Instrumentation,
    /// Memoized completed suite-cell results.
    CellResult,
}

impl Plane {
    /// Both planes, in tag order.
    pub const ALL: [Plane; 2] = [Plane::Instrumentation, Plane::CellResult];

    /// Subdirectory this plane's entries live in.
    #[must_use]
    pub const fn dir_name(self) -> &'static str {
        match self {
            Plane::Instrumentation => "instr",
            Plane::CellResult => "cell",
        }
    }

    /// Single-byte tag stored in the entry header.
    #[must_use]
    const fn tag(self) -> u8 {
        match self {
            Plane::Instrumentation => 1,
            Plane::CellResult => 2,
        }
    }
}

impl std::fmt::Display for Plane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.dir_name())
    }
}

/// A content-addressed cache key: the digest of every input that can
/// change the cached payload. Derive one with [`KeyHasher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(Digest);

impl CacheKey {
    /// Re-wrap an already-derived digest as a key. The normal path is
    /// [`KeyHasher`]; this exists for transports (peer fetch) that carry
    /// a key's digest over the wire and need to address the same entry
    /// on the receiving store. Lookups still digest-verify the payload,
    /// so a fabricated key can at worst miss.
    #[must_use]
    pub fn from_digest(digest: Digest) -> CacheKey {
        CacheKey(digest)
    }

    /// The underlying digest.
    #[must_use]
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// Entry file name for this key.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}.jvc", self.0.to_hex())
    }
}

/// Builds a [`CacheKey`] from named, length-prefixed fields so no two
/// distinct field sequences can collide by concatenation. The schema
/// version and a domain string are absorbed first: bumping
/// [`CACHE_SCHEMA_VERSION`] or renaming the domain invalidates every old
/// entry without touching the store.
#[derive(Clone)]
pub struct KeyHasher {
    h: Sha256,
}

impl KeyHasher {
    /// A hasher for the given key domain (e.g. `"instr-archive"`).
    #[must_use]
    pub fn new(domain: &str) -> KeyHasher {
        KeyHasher::with_version(domain, CACHE_SCHEMA_VERSION)
    }

    /// A hasher pinned to an explicit schema version — how tests fabricate
    /// pre-bump keys to prove old entries go quietly dark.
    fn with_version(domain: &str, version: u32) -> KeyHasher {
        let mut k = KeyHasher { h: Sha256::new() };
        k.h.update(&version.to_le_bytes());
        k.absorb(domain.as_bytes());
        k
    }

    fn absorb(&mut self, bytes: &[u8]) {
        self.h.update(&(bytes.len() as u64).to_le_bytes());
        self.h.update(bytes);
    }

    /// Absorb a named byte-string field.
    pub fn field_bytes(&mut self, name: &str, bytes: &[u8]) {
        self.absorb(name.as_bytes());
        self.absorb(bytes);
    }

    /// Absorb a named string field.
    pub fn field_str(&mut self, name: &str, s: &str) {
        self.field_bytes(name, s.as_bytes());
    }

    /// Absorb a named integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.field_bytes(name, &v.to_le_bytes());
    }

    /// Absorb a named digest field (e.g. a sub-object's content digest).
    pub fn field_digest(&mut self, name: &str, d: Digest) {
        self.field_bytes(name, &d.0);
    }

    /// Finalise into a key.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        CacheKey(self.h.finish())
    }
}

impl std::fmt::Debug for KeyHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeyHasher(..)")
    }
}

// Stats array slots.
const S_HITS: usize = 0;
const S_MISSES: usize = 1;
const S_STORES: usize = 2;
const S_QUARANTINED: usize = 3;
const S_BYTES_READ: usize = 4;
const S_BYTES_WRITTEN: usize = 5;
const S_EVICTED: usize = 6;
const S_COUNT: usize = 7;

/// A point-in-time snapshot of one store's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that verified and were served.
    pub hits: u64,
    /// Lookups that found no entry (or an unreadable one).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries that failed verification and were quarantined.
    pub quarantined: u64,
    /// Payload bytes served from the cache.
    pub bytes_read: u64,
    /// Payload bytes written into the cache.
    pub bytes_written: u64,
    /// Entries removed by bounded-store compaction.
    pub evicted: u64,
}

#[derive(Debug)]
struct StoreInner {
    root: PathBuf,
    stats: [AtomicU64; S_COUNT],
    tmp_seq: AtomicU64,
}

/// The content-addressed store: a directory with one subdirectory per
/// [`Plane`] plus a `quarantine/` pen for poisoned entries.
///
/// `CacheStore` is a cheap clonable handle; [`CacheStore::with_faults`]
/// and [`CacheStore::with_metrics`] derive scoped handles that share the
/// same directory and global [`CacheStats`] but consult a per-cell fault
/// injector or mirror into a per-cell metrics shard — how the suite driver
/// gives every cell its own accounting over one shared store.
#[derive(Debug, Clone)]
pub struct CacheStore {
    inner: Arc<StoreInner>,
    faults: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<MetricsShard>>,
    eviction_limit: Option<u64>,
}

impl CacheStore {
    /// Open (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<CacheStore> {
        let root = root.into();
        for plane in Plane::ALL {
            std::fs::create_dir_all(root.join(plane.dir_name()))?;
        }
        std::fs::create_dir_all(root.join("quarantine"))?;
        Ok(CacheStore {
            inner: Arc::new(StoreInner {
                root,
                stats: Default::default(),
                tmp_seq: AtomicU64::new(0),
            }),
            faults: None,
            metrics: None,
            eviction_limit: None,
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// A handle that consults `faults` at [`FaultSite::CacheCorrupt`] on
    /// every read (chaos mode). Shares directory and stats with `self`.
    #[must_use]
    pub fn with_faults(&self, faults: Arc<FaultInjector>) -> CacheStore {
        CacheStore {
            inner: Arc::clone(&self.inner),
            faults: Some(faults),
            metrics: self.metrics.clone(),
            eviction_limit: self.eviction_limit,
        }
    }

    /// A handle that mirrors hit/miss/byte/quarantine counts into
    /// `shard` (per-cell accounting). Shares directory and stats with
    /// `self`.
    #[must_use]
    pub fn with_metrics(&self, shard: Arc<MetricsShard>) -> CacheStore {
        CacheStore {
            inner: Arc::clone(&self.inner),
            faults: self.faults.clone(),
            metrics: Some(shard),
            eviction_limit: self.eviction_limit,
        }
    }

    /// A handle that bounds each plane to `bytes` of entry files: after
    /// every store, the written plane is compacted (see
    /// [`CacheStore::compact_plane`]) until it fits. Shares directory and
    /// stats with `self`; a long-lived fleet member opens its store
    /// through this so it can never grow without limit.
    #[must_use]
    pub fn with_eviction_limit(&self, bytes: u64) -> CacheStore {
        CacheStore {
            inner: Arc::clone(&self.inner),
            faults: self.faults.clone(),
            metrics: self.metrics.clone(),
            eviction_limit: Some(bytes),
        }
    }

    /// The eviction bound in force on this handle, if any.
    #[must_use]
    pub fn eviction_limit(&self) -> Option<u64> {
        self.eviction_limit
    }

    /// Where `key`'s entry lives (or would live) on `plane`. Exposed so
    /// tests can corrupt an entry on disk and prove it is never served.
    #[must_use]
    pub fn entry_path(&self, plane: Plane, key: &CacheKey) -> PathBuf {
        self.inner.root.join(plane.dir_name()).join(key.file_name())
    }

    /// Look up `key` on `plane`, verifying the stored digest before
    /// serving a single byte. Returns the payload on a verified hit.
    ///
    /// A missing entry is a miss. An entry that fails verification —
    /// wrong magic, schema, plane, key or payload digest, or a byte
    /// flipped by the [`FaultSite::CacheCorrupt`] chaos site — is moved to
    /// `quarantine/` and reported as a miss, so the caller recomputes and
    /// re-stores; corruption is never served and never fatal.
    #[must_use]
    pub fn lookup(&self, plane: Plane, key: &CacheKey) -> Option<Vec<u8>> {
        let path = self.entry_path(plane, key);
        let mut bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.count(S_MISSES, 1, CounterId::CacheMisses, 1);
                return None;
            }
        };
        // Chaos: flip one deterministic byte of the entry as it is read
        // back. Verification below must catch it, whichever byte it is.
        if let Some(faults) = &self.faults {
            if !bytes.is_empty() {
                if let Some(entropy) = faults.inject(FaultSite::CacheCorrupt) {
                    let idx = (entropy as usize) % bytes.len();
                    bytes[idx] ^= 0xA5;
                }
            }
        }
        match verify_entry(&bytes, plane, key) {
            Some(payload_range) => {
                let payload = bytes[payload_range].to_vec();
                self.count(S_HITS, 1, CounterId::CacheHits, 1);
                self.count(S_BYTES_READ, payload.len() as u64, CounterId::CacheBytes, {
                    payload.len() as u64
                });
                Some(payload)
            }
            None => {
                self.quarantine_path(&path, plane, key);
                self.count(S_MISSES, 1, CounterId::CacheMisses, 1);
                None
            }
        }
    }

    /// Write `payload` under `key` on `plane`. The entry is assembled in a
    /// temporary file and atomically renamed into place, so a concurrent
    /// reader sees either the whole entry or none of it — and concurrent
    /// writers of the same key (which, being content-addressed, write
    /// identical bytes) race harmlessly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; callers treat a failed store as "cache
    /// unavailable", never as a run failure.
    pub fn store(&self, plane: Plane, key: &CacheKey, payload: &[u8]) -> io::Result<()> {
        let mut entry = Vec::with_capacity(HEADER_LEN + payload.len());
        entry.extend_from_slice(&ENTRY_MAGIC);
        entry.extend_from_slice(&CACHE_SCHEMA_VERSION.to_le_bytes());
        entry.push(plane.tag());
        entry.extend_from_slice(&key.digest().0);
        entry.extend_from_slice(&Digest::of(payload).0);
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(payload);

        let final_path = self.entry_path(plane, key);
        let tmp = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.inner.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &entry)?;
        std::fs::rename(&tmp, &final_path)?;
        self.count(
            S_BYTES_WRITTEN,
            payload.len() as u64,
            CounterId::CacheBytes,
            payload.len() as u64,
        );
        self.count(S_STORES, 1, CounterId::CacheBytes, 0);
        if let Some(limit) = self.eviction_limit {
            // Bound the plane we just grew, but never evict the entry this
            // store produced — a limit smaller than one entry must not
            // turn every store into an immediate self-eviction loop.
            self.compact_plane_excluding(plane, limit, Some(key));
        }
        Ok(())
    }

    /// Total bytes of entry files currently on `plane`.
    #[must_use]
    pub fn plane_size(&self, plane: Plane) -> u64 {
        plane_entries(&self.inner.root.join(plane.dir_name()))
            .iter()
            .map(|(_, size)| size)
            .sum()
    }

    /// Compact `plane` down to at most `limit` bytes of entry files,
    /// deleting entries in digest (file-name) order — deterministic for a
    /// given store contents, and uniform over keys since names are
    /// content digests. Returns the number of entries evicted. Eviction
    /// is pure capacity management: an evicted identity is a future cache
    /// miss and recompute, never a correctness event.
    pub fn compact_plane(&self, plane: Plane, limit: u64) -> u64 {
        self.compact_plane_excluding(plane, limit, None)
    }

    fn compact_plane_excluding(&self, plane: Plane, limit: u64, keep: Option<&CacheKey>) -> u64 {
        let dir = self.inner.root.join(plane.dir_name());
        let mut entries = plane_entries(&dir);
        let mut total: u64 = entries.iter().map(|(_, size)| size).sum();
        if total <= limit {
            return 0;
        }
        entries.sort();
        let kept = keep.map(CacheKey::file_name);
        let mut evicted = 0u64;
        for (name, size) in entries {
            if total <= limit {
                break;
            }
            if Some(&name) == kept.as_ref() {
                continue;
            }
            if std::fs::remove_file(dir.join(&name)).is_ok() {
                total = total.saturating_sub(size);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.count(S_EVICTED, evicted, CounterId::ClusterEvictions, evicted);
        }
        evicted
    }

    /// Quarantine `key`'s entry on `plane` without serving it — for
    /// callers whose *decode* of a digest-verified payload fails (a
    /// should-not-happen belt-and-braces path: degrade to recompute).
    pub fn quarantine(&self, plane: Plane, key: &CacheKey) {
        let path = self.entry_path(plane, key);
        self.quarantine_path(&path, plane, key);
    }

    fn quarantine_path(&self, path: &Path, plane: Plane, key: &CacheKey) {
        let pen = self.inner.root.join("quarantine").join(format!(
            "{}-{}.{}.poisoned",
            plane.dir_name(),
            key.digest().to_hex(),
            self.inner.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        // Best-effort: if the rename loses a race the entry is already
        // gone, which is exactly the state we want.
        let _ = std::fs::rename(path, &pen);
        self.count(S_QUARANTINED, 1, CounterId::CacheQuarantined, 1);
    }

    /// Number of poisoned entries currently in the quarantine pen.
    #[must_use]
    pub fn quarantined_files(&self) -> usize {
        std::fs::read_dir(self.inner.root.join("quarantine"))
            .map(|rd| rd.filter_map(Result::ok).count())
            .unwrap_or(0)
    }

    /// Snapshot the store-wide counters (shared across every derived
    /// handle).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let load = |i: usize| self.inner.stats[i].load(Ordering::Relaxed);
        CacheStats {
            hits: load(S_HITS),
            misses: load(S_MISSES),
            stores: load(S_STORES),
            quarantined: load(S_QUARANTINED),
            bytes_read: load(S_BYTES_READ),
            bytes_written: load(S_BYTES_WRITTEN),
            evicted: load(S_EVICTED),
        }
    }

    fn count(&self, slot: usize, n: u64, counter: CounterId, metric_n: u64) {
        self.inner.stats[slot].fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            if slot == S_STORES {
                // Stores have no dedicated CounterId; bytes were already
                // mirrored by the bytes-written count.
            } else {
                m.add(counter, metric_n);
            }
        }
    }
}

/// `(file name, size)` of every `.jvc` entry in a plane directory.
/// Temp files and quarantine debris are invisible to sizing and eviction.
fn plane_entries(dir: &Path) -> Vec<(String, u64)> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    rd.filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if !name.ends_with(".jvc") {
                return None;
            }
            let size = e.metadata().ok()?.len();
            Some((name, size))
        })
        .collect()
}

/// Verify an entry against the requested `(plane, key)`; returns the
/// payload's byte range on success.
fn verify_entry(bytes: &[u8], plane: Plane, key: &CacheKey) -> Option<std::ops::Range<usize>> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    if bytes[0..4] != ENTRY_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != CACHE_SCHEMA_VERSION {
        return None;
    }
    if bytes[8] != plane.tag() {
        return None;
    }
    if bytes[9..41] != key.digest().0 {
        return None;
    }
    let stored_payload_digest: [u8; 32] = bytes[41..73].try_into().ok()?;
    let len = u64::from_le_bytes(bytes[73..81].try_into().ok()?);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len {
        return None;
    }
    if Digest::of(payload).0 != stored_payload_digest {
        return None;
    }
    Some(HEADER_LEN..bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim_faults::FaultPlan;

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "jvmsim-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(s: &str) -> CacheKey {
        let mut k = KeyHasher::new("test");
        k.field_str("name", s);
        k.finish()
    }

    #[test]
    fn roundtrip_and_stats() {
        let store = CacheStore::open(scratch("roundtrip")).unwrap();
        let k = key("a");
        assert_eq!(store.lookup(Plane::Instrumentation, &k), None);
        store
            .store(Plane::Instrumentation, &k, b"instrumented bytes")
            .unwrap();
        assert_eq!(
            store.lookup(Plane::Instrumentation, &k).as_deref(),
            Some(b"instrumented bytes".as_slice())
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.quarantined), (1, 1, 1, 0));
        assert_eq!(s.bytes_read, 18);
        assert_eq!(s.bytes_written, 18);
    }

    #[test]
    fn planes_are_separate_namespaces() {
        let store = CacheStore::open(scratch("planes")).unwrap();
        let k = key("same");
        store.store(Plane::Instrumentation, &k, b"instr").unwrap();
        assert_eq!(store.lookup(Plane::CellResult, &k), None);
        assert!(store.lookup(Plane::Instrumentation, &k).is_some());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let store = CacheStore::open(scratch("empty")).unwrap();
        let k = key("empty");
        store.store(Plane::CellResult, &k, b"").unwrap();
        assert_eq!(
            store.lookup(Plane::CellResult, &k).as_deref(),
            Some(&[][..])
        );
    }

    #[test]
    fn every_single_byte_corruption_is_caught_and_quarantined() {
        let store = CacheStore::open(scratch("corrupt")).unwrap();
        let k = key("victim");
        let payload = b"deterministic cell result row";
        store.store(Plane::CellResult, &k, payload).unwrap();
        let path = store.entry_path(Plane::CellResult, &k);
        let pristine = std::fs::read(&path).unwrap();
        for idx in 0..pristine.len() {
            let mut evil = pristine.clone();
            evil[idx] ^= 0x5A;
            std::fs::write(&path, &evil).unwrap();
            assert_eq!(
                store.lookup(Plane::CellResult, &k),
                None,
                "corrupt byte {idx} was served"
            );
            // The poisoned entry was moved out of the way…
            assert!(!path.exists(), "corrupt byte {idx} left in place");
            // …and recompute + re-store works.
            store.store(Plane::CellResult, &k, payload).unwrap();
            assert_eq!(
                store.lookup(Plane::CellResult, &k).as_deref(),
                Some(&payload[..])
            );
        }
        let s = store.stats();
        assert_eq!(s.quarantined, pristine.len() as u64);
        assert_eq!(store.quarantined_files(), pristine.len());
    }

    #[test]
    fn truncated_and_garbage_entries_never_verify() {
        let store = CacheStore::open(scratch("garbage")).unwrap();
        let k = key("g");
        store.store(Plane::Instrumentation, &k, b"payload").unwrap();
        let path = store.entry_path(Plane::Instrumentation, &k);
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(store.lookup(Plane::Instrumentation, &k), None, "cut {cut}");
            store.store(Plane::Instrumentation, &k, b"payload").unwrap();
        }
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert_eq!(store.lookup(Plane::Instrumentation, &k), None);
    }

    #[test]
    fn fault_injected_corruption_degrades_to_recompute() {
        let store = CacheStore::open(scratch("chaos")).unwrap();
        // Rate PPM: the site fires on every consultation.
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(7).with_rate(FaultSite::CacheCorrupt, jvmsim_faults::PPM),
        ));
        let chaotic = store.with_faults(Arc::clone(&inj));
        let k = key("chaos");
        chaotic.store(Plane::Instrumentation, &k, b"bytes").unwrap();
        assert_eq!(chaotic.lookup(Plane::Instrumentation, &k), None);
        assert_eq!(inj.injected(FaultSite::CacheCorrupt), 1);
        assert_eq!(store.stats().quarantined, 1);
        // The plain handle (no injector) still works after recompute.
        store.store(Plane::Instrumentation, &k, b"bytes").unwrap();
        assert_eq!(
            store.lookup(Plane::Instrumentation, &k).as_deref(),
            Some(b"bytes".as_slice())
        );
    }

    #[test]
    fn metrics_shard_mirrors_cache_traffic() {
        let registry = jvmsim_metrics::MetricsRegistry::new();
        let store = CacheStore::open(scratch("metrics"))
            .unwrap()
            .with_metrics(registry.global());
        let k = key("m");
        assert!(store.lookup(Plane::CellResult, &k).is_none());
        store.store(Plane::CellResult, &k, b"row").unwrap();
        assert!(store.lookup(Plane::CellResult, &k).is_some());
        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::CacheHits), 1);
        assert_eq!(snap.counter(CounterId::CacheMisses), 1);
        assert_eq!(snap.counter(CounterId::CacheBytes), 6, "3 written + 3 read");
        assert_eq!(snap.counter(CounterId::CacheQuarantined), 0);
    }

    #[test]
    fn key_hasher_is_deterministic_and_field_sensitive() {
        let mk = |domain: &str, name: &str, v: u64| {
            let mut k = KeyHasher::new(domain);
            k.field_str("name", name);
            k.field_u64("v", v);
            k.finish()
        };
        assert_eq!(mk("d", "x", 1), mk("d", "x", 1));
        assert_ne!(mk("d", "x", 1), mk("d", "x", 2));
        assert_ne!(mk("d", "x", 1), mk("e", "x", 1));
        // Length prefixes: ("ab","c") must not collide with ("a","bc").
        let mut a = KeyHasher::new("d");
        a.field_str("ab", "c");
        let mut b = KeyHasher::new("d");
        b.field_str("a", "bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn schema_version_bump_orphans_old_entries_without_quarantine() {
        let store = CacheStore::open(scratch("schema")).unwrap();
        // Fabricate a pre-bump entry exactly as the previous schema wrote
        // it: key derived with the old version, header carrying it too.
        let old_version = CACHE_SCHEMA_VERSION - 1;
        let mut k1 = KeyHasher::with_version("cell-result", old_version);
        k1.field_str("workload", "compress");
        let old_key = k1.finish();
        let payload = b"pre-bump row bytes";
        let mut entry = Vec::new();
        entry.extend_from_slice(&ENTRY_MAGIC);
        entry.extend_from_slice(&old_version.to_le_bytes());
        entry.push(Plane::CellResult.tag());
        entry.extend_from_slice(&old_key.digest().0);
        entry.extend_from_slice(&Digest::of(payload).0);
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(payload);
        std::fs::write(store.entry_path(Plane::CellResult, &old_key), &entry).unwrap();

        // The same logical identity under the current schema derives a
        // different key, so the lookup is a clean miss: the stale entry
        // is never opened, so nothing is served and nothing is
        // quarantined — version bumps must not masquerade as corruption.
        let mut k2 = KeyHasher::new("cell-result");
        k2.field_str("workload", "compress");
        let new_key = k2.finish();
        assert_ne!(old_key, new_key);
        assert_eq!(store.lookup(Plane::CellResult, &new_key), None);
        let s = store.stats();
        assert_eq!((s.hits, s.quarantined), (0, 0));
        assert_eq!(s.misses, 1);
        assert!(store.entry_path(Plane::CellResult, &old_key).exists());
    }

    #[test]
    fn eviction_bounds_plane_size_and_keeps_latest_store() {
        let store = CacheStore::open(scratch("evict")).unwrap();
        // Entry file = 81-byte header + payload; 400 bytes holds two
        // 100-byte-payload entries but not three.
        let bounded = store.with_eviction_limit(400);
        assert_eq!(bounded.eviction_limit(), Some(400));
        let payload = [7u8; 100];
        for name in ["a", "b", "c", "d"] {
            bounded
                .store(Plane::CellResult, &key(name), &payload)
                .unwrap();
            assert!(
                bounded.plane_size(Plane::CellResult) <= 400,
                "plane grew past the bound after storing {name}"
            );
            // The entry just written always survives its own compaction.
            assert!(
                bounded.lookup(Plane::CellResult, &key(name)).is_some(),
                "store of {name} self-evicted"
            );
        }
        let s = store.stats();
        assert!(s.evicted >= 2, "expected evictions, saw {}", s.evicted);
        assert_eq!(s.quarantined, 0, "eviction must not look like corruption");
        // An evicted identity is a plain miss: recompute-and-store works.
        let survivors = ["a", "b", "c", "d"]
            .iter()
            .filter(|n| bounded.lookup(Plane::CellResult, &key(n)).is_some())
            .count();
        assert!(survivors <= 2, "bound admits at most two entries");
        // The unbounded handle shares the directory but never compacts.
        store.store(Plane::CellResult, &key("e"), &payload).unwrap();
        store.store(Plane::CellResult, &key("f"), &payload).unwrap();
        assert!(store.plane_size(Plane::CellResult) > 400);
        // Explicit compaction brings it back under.
        store.compact_plane(Plane::CellResult, 400);
        assert!(store.plane_size(Plane::CellResult) <= 400);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let store = CacheStore::open(scratch("evict-det")).unwrap();
            let payload = [1u8; 64];
            for name in ["w", "x", "y", "z"] {
                store
                    .store(Plane::Instrumentation, &key(name), &payload)
                    .unwrap();
            }
            store.compact_plane(Plane::Instrumentation, 300);
            let mut alive: Vec<&str> = ["w", "x", "y", "z"]
                .into_iter()
                .filter(|n| store.lookup(Plane::Instrumentation, &key(n)).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        assert_eq!(run(), run(), "same contents must evict the same keys");
    }

    #[test]
    fn eviction_mirrors_into_metrics() {
        let registry = jvmsim_metrics::MetricsRegistry::new();
        let store = CacheStore::open(scratch("evict-metrics"))
            .unwrap()
            .with_metrics(registry.global())
            .with_eviction_limit(200);
        let payload = [2u8; 80];
        for name in ["p", "q", "r"] {
            store
                .store(Plane::CellResult, &key(name), &payload)
                .unwrap();
        }
        let evicted = registry.snapshot().counter(CounterId::ClusterEvictions);
        assert_eq!(evicted, store.stats().evicted);
        assert!(evicted >= 1, "limit 200 cannot hold two 161-byte entries");
    }

    #[test]
    fn derived_handles_share_stats() {
        let store = CacheStore::open(scratch("shared")).unwrap();
        let registry = jvmsim_metrics::MetricsRegistry::new();
        let scoped = store.with_metrics(registry.global());
        let k = key("s");
        scoped.store(Plane::Instrumentation, &k, b"x").unwrap();
        assert!(store.lookup(Plane::Instrumentation, &k).is_some());
        assert_eq!(store.stats().stores, 1);
        assert_eq!(scoped.stats().hits, 1);
    }
}
