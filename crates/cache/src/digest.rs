//! A dependency-free SHA-256 and the [`Digest`] newtype the cache keys
//! and verifies entries with.
//!
//! The workspace builds without registry access, so the hash is
//! implemented here from the FIPS 180-4 specification in safe Rust. It is
//! not performance-critical: the cache digests a few hundred kilobytes of
//! classfile bytes per cell, dwarfed by the simulated run it saves.

/// Round constants (FIPS 180-4 §4.2.2): first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash state (FIPS 180-4 §5.3.3): first 32 bits of the fractional
/// parts of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// A 256-bit content digest. The cache's only notion of identity:
/// entry file names, key derivation, and read-back verification all go
/// through this type.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex rendering (64 chars) — used as the entry file stem.
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
            s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
        }
        s
    }

    /// Parse the 64-char lower/upper-hex rendering back into a digest —
    /// how the peer-fetch transport turns a `GET /v1/cell/<hex>` path
    /// segment back into a store address. `None` on any other shape.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = u8::try_from(hi * 16 + lo).ok()?;
        }
        Some(Digest(out))
    }

    /// Digest of `bytes` in one shot.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(bytes);
        h.finish()
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental SHA-256 (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad, finalise and return the digest.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual tail: update() would re-count these 8 length bytes.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP reference vectors.
    #[test]
    fn nist_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Digest::of(input).to_hex(), want);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = Digest::of(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_roundtrip_shape() {
        let d = Digest::of(b"x");
        assert_eq!(d.to_hex().len(), 64);
        assert!(d.to_hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex(&d.to_hex().to_uppercase()), Some(d));
        assert_eq!(Digest::from_hex(&d.to_hex()[..63]), None, "short");
        assert_eq!(Digest::from_hex(&format!("{}z", &d.to_hex()[..63])), None);
    }
}
