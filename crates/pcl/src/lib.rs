//! # jvmsim-pcl — Performance Counter Library analog
//!
//! The paper's time measurements rest on the *Performance Counter Library*
//! (PCL), of which it only uses one capability: reading a **per-thread cycle
//! counter** (§II-C). Standard Java clocks were "severely out of scale with
//! the speed at which GHz-class CPUs execute native code", so the agents read
//! hardware timestamp counters virtualized per thread by the OS.
//!
//! In this reproduction the "hardware" is the `jvmsim-vm` simulator, which
//! charges a deterministic number of cycles to the running thread for every
//! bytecode instruction, JNI call, native-work quantum and agent action. This
//! crate owns those per-thread clocks and exposes the PCL-shaped read API
//! ([`Pcl::timestamp`], the stand-in for the paper's fictive
//! `PCL.getTimestamp(Thread)`).
//!
//! Virtual cycles convert to seconds at a configurable clock frequency; the
//! default matches the paper's 2.66 GHz Pentium 4 test machine.
//!
//! ```
//! use jvmsim_pcl::{Pcl, ThreadClockId};
//!
//! let pcl = Pcl::new();
//! let t = pcl.register_thread();
//! pcl.charge(t, 2_660_000_000); // one simulated second of work
//! assert_eq!(pcl.timestamp(t).cycles(), 2_660_000_000);
//! assert!((pcl.cycles_to_seconds(pcl.timestamp(t).cycles()) - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;

pub use cost::TierCostModel;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jvmsim_metrics::MetricsShard;
use parking_lot::RwLock;

/// Clock frequency of the paper's evaluation machine (Pentium 4, 2.66 GHz).
pub const PAPER_CLOCK_HZ: u64 = 2_660_000_000;

/// Identifier of a per-thread cycle clock.
///
/// The VM allocates one clock per green thread at thread creation; agents and
/// VM subsystems charge cycles to it and read it back as a [`Timestamp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadClockId(u32);

impl ThreadClockId {
    /// Raw index of this clock in the PCL registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clock#{}", self.0)
    }
}

/// A point-in-time reading of a thread's cycle counter.
///
/// Timestamps of *different* threads are not comparable (each thread's
/// counter advances independently, exactly as per-thread hardware counters
/// do); the newtype makes accidental cross-thread arithmetic explicit via
/// [`Timestamp::cycles_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Construct a timestamp from a raw cycle count.
    pub fn from_cycles(cycles: u64) -> Self {
        Timestamp(cycles)
    }

    /// Raw cycle count of this reading.
    pub fn cycles(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier` on the *same* thread's clock.
    ///
    /// Saturates at zero if `earlier` is in the future, which can only happen
    /// if readings from different threads are mixed — a caller bug this API
    /// deliberately keeps survivable, mirroring how the C agents treat the
    /// raw counter values.
    pub fn cycles_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This reading moved `delta` cycles into the past (saturating at
    /// zero). Used by the fault-injection plane to model a clock
    /// step-back anomaly: consumers must treat a timestamp earlier than
    /// the previous reading as a zero-length interval, never underflow.
    pub fn rewound(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// The PCL registry: one virtual cycle counter per registered thread.
///
/// Cloning is cheap (`Arc` inside); the VM and any number of agents share one
/// instance. All operations are lock-free on the hot path (an atomic add per
/// charge) — the `RwLock` only guards the registration vector.
#[derive(Clone, Default)]
pub struct Pcl {
    inner: Arc<PclInner>,
}

#[derive(Default)]
struct PclInner {
    clocks: RwLock<Vec<Arc<AtomicU64>>>,
    /// Optional metric shard per clock (same index). When attached, every
    /// charge is mirrored into the shard's current attribution bucket, so
    /// the bucket totals sum to `total_cycles()` *exactly*. Mirroring never
    /// charges cycles of its own.
    shards: RwLock<Vec<Option<Arc<MetricsShard>>>>,
    clock_hz: AtomicU64,
}

impl fmt::Debug for Pcl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pcl")
            .field("threads", &self.thread_count())
            .field("clock_hz", &self.clock_hz())
            .finish()
    }
}

impl Pcl {
    /// Create a registry running at the paper's 2.66 GHz.
    pub fn new() -> Self {
        Self::with_clock_hz(PAPER_CLOCK_HZ)
    }

    /// Create a registry with an explicit clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is zero.
    pub fn with_clock_hz(clock_hz: u64) -> Self {
        assert!(clock_hz > 0, "clock frequency must be nonzero");
        let pcl = Pcl {
            inner: Arc::new(PclInner::default()),
        };
        pcl.inner.clock_hz.store(clock_hz, Ordering::Relaxed);
        pcl
    }

    /// The configured clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        let hz = self.inner.clock_hz.load(Ordering::Relaxed);
        if hz == 0 {
            PAPER_CLOCK_HZ
        } else {
            hz
        }
    }

    /// Number of registered thread clocks.
    pub fn thread_count(&self) -> usize {
        self.inner.clocks.read().len()
    }

    /// Register a new thread and return its clock id. The clock starts at 0.
    pub fn register_thread(&self) -> ThreadClockId {
        let mut clocks = self.inner.clocks.write();
        let id = ThreadClockId(u32::try_from(clocks.len()).expect("too many thread clocks"));
        clocks.push(Arc::new(AtomicU64::new(0)));
        self.inner.shards.write().push(None);
        id
    }

    /// Mirror all future charges on `id`'s clock into `shard`'s current
    /// attribution bucket (see `jvmsim-metrics`). Handles created *after*
    /// this call carry the shard too.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not registered on this registry.
    pub fn attach_metrics(&self, id: ThreadClockId, shard: Arc<MetricsShard>) {
        let mut shards = self.inner.shards.write();
        let slot = shards
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("unregistered {id}"));
        *slot = Some(shard);
    }

    fn shard(&self, id: ThreadClockId) -> Option<Arc<MetricsShard>> {
        self.inner.shards.read().get(id.index()).cloned().flatten()
    }

    fn clock(&self, id: ThreadClockId) -> Arc<AtomicU64> {
        let clocks = self.inner.clocks.read();
        clocks
            .get(id.index())
            .unwrap_or_else(|| panic!("unregistered {id}"))
            .clone()
    }

    /// Advance thread `id`'s counter by `cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Pcl::register_thread`] on this
    /// registry.
    pub fn charge(&self, id: ThreadClockId, cycles: u64) {
        self.clock(id).fetch_add(cycles, Ordering::Relaxed);
        if let Some(shard) = self.shard(id) {
            shard.charge(cycles);
        }
    }

    /// Read thread `id`'s cycle counter — the paper's
    /// `PCL.getTimestamp(Thread)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not registered on this registry.
    pub fn timestamp(&self, id: ThreadClockId) -> Timestamp {
        Timestamp(self.clock(id).load(Ordering::Relaxed))
    }

    /// Convert a cycle count to seconds at this registry's clock frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz() as f64
    }

    /// Sum of all thread counters — total CPU cycles consumed by the program,
    /// the denominator for whole-program native-time percentages.
    pub fn total_cycles(&self) -> u64 {
        self.inner
            .clocks
            .read()
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Look up the clock id registered at `index`, if any. Thread tables
    /// that register clocks in creation order (as the VM does) can map
    /// their own indices back to clock ids with this.
    pub fn clock_id(&self, index: usize) -> Option<ThreadClockId> {
        if index < self.thread_count() {
            Some(ThreadClockId(index as u32))
        } else {
            None
        }
    }

    /// A cheap handle that charges one fixed clock without registry lookup.
    ///
    /// The VM's interpreter loop holds one of these per running thread so the
    /// per-instruction charge is a single relaxed atomic add.
    pub fn handle(&self, id: ThreadClockId) -> ClockHandle {
        ClockHandle {
            clock: self.clock(id),
            shard: self.shard(id),
            id,
        }
    }
}

/// Direct handle to one thread's clock (hot-path accessor).
#[derive(Clone)]
pub struct ClockHandle {
    clock: Arc<AtomicU64>,
    /// Mirror target captured at handle creation (see
    /// [`Pcl::attach_metrics`]); `None` keeps the charge a single atomic add.
    shard: Option<Arc<MetricsShard>>,
    id: ThreadClockId,
}

impl fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClockHandle")
            .field("id", &self.id)
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl ClockHandle {
    /// The clock this handle charges.
    pub fn id(&self) -> ThreadClockId {
        self.id
    }

    /// Advance this clock by `cycles`.
    pub fn charge(&self, cycles: u64) {
        self.clock.fetch_add(cycles, Ordering::Relaxed);
        if let Some(shard) = &self.shard {
            shard.charge(cycles);
        }
    }

    /// The metric shard mirrored by this handle, if one was attached
    /// before the handle was created.
    pub fn metrics(&self) -> Option<&Arc<MetricsShard>> {
        self.shard.as_ref()
    }

    /// Current cycle count of this clock.
    pub fn cycles(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Current reading as a [`Timestamp`].
    pub fn timestamp(&self) -> Timestamp {
        Timestamp(self.cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_registry_is_empty() {
        let pcl = Pcl::new();
        assert_eq!(pcl.thread_count(), 0);
        assert_eq!(pcl.total_cycles(), 0);
        assert_eq!(pcl.clock_hz(), PAPER_CLOCK_HZ);
    }

    #[test]
    fn register_and_charge() {
        let pcl = Pcl::new();
        let a = pcl.register_thread();
        let b = pcl.register_thread();
        assert_ne!(a, b);
        pcl.charge(a, 100);
        pcl.charge(b, 7);
        pcl.charge(a, 1);
        assert_eq!(pcl.timestamp(a).cycles(), 101);
        assert_eq!(pcl.timestamp(b).cycles(), 7);
        assert_eq!(pcl.total_cycles(), 108);
    }

    #[test]
    fn clocks_are_independent() {
        let pcl = Pcl::new();
        let a = pcl.register_thread();
        let b = pcl.register_thread();
        pcl.charge(a, 1_000);
        assert_eq!(pcl.timestamp(b).cycles(), 0);
    }

    #[test]
    fn timestamp_delta() {
        let pcl = Pcl::new();
        let t = pcl.register_thread();
        let t0 = pcl.timestamp(t);
        pcl.charge(t, 42);
        let t1 = pcl.timestamp(t);
        assert_eq!(t1.cycles_since(t0), 42);
        // Reversed order saturates instead of wrapping.
        assert_eq!(t0.cycles_since(t1), 0);
    }

    #[test]
    fn cycles_to_seconds_at_paper_frequency() {
        let pcl = Pcl::new();
        assert!((pcl.cycles_to_seconds(PAPER_CLOCK_HZ) - 1.0).abs() < 1e-12);
        assert!((pcl.cycles_to_seconds(PAPER_CLOCK_HZ / 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn custom_frequency() {
        let pcl = Pcl::with_clock_hz(1_000);
        let t = pcl.register_thread();
        pcl.charge(t, 500);
        assert!((pcl.cycles_to_seconds(pcl.timestamp(t).cycles()) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be nonzero")]
    fn zero_frequency_rejected() {
        let _ = Pcl::with_clock_hz(0);
    }

    #[test]
    fn handle_charges_same_clock() {
        let pcl = Pcl::new();
        let t = pcl.register_thread();
        let h = pcl.handle(t);
        h.charge(10);
        pcl.charge(t, 5);
        assert_eq!(h.cycles(), 15);
        assert_eq!(pcl.timestamp(t), h.timestamp());
        assert_eq!(h.id(), t);
    }

    #[test]
    fn registry_is_shared_across_clones() {
        let pcl = Pcl::new();
        let t = pcl.register_thread();
        let clone = pcl.clone();
        clone.charge(t, 9);
        assert_eq!(pcl.timestamp(t).cycles(), 9);
    }

    #[test]
    fn charges_from_multiple_os_threads_accumulate() {
        let pcl = Pcl::new();
        let t = pcl.register_thread();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = pcl.handle(t);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        h.charge(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pcl.timestamp(t).cycles(), 4_000);
    }

    #[test]
    fn attached_shard_mirrors_every_charge() {
        use jvmsim_metrics::Bucket;
        let pcl = Pcl::new();
        let t = pcl.register_thread();
        let shard = Arc::new(MetricsShard::new());
        pcl.attach_metrics(t, Arc::clone(&shard));
        pcl.charge(t, 100);
        let h = pcl.handle(t);
        assert!(h.metrics().is_some());
        {
            let _g = shard.enter(Bucket::IpaProbe);
            h.charge(40);
        }
        h.charge(2);
        let snap = shard.snapshot();
        assert_eq!(snap.bucket_cycles(Bucket::Workload), 102);
        assert_eq!(snap.bucket_cycles(Bucket::IpaProbe), 40);
        assert_eq!(snap.total_cycles(), pcl.total_cycles());
    }

    #[test]
    fn unattached_thread_mirrors_nothing() {
        let pcl = Pcl::new();
        let a = pcl.register_thread();
        let b = pcl.register_thread();
        let shard = Arc::new(MetricsShard::new());
        pcl.attach_metrics(b, Arc::clone(&shard));
        pcl.charge(a, 50);
        assert!(pcl.handle(a).metrics().is_none());
        assert_eq!(shard.snapshot().total_cycles(), 0);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pcl>();
        assert_send_sync::<ClockHandle>();
        assert_send_sync::<Timestamp>();
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn foreign_clock_id_panics() {
        let pcl = Pcl::new();
        let other = Pcl::new();
        let id = other.register_thread();
        let _ = pcl.timestamp(id);
    }
}
