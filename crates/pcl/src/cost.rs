//! Per-tier cycle cost model.
//!
//! Lives in the PCL crate — directly beside the cycle counters it feeds —
//! so both the VM above and any calibration tooling below can share one
//! definition. The constants reproduce the measured interpreter-vs-tier
//! performance ratios from "Repositioning Tiered HotSpot Execution
//! Performance Relative to the Interpreter": interpreted bytecode runs
//! roughly 8× slower than C2 code and 4× slower than C1 code, while a C2
//! compile costs about 4× a C1 compile per bytecode instruction.

use jvmsim_tiers::Tier;

/// Cycle costs of tiered execution: per-instruction rates, invocation
/// overheads, promotion thresholds, and compile charges. Plain data —
/// construct with [`TierCostModel::default`] and adjust fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierCostModel {
    /// Cycles per interpreted bytecode instruction.
    pub interp_insn: u64,
    /// Cycles per C1-compiled bytecode instruction.
    pub c1_insn: u64,
    /// Cycles per C2-compiled bytecode instruction.
    pub c2_insn: u64,
    /// Extra cycles per invocation of an interpreted callee.
    pub call_overhead_interp: u64,
    /// Extra cycles per invocation of a C1-compiled callee.
    pub call_overhead_c1: u64,
    /// Extra cycles per invocation of a C2-compiled callee.
    pub call_overhead_c2: u64,
    /// Invocations before a method is promoted from the interpreter to C1.
    pub c1_invocation_threshold: u32,
    /// Invocations before a method is promoted from C1 to C2.
    pub c2_invocation_threshold: u32,
    /// Backward branches in one activation before the running method is
    /// promoted mid-frame (on-stack replacement).
    pub osr_backedge_threshold: u32,
    /// Compile cost, in cycles per bytecode instruction, of a C1 compile.
    pub c1_compile_per_insn: u64,
    /// Compile cost, in cycles per bytecode instruction, of a C2 compile.
    pub c2_compile_per_insn: u64,
}

impl Default for TierCostModel {
    fn default() -> Self {
        TierCostModel {
            interp_insn: 8,
            c1_insn: 2,
            c2_insn: 1,
            call_overhead_interp: 30,
            call_overhead_c1: 8,
            call_overhead_c2: 4,
            c1_invocation_threshold: 20,
            c2_invocation_threshold: 200,
            osr_backedge_threshold: 200,
            c1_compile_per_insn: 50,
            c2_compile_per_insn: 200,
        }
    }
}

impl TierCostModel {
    /// Cycles for one bytecode instruction at `tier`.
    #[must_use]
    pub fn insn(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Interp => self.interp_insn,
            Tier::C1 => self.c1_insn,
            Tier::C2 => self.c2_insn,
        }
    }

    /// Cycles of invocation overhead for a callee running at `tier`.
    #[must_use]
    pub fn call_overhead(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Interp => self.call_overhead_interp,
            Tier::C1 => self.call_overhead_c1,
            Tier::C2 => self.call_overhead_c2,
        }
    }

    /// The invocation count at which a method running at `tier` is
    /// promoted one step, if that tier promotes at all.
    #[must_use]
    pub fn invocation_threshold(&self, tier: Tier) -> Option<u32> {
        match tier {
            Tier::Interp => Some(self.c1_invocation_threshold),
            Tier::C1 => Some(self.c2_invocation_threshold),
            Tier::C2 => None,
        }
    }

    /// Compile cost of producing `tier` code for a method of
    /// `insn_count` bytecode instructions. Zero for the interpreter.
    #[must_use]
    pub fn compile_cost(&self, tier: Tier, insn_count: usize) -> u64 {
        let per_insn = match tier {
            Tier::Interp => 0,
            Tier::C1 => self.c1_compile_per_insn,
            Tier::C2 => self.c2_compile_per_insn,
        };
        per_insn * insn_count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_get_monotonically_faster() {
        let c = TierCostModel::default();
        assert!(c.interp_insn > c.c1_insn);
        assert!(c.c1_insn > c.c2_insn);
        assert!(c.call_overhead_interp > c.call_overhead_c1);
        assert!(c.call_overhead_c1 > c.call_overhead_c2);
        // The paper-level ratio the tables depend on: interpreted code is
        // several times slower than top-tier code.
        assert!(c.interp_insn >= 4 * c.c2_insn);
    }

    #[test]
    fn compiles_get_monotonically_more_expensive() {
        let c = TierCostModel::default();
        assert!(c.c2_compile_per_insn > c.c1_compile_per_insn);
        assert_eq!(c.compile_cost(Tier::Interp, 100), 0);
        assert_eq!(c.compile_cost(Tier::C1, 100), 100 * c.c1_compile_per_insn);
        assert_eq!(c.compile_cost(Tier::C2, 100), 100 * c.c2_compile_per_insn);
    }

    #[test]
    fn thresholds_order_the_pipeline() {
        let c = TierCostModel::default();
        assert!(c.c2_invocation_threshold > c.c1_invocation_threshold);
        assert_eq!(
            c.invocation_threshold(Tier::Interp),
            Some(c.c1_invocation_threshold)
        );
        assert_eq!(
            c.invocation_threshold(Tier::C1),
            Some(c.c2_invocation_threshold)
        );
        assert_eq!(c.invocation_threshold(Tier::C2), None);
    }

    #[test]
    fn selectors_match_fields() {
        let c = TierCostModel::default();
        assert_eq!(c.insn(Tier::Interp), c.interp_insn);
        assert_eq!(c.insn(Tier::C1), c.c1_insn);
        assert_eq!(c.insn(Tier::C2), c.c2_insn);
        assert_eq!(c.call_overhead(Tier::Interp), c.call_overhead_interp);
        assert_eq!(c.call_overhead(Tier::C1), c.call_overhead_c1);
        assert_eq!(c.call_overhead(Tier::C2), c.call_overhead_c2);
    }
}
