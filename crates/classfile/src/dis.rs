//! Human-readable disassembly of classes.
//!
//! Produces `javap`-style listings. The instrumentation tool's `--dump`
//! mode and several tests use this to inspect transform output (e.g. to see
//! the generated native-method wrapper of the paper's Fig. 2).

use std::fmt::Write as _;

use crate::class::ClassFile;
use crate::constpool::Constant;
use crate::insn::Insn;

/// Render a full class listing.
pub fn disassemble(class: &ClassFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "class {} extends {} [{}]",
        class.name(),
        class.super_name().unwrap_or("<root>"),
        class.flags
    );
    for f in class.fields() {
        let _ = writeln!(out, "  field {} {} : {}", f.flags, f.name(), f.ty());
    }
    for m in class.methods() {
        let _ = writeln!(out, "  method {m} {{");
        if let Some(code) = &m.code {
            let _ = writeln!(
                out,
                "    // max_stack={} max_locals={}",
                code.max_stack, code.max_locals
            );
            for (pc, insn) in code.insns.iter().enumerate() {
                let _ = writeln!(out, "    {pc:>4}: {}", render_insn(class, insn));
            }
            for h in &code.exception_table {
                let _ = writeln!(
                    out,
                    "    // try [{}, {}) -> @{} catch {}",
                    h.start,
                    h.end,
                    h.handler,
                    h.catch_class.as_deref().unwrap_or("<any>")
                );
            }
        } else {
            let _ = writeln!(out, "    // native");
        }
        let _ = writeln!(out, "  }}");
    }
    out
}

/// Render one instruction, resolving pool operands to symbols.
pub fn render_insn(class: &ClassFile, insn: &Insn) -> String {
    let pool = &class.pool;
    match insn {
        Insn::Ldc(i) => match pool.get(*i) {
            Ok(Constant::Utf8(s)) => format!("ldc {s:?}"),
            _ => format!("ldc {i} <dangling>"),
        },
        Insn::InvokeStatic(i) => match pool.method_ref(*i) {
            Ok(m) => format!("invokestatic {m}"),
            Err(_) => format!("invokestatic {i} <dangling>"),
        },
        Insn::InvokeVirtual(i) => match pool.method_ref(*i) {
            Ok(m) => format!("invokevirtual {m}"),
            Err(_) => format!("invokevirtual {i} <dangling>"),
        },
        Insn::New(i) => match pool.class_name(*i) {
            Ok(c) => format!("new {c}"),
            Err(_) => format!("new {i} <dangling>"),
        },
        Insn::GetField(i) | Insn::PutField(i) | Insn::GetStatic(i) | Insn::PutStatic(i) => {
            let op = insn.mnemonic();
            match pool.field_ref(*i) {
                Ok(f) => format!("{op} {f}"),
                Err(_) => format!("{op} {i} <dangling>"),
            }
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::flags::{FieldFlags, MethodFlags};

    #[test]
    fn listing_contains_symbols() {
        let mut cb = ClassBuilder::new("pkg/Demo");
        cb.field("n", "I", FieldFlags::STATIC).unwrap();
        cb.native_method("nat", "()V", MethodFlags::PUBLIC).unwrap();
        let mut m = cb.method("run", "()V", MethodFlags::STATIC);
        m.ldc_str("msg")
            .pop()
            .invokestatic("pkg/Demo", "nat", "()V")
            .ret_void();
        m.finish().unwrap();
        let class = cb.finish().unwrap();
        let text = disassemble(&class);
        assert!(text.contains("class pkg/Demo extends java/lang/Object"));
        assert!(text.contains("field static n : I"));
        assert!(text.contains("// native"));
        assert!(text.contains("ldc \"msg\""));
        assert!(text.contains("invokestatic pkg/Demo.nat()V"));
        assert!(text.contains("max_stack=1"));
    }

    #[test]
    fn dangling_pool_refs_render_without_panicking() {
        use crate::class::{Code, MethodInfo};
        use crate::constpool::CpIndex;
        let class = ClassFile::new("x/Y");
        let rendered = render_insn(&class, &Insn::InvokeStatic(CpIndex(9)));
        assert!(rendered.contains("<dangling>"));
        // Whole-class render with a method whose pool refs dangle.
        let mut c2 = ClassFile::new("x/Z");
        c2.add_method(
            MethodInfo::new(
                "m",
                "()V",
                MethodFlags::STATIC,
                Code {
                    max_stack: 1,
                    max_locals: 0,
                    insns: vec![Insn::Ldc(CpIndex(5)), Insn::Pop, Insn::Return],
                    exception_table: vec![],
                },
            )
            .unwrap(),
        )
        .unwrap();
        let text = disassemble(&c2);
        assert!(text.contains("<dangling>"));
    }
}
