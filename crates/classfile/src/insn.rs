//! The bytecode instruction set.
//!
//! A JVM-flavoured stack machine over three runtime kinds: 64-bit ints,
//! 64-bit floats and references. Branch operands are **instruction indices**
//! (not byte offsets) — the binary format stores one instruction per record,
//! which keeps transforms like the paper's native-wrapper injection free of
//! offset-patching bugs while preserving the structure the instrumentation
//! cares about.

use std::fmt;

use crate::constpool::CpIndex;

/// Comparison condition for `If*` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less than or equal.
    Le,
}

impl Cond {
    /// Evaluate the condition over a comparison result (`lhs - rhs` sign).
    pub fn eval(self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Cond::Eq => ordering == Equal,
            Cond::Ne => ordering != Equal,
            Cond::Lt => ordering == Less,
            Cond::Ge => ordering != Less,
            Cond::Gt => ordering == Greater,
            Cond::Le => ordering != Greater,
        }
    }

    /// Mnemonic suffix (`eq`, `ne`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Element kind for `NewArray` and typed array access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// `long[]`-equivalent.
    Int,
    /// `double[]`-equivalent.
    Float,
    /// `Object[]`-equivalent.
    Ref,
}

impl fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrayKind::Int => "int",
            ArrayKind::Float => "float",
            ArrayKind::Ref => "ref",
        })
    }
}

/// A branch target: the index of an instruction within the same method body.
pub type InsnIndex = u32;

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// Do nothing.
    Nop,
    /// Push an integer constant.
    IConst(i64),
    /// Push a float constant.
    FConst(f64),
    /// Push `null`.
    AConstNull,
    /// Push the string constant at the pool index (a `Utf8` entry); at
    /// runtime this materialises an interned string object.
    Ldc(CpIndex),

    /// Push int from local slot.
    ILoad(u16),
    /// Push float from local slot.
    FLoad(u16),
    /// Push reference from local slot.
    ALoad(u16),
    /// Pop int into local slot.
    IStore(u16),
    /// Pop float into local slot.
    FStore(u16),
    /// Pop reference into local slot.
    AStore(u16),

    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two top stack values.
    Swap,

    /// Int add.
    IAdd,
    /// Int subtract.
    ISub,
    /// Int multiply.
    IMul,
    /// Int divide (throws `java/lang/ArithmeticException` on zero divisor).
    IDiv,
    /// Int remainder (throws on zero divisor).
    IRem,
    /// Int negate.
    INeg,
    /// Shift left.
    IShl,
    /// Arithmetic shift right.
    IShr,
    /// Logical shift right.
    IUShr,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Add `delta` to the int in a local slot without touching the stack.
    IInc {
        /// Local slot to increment.
        local: u16,
        /// Signed amount to add.
        delta: i32,
    },

    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide (IEEE semantics; no exception).
    FDiv,
    /// Float negate.
    FNeg,
    /// Int → float.
    I2F,
    /// Float → int (truncating; saturates at the int range like the JVM).
    F2I,
    /// Compare two floats, pushing -1/0/1 (NaN compares as 1, like `fcmpg`).
    FCmp,

    /// Unconditional jump.
    Goto(InsnIndex),
    /// Pop an int, jump if it satisfies `cond` versus zero.
    If(Cond, InsnIndex),
    /// Pop two ints (`..., lhs, rhs`), jump if `lhs cond rhs`.
    IfICmp(Cond, InsnIndex),
    /// Pop a reference, jump if null.
    IfNull(InsnIndex),
    /// Pop a reference, jump if non-null.
    IfNonNull(InsnIndex),
    /// Pop an int `k`; jump to `targets[k - low]`, or `default` if out of
    /// range.
    TableSwitch {
        /// Value matching `targets[0]`.
        low: i64,
        /// Jump table.
        targets: Vec<InsnIndex>,
        /// Target when the key is outside `low..low + targets.len()`.
        default: InsnIndex,
    },

    /// Call a static method (pool `MethodRef`). Arguments are popped
    /// right-to-left; a non-void result is pushed.
    InvokeStatic(CpIndex),
    /// Call an instance method: as `InvokeStatic`, plus a receiver popped
    /// below the arguments (throws `java/lang/NullPointerException` on a
    /// null receiver). Dispatch is by the receiver's dynamic class.
    InvokeVirtual(CpIndex),
    /// Return void.
    Return,
    /// Return the int on top of stack.
    IReturn,
    /// Return the float on top of stack.
    FReturn,
    /// Return the reference on top of stack.
    AReturn,

    /// Allocate an instance of the pool `Class`, pushing the reference.
    /// Fields start zeroed/null.
    New(CpIndex),
    /// Pop a receiver, push the named instance field (pool `FieldRef`).
    GetField(CpIndex),
    /// Pop value then receiver, store into the named instance field.
    PutField(CpIndex),
    /// Push the named static field.
    GetStatic(CpIndex),
    /// Pop into the named static field.
    PutStatic(CpIndex),

    /// Pop a length, allocate an array of that kind, push the reference.
    /// Throws `java/lang/NegativeArraySizeException` on negative length.
    NewArray(ArrayKind),
    /// Pop index then arrayref, push the int element.
    IALoad,
    /// Pop value, index, arrayref; store the int element.
    IAStore,
    /// Pop index then arrayref, push the float element.
    FALoad,
    /// Pop value, index, arrayref; store the float element.
    FAStore,
    /// Pop index then arrayref, push the reference element.
    AALoad,
    /// Pop value, index, arrayref; store the reference element.
    AAStore,
    /// Pop an arrayref, push its length.
    ArrayLength,

    /// Pop a reference and throw it as an exception. Unwinds frames until an
    /// exception-table entry catches it; uncaught exceptions terminate the
    /// thread.
    AThrow,
}

impl Insn {
    /// Branch targets of this instruction, if any.
    pub fn branch_targets(&self) -> Vec<InsnIndex> {
        match self {
            Insn::Goto(t)
            | Insn::If(_, t)
            | Insn::IfICmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t) => vec![*t],
            Insn::TableSwitch {
                targets, default, ..
            } => {
                let mut out = targets.clone();
                out.push(*default);
                out
            }
            _ => Vec::new(),
        }
    }

    /// Can control flow continue to the next instruction after this one?
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Insn::Goto(_)
                | Insn::TableSwitch { .. }
                | Insn::Return
                | Insn::IReturn
                | Insn::FReturn
                | Insn::AReturn
                | Insn::AThrow
        )
    }

    /// Is this a method-terminating return?
    pub fn is_return(&self) -> bool {
        matches!(
            self,
            Insn::Return | Insn::IReturn | Insn::FReturn | Insn::AReturn
        )
    }

    /// Is this a method invocation?
    pub fn is_invoke(&self) -> bool {
        matches!(self, Insn::InvokeStatic(_) | Insn::InvokeVirtual(_))
    }

    /// Rewrite every branch target through `f` — used when a transform
    /// inserts or removes instructions.
    pub fn map_targets(&mut self, mut f: impl FnMut(InsnIndex) -> InsnIndex) {
        match self {
            Insn::Goto(t)
            | Insn::If(_, t)
            | Insn::IfICmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t) => *t = f(*t),
            Insn::TableSwitch {
                targets, default, ..
            } => {
                for t in targets.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            _ => {}
        }
    }

    /// Assembly mnemonic (without operands).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Insn::Nop => "nop",
            Insn::IConst(_) => "iconst",
            Insn::FConst(_) => "fconst",
            Insn::AConstNull => "aconst_null",
            Insn::Ldc(_) => "ldc",
            Insn::ILoad(_) => "iload",
            Insn::FLoad(_) => "fload",
            Insn::ALoad(_) => "aload",
            Insn::IStore(_) => "istore",
            Insn::FStore(_) => "fstore",
            Insn::AStore(_) => "astore",
            Insn::Pop => "pop",
            Insn::Dup => "dup",
            Insn::Swap => "swap",
            Insn::IAdd => "iadd",
            Insn::ISub => "isub",
            Insn::IMul => "imul",
            Insn::IDiv => "idiv",
            Insn::IRem => "irem",
            Insn::INeg => "ineg",
            Insn::IShl => "ishl",
            Insn::IShr => "ishr",
            Insn::IUShr => "iushr",
            Insn::IAnd => "iand",
            Insn::IOr => "ior",
            Insn::IXor => "ixor",
            Insn::IInc { .. } => "iinc",
            Insn::FAdd => "fadd",
            Insn::FSub => "fsub",
            Insn::FMul => "fmul",
            Insn::FDiv => "fdiv",
            Insn::FNeg => "fneg",
            Insn::I2F => "i2f",
            Insn::F2I => "f2i",
            Insn::FCmp => "fcmp",
            Insn::Goto(_) => "goto",
            Insn::If(..) => "if",
            Insn::IfICmp(..) => "if_icmp",
            Insn::IfNull(_) => "ifnull",
            Insn::IfNonNull(_) => "ifnonnull",
            Insn::TableSwitch { .. } => "tableswitch",
            Insn::InvokeStatic(_) => "invokestatic",
            Insn::InvokeVirtual(_) => "invokevirtual",
            Insn::Return => "return",
            Insn::IReturn => "ireturn",
            Insn::FReturn => "freturn",
            Insn::AReturn => "areturn",
            Insn::New(_) => "new",
            Insn::GetField(_) => "getfield",
            Insn::PutField(_) => "putfield",
            Insn::GetStatic(_) => "getstatic",
            Insn::PutStatic(_) => "putstatic",
            Insn::NewArray(_) => "newarray",
            Insn::IALoad => "iaload",
            Insn::IAStore => "iastore",
            Insn::FALoad => "faload",
            Insn::FAStore => "fastore",
            Insn::AALoad => "aaload",
            Insn::AAStore => "aastore",
            Insn::ArrayLength => "arraylength",
            Insn::AThrow => "athrow",
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::IConst(v) => write!(f, "iconst {v}"),
            Insn::FConst(v) => write!(f, "fconst {v}"),
            Insn::Ldc(i) => write!(f, "ldc {i}"),
            Insn::ILoad(s) => write!(f, "iload {s}"),
            Insn::FLoad(s) => write!(f, "fload {s}"),
            Insn::ALoad(s) => write!(f, "aload {s}"),
            Insn::IStore(s) => write!(f, "istore {s}"),
            Insn::FStore(s) => write!(f, "fstore {s}"),
            Insn::AStore(s) => write!(f, "astore {s}"),
            Insn::IInc { local, delta } => write!(f, "iinc {local} {delta:+}"),
            Insn::Goto(t) => write!(f, "goto @{t}"),
            Insn::If(c, t) => write!(f, "if{c} @{t}"),
            Insn::IfICmp(c, t) => write!(f, "if_icmp{c} @{t}"),
            Insn::IfNull(t) => write!(f, "ifnull @{t}"),
            Insn::IfNonNull(t) => write!(f, "ifnonnull @{t}"),
            Insn::TableSwitch {
                low,
                targets,
                default,
            } => {
                write!(f, "tableswitch low={low} [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "@{t}")?;
                }
                write!(f, "] default=@{default}")
            }
            Insn::InvokeStatic(i) => write!(f, "invokestatic {i}"),
            Insn::InvokeVirtual(i) => write!(f, "invokevirtual {i}"),
            Insn::New(i) => write!(f, "new {i}"),
            Insn::GetField(i) => write!(f, "getfield {i}"),
            Insn::PutField(i) => write!(f, "putfield {i}"),
            Insn::GetStatic(i) => write!(f, "getstatic {i}"),
            Insn::PutStatic(i) => write!(f, "putstatic {i}"),
            Insn::NewArray(k) => write!(f, "newarray {k}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval() {
        use std::cmp::Ordering::*;
        assert!(Cond::Eq.eval(Equal));
        assert!(!Cond::Eq.eval(Less));
        assert!(Cond::Ne.eval(Greater));
        assert!(Cond::Lt.eval(Less));
        assert!(!Cond::Lt.eval(Equal));
        assert!(Cond::Ge.eval(Equal));
        assert!(Cond::Ge.eval(Greater));
        assert!(Cond::Gt.eval(Greater));
        assert!(!Cond::Gt.eval(Equal));
        assert!(Cond::Le.eval(Less));
        assert!(Cond::Le.eval(Equal));
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Insn::Goto(7).branch_targets(), vec![7]);
        assert_eq!(Insn::If(Cond::Eq, 3).branch_targets(), vec![3]);
        assert!(Insn::IAdd.branch_targets().is_empty());
        let ts = Insn::TableSwitch {
            low: 0,
            targets: vec![1, 2],
            default: 9,
        };
        assert_eq!(ts.branch_targets(), vec![1, 2, 9]);
    }

    #[test]
    fn fall_through() {
        assert!(Insn::IAdd.falls_through());
        assert!(Insn::If(Cond::Eq, 0).falls_through());
        assert!(!Insn::Goto(0).falls_through());
        assert!(!Insn::Return.falls_through());
        assert!(!Insn::AThrow.falls_through());
        assert!(!Insn::TableSwitch {
            low: 0,
            targets: vec![],
            default: 0
        }
        .falls_through());
    }

    #[test]
    fn map_targets_rewrites_all() {
        let mut i = Insn::TableSwitch {
            low: 0,
            targets: vec![1, 2],
            default: 3,
        };
        i.map_targets(|t| t + 10);
        assert_eq!(i.branch_targets(), vec![11, 12, 13]);
        let mut g = Insn::Goto(5);
        g.map_targets(|t| t + 1);
        assert_eq!(g, Insn::Goto(6));
        let mut a = Insn::IAdd;
        a.map_targets(|_| panic!("no targets to map"));
        assert_eq!(a, Insn::IAdd);
    }

    #[test]
    fn classification() {
        assert!(Insn::Return.is_return());
        assert!(Insn::IReturn.is_return());
        assert!(!Insn::Goto(0).is_return());
        assert!(Insn::InvokeStatic(CpIndex(0)).is_invoke());
        assert!(Insn::InvokeVirtual(CpIndex(0)).is_invoke());
        assert!(!Insn::IAdd.is_invoke());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Insn::IConst(-3).to_string(), "iconst -3");
        assert_eq!(Insn::IfICmp(Cond::Lt, 4).to_string(), "if_icmplt @4");
        assert_eq!(
            Insn::IInc {
                local: 2,
                delta: -1
            }
            .to_string(),
            "iinc 2 -1"
        );
        assert_eq!(Insn::NewArray(ArrayKind::Int).to_string(), "newarray int");
        assert_eq!(Insn::IAdd.to_string(), "iadd");
    }
}
