//! Structural bytecode validation.
//!
//! A dataflow pass over each method body in the spirit of the JVM verifier:
//! it simulates the operand stack (with value kinds), follows every branch,
//! and rejects underflow, kind mismatches, inconsistent stack shapes at merge
//! points, out-of-range branch targets and local slots, dangling constant-pool
//! references, malformed exception tables, and bodies that can fall off the
//! end. As a byproduct it computes the true maximum stack depth, which
//! [`crate::builder::MethodBuilder`] uses to fill in `max_stack`.
//!
//! The pass is *structural*, not fully type-safe: local-variable slots are
//! bounds-checked but not kind-tracked (the VM re-checks kinds at runtime).
//! That matches what the paper's tooling needs — instrumentation output must
//! be well-formed, and behavioural equivalence is established by tests, not
//! by the verifier.

use std::collections::HashMap;

use crate::class::{ClassFile, Code, MethodInfo};
use crate::constpool::{Constant, ConstantPool};
use crate::error::ClassfileError;
use crate::insn::{Insn, InsnIndex};
use crate::ty::{ReturnType, Type};

/// The kind of a value on the simulated operand stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VKind {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Object or array reference (or null).
    Ref,
}

impl VKind {
    fn of(ty: &Type) -> VKind {
        match ty {
            Type::Int => VKind::Int,
            Type::Float => VKind::Float,
            Type::Object(_) | Type::Array(_) => VKind::Ref,
        }
    }
}

/// Validation outcome for one method body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeFacts {
    /// Maximum operand-stack depth over all reachable paths.
    pub max_stack: u16,
    /// Highest local slot index used, plus one (0 if no locals touched).
    pub max_local_used: u16,
}

struct Sim<'a> {
    code: &'a Code,
    pool: &'a ConstantPool,
    method: &'a MethodInfo,
    /// Stack shape at each reached pc.
    states: HashMap<InsnIndex, Vec<VKind>>,
    worklist: Vec<InsnIndex>,
    max_stack: usize,
    max_local: usize,
}

impl<'a> Sim<'a> {
    fn err(&self, pc: InsnIndex, msg: impl std::fmt::Display) -> ClassfileError {
        ClassfileError::Invalid(format!(
            "{}.{}: at pc {pc} ({}): {msg}",
            self.method.name(),
            self.method.descriptor_string(),
            self.code
                .insns
                .get(pc as usize)
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<out of range>".into()),
        ))
    }

    fn flow_to(
        &mut self,
        from: InsnIndex,
        to: InsnIndex,
        stack: &[VKind],
    ) -> Result<(), ClassfileError> {
        if (to as usize) >= self.code.insns.len() {
            return Err(self.err(from, format!("branch target @{to} out of range")));
        }
        match self.states.get(&to) {
            Some(existing) => {
                if existing != stack {
                    return Err(self.err(
                        from,
                        format!(
                            "inconsistent stack at merge point @{to}: {existing:?} vs {stack:?}"
                        ),
                    ));
                }
            }
            None => {
                // Entry depth at a merge target counts toward max_stack
                // even if the first instruction there pops immediately.
                self.max_stack = self.max_stack.max(stack.len());
                self.states.insert(to, stack.to_vec());
                self.worklist.push(to);
            }
        }
        Ok(())
    }

    fn touch_local(&mut self, pc: InsnIndex, slot: u16) -> Result<(), ClassfileError> {
        if slot >= self.code.max_locals {
            return Err(self.err(
                pc,
                format!(
                    "local slot {slot} out of range (max_locals {})",
                    self.code.max_locals
                ),
            ));
        }
        self.max_local = self.max_local.max(slot as usize + 1);
        Ok(())
    }

    fn run(&mut self) -> Result<(), ClassfileError> {
        // Entry state: empty stack.
        self.states.insert(0, Vec::new());
        self.worklist.push(0);
        // Exception handlers start with just the thrown reference.
        for (i, h) in self.code.exception_table.iter().enumerate() {
            if h.start >= h.end || (h.end as usize) > self.code.insns.len() {
                return Err(ClassfileError::Invalid(format!(
                    "{}: exception handler {i} has bad range {}..{}",
                    self.method.name(),
                    h.start,
                    h.end
                )));
            }
            if (h.handler as usize) >= self.code.insns.len() {
                return Err(ClassfileError::Invalid(format!(
                    "{}: exception handler {i} entry @{} out of range",
                    self.method.name(),
                    h.handler
                )));
            }
            let entry = vec![VKind::Ref];
            // The handler receives the thrown reference: depth ≥ 1.
            self.max_stack = self.max_stack.max(1);
            match self.states.get(&h.handler) {
                Some(existing) if *existing != entry => {
                    return Err(ClassfileError::Invalid(format!(
                        "{}: handler @{} reached with stack {existing:?}, expected [Ref]",
                        self.method.name(),
                        h.handler
                    )));
                }
                Some(_) => {}
                None => {
                    self.states.insert(h.handler, entry);
                    self.worklist.push(h.handler);
                }
            }
        }
        while let Some(pc) = self.worklist.pop() {
            self.step(pc)?;
        }
        Ok(())
    }

    fn pop(&self, pc: InsnIndex, stack: &mut Vec<VKind>) -> Result<VKind, ClassfileError> {
        stack
            .pop()
            .ok_or_else(|| self.err(pc, "operand stack underflow"))
    }

    fn pop_kind(
        &self,
        pc: InsnIndex,
        stack: &mut Vec<VKind>,
        want: VKind,
    ) -> Result<(), ClassfileError> {
        let got = self.pop(pc, stack)?;
        if got != want {
            return Err(self.err(pc, format!("expected {want:?} on stack, found {got:?}")));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, pc: InsnIndex) -> Result<(), ClassfileError> {
        let mut stack = self.states[&pc].clone();
        let insn = self.code.insns[pc as usize].clone();
        use Insn::*;
        use VKind::{Float as F, Int as I, Ref as R};
        match &insn {
            Nop => {}
            IConst(_) => stack.push(I),
            FConst(_) => stack.push(F),
            AConstNull => stack.push(R),
            Ldc(idx) => {
                match self.pool.get(*idx) {
                    Ok(Constant::Utf8(_)) => {}
                    Ok(other) => {
                        return Err(self.err(pc, format!("ldc of non-Utf8 constant {other:?}")))
                    }
                    Err(e) => return Err(self.err(pc, e)),
                }
                stack.push(R);
            }
            ILoad(s) => {
                self.touch_local(pc, *s)?;
                stack.push(I);
            }
            FLoad(s) => {
                self.touch_local(pc, *s)?;
                stack.push(F);
            }
            ALoad(s) => {
                self.touch_local(pc, *s)?;
                stack.push(R);
            }
            IStore(s) => {
                self.touch_local(pc, *s)?;
                self.pop_kind(pc, &mut stack, I)?;
            }
            FStore(s) => {
                self.touch_local(pc, *s)?;
                self.pop_kind(pc, &mut stack, F)?;
            }
            AStore(s) => {
                self.touch_local(pc, *s)?;
                self.pop_kind(pc, &mut stack, R)?;
            }
            Pop => {
                self.pop(pc, &mut stack)?;
            }
            Dup => {
                let top = *stack
                    .last()
                    .ok_or_else(|| self.err(pc, "operand stack underflow"))?;
                stack.push(top);
            }
            Swap => {
                let a = self.pop(pc, &mut stack)?;
                let b = self.pop(pc, &mut stack)?;
                stack.push(a);
                stack.push(b);
            }
            IAdd | ISub | IMul | IDiv | IRem | IShl | IShr | IUShr | IAnd | IOr | IXor => {
                self.pop_kind(pc, &mut stack, I)?;
                self.pop_kind(pc, &mut stack, I)?;
                stack.push(I);
            }
            INeg => {
                self.pop_kind(pc, &mut stack, I)?;
                stack.push(I);
            }
            IInc { local, .. } => self.touch_local(pc, *local)?,
            FAdd | FSub | FMul | FDiv => {
                self.pop_kind(pc, &mut stack, F)?;
                self.pop_kind(pc, &mut stack, F)?;
                stack.push(F);
            }
            FNeg => {
                self.pop_kind(pc, &mut stack, F)?;
                stack.push(F);
            }
            I2F => {
                self.pop_kind(pc, &mut stack, I)?;
                stack.push(F);
            }
            F2I => {
                self.pop_kind(pc, &mut stack, F)?;
                stack.push(I);
            }
            FCmp => {
                self.pop_kind(pc, &mut stack, F)?;
                self.pop_kind(pc, &mut stack, F)?;
                stack.push(I);
            }
            Goto(t) => {
                self.max_stack = self.max_stack.max(stack.len());
                return self.flow_to(pc, *t, &stack);
            }
            If(_, t) => {
                self.pop_kind(pc, &mut stack, I)?;
                self.flow_to(pc, *t, &stack)?;
            }
            IfICmp(_, t) => {
                self.pop_kind(pc, &mut stack, I)?;
                self.pop_kind(pc, &mut stack, I)?;
                self.flow_to(pc, *t, &stack)?;
            }
            IfNull(t) | IfNonNull(t) => {
                self.pop_kind(pc, &mut stack, R)?;
                self.flow_to(pc, *t, &stack)?;
            }
            TableSwitch {
                targets, default, ..
            } => {
                self.pop_kind(pc, &mut stack, I)?;
                self.max_stack = self.max_stack.max(stack.len());
                for t in targets {
                    self.flow_to(pc, *t, &stack)?;
                }
                return self.flow_to(pc, *default, &stack);
            }
            InvokeStatic(idx) | InvokeVirtual(idx) => {
                let mref = self.pool.method_ref(*idx).map_err(|e| self.err(pc, e))?;
                let desc: crate::ty::MethodDescriptor =
                    mref.descriptor.parse().map_err(|e| self.err(pc, e))?;
                for p in desc.params().iter().rev() {
                    self.pop_kind(pc, &mut stack, VKind::of(p))?;
                }
                if matches!(insn, InvokeVirtual(_)) {
                    self.pop_kind(pc, &mut stack, R)?;
                }
                if let ReturnType::Value(t) = desc.return_type() {
                    stack.push(VKind::of(t));
                }
            }
            Return => {
                if self.method.descriptor().return_type().is_value() {
                    return Err(self.err(pc, "void return in a value-returning method"));
                }
                self.max_stack = self.max_stack.max(stack.len());
                return Ok(());
            }
            IReturn | FReturn | AReturn => {
                let want = match insn {
                    IReturn => I,
                    FReturn => F,
                    _ => R,
                };
                self.pop_kind(pc, &mut stack, want)?;
                match self.method.descriptor().return_type() {
                    ReturnType::Value(t) if VKind::of(t) == want => {}
                    other => {
                        return Err(self.err(
                            pc,
                            format!("return kind {want:?} does not match declared {other:?}"),
                        ))
                    }
                }
                self.max_stack = self.max_stack.max(stack.len().max(1));
                return Ok(());
            }
            New(idx) => {
                self.pool.class_name(*idx).map_err(|e| self.err(pc, e))?;
                stack.push(R);
            }
            GetField(idx) | GetStatic(idx) => {
                let fref = self.pool.field_ref(*idx).map_err(|e| self.err(pc, e))?;
                let ty: Type = fref.descriptor.parse().map_err(|e| self.err(pc, e))?;
                if matches!(insn, GetField(_)) {
                    self.pop_kind(pc, &mut stack, R)?;
                }
                stack.push(VKind::of(&ty));
            }
            PutField(idx) | PutStatic(idx) => {
                let fref = self.pool.field_ref(*idx).map_err(|e| self.err(pc, e))?;
                let ty: Type = fref.descriptor.parse().map_err(|e| self.err(pc, e))?;
                self.pop_kind(pc, &mut stack, VKind::of(&ty))?;
                if matches!(insn, PutField(_)) {
                    self.pop_kind(pc, &mut stack, R)?;
                }
            }
            NewArray(_) => {
                self.pop_kind(pc, &mut stack, I)?;
                stack.push(R);
            }
            IALoad | FALoad | AALoad => {
                self.pop_kind(pc, &mut stack, I)?;
                self.pop_kind(pc, &mut stack, R)?;
                stack.push(match insn {
                    IALoad => I,
                    FALoad => F,
                    _ => R,
                });
            }
            IAStore | FAStore | AAStore => {
                let want = match insn {
                    IAStore => I,
                    FAStore => F,
                    _ => R,
                };
                self.pop_kind(pc, &mut stack, want)?;
                self.pop_kind(pc, &mut stack, I)?;
                self.pop_kind(pc, &mut stack, R)?;
            }
            ArrayLength => {
                self.pop_kind(pc, &mut stack, R)?;
                stack.push(I);
            }
            AThrow => {
                self.pop_kind(pc, &mut stack, R)?;
                self.max_stack = self.max_stack.max(stack.len() + 1);
                return Ok(());
            }
        }
        self.max_stack = self.max_stack.max(stack.len());
        // Fall through to the next instruction.
        let next = pc + 1;
        if (next as usize) >= self.code.insns.len() {
            return Err(self.err(pc, "control flow falls off the end of the method"));
        }
        self.flow_to(pc, next, &stack)
    }
}

/// Validate one method body and compute its stack facts.
///
/// # Errors
///
/// Returns [`ClassfileError::Invalid`] describing the first structural
/// problem found, or [`ClassfileError::BadConstant`]-rooted failures wrapped
/// in `Invalid` when pool references dangle.
pub fn validate_code(
    pool: &ConstantPool,
    method: &MethodInfo,
    code: &Code,
) -> Result<CodeFacts, ClassfileError> {
    if code.insns.is_empty() {
        return Err(ClassfileError::Invalid(format!(
            "{}: empty code body",
            method.name()
        )));
    }
    if code.insns.len() > InsnIndex::MAX as usize {
        return Err(ClassfileError::Invalid(format!(
            "{}: too many instructions",
            method.name()
        )));
    }
    if (method.arg_slots() as u64) > u64::from(code.max_locals) {
        return Err(ClassfileError::Invalid(format!(
            "{}: max_locals {} smaller than argument slots {}",
            method.name(),
            code.max_locals,
            method.arg_slots()
        )));
    }
    let mut sim = Sim {
        code,
        pool,
        method,
        states: HashMap::new(),
        worklist: Vec::new(),
        max_stack: 0,
        max_local: 0,
    };
    sim.run()?;
    Ok(CodeFacts {
        max_stack: u16::try_from(sim.max_stack)
            .map_err(|_| ClassfileError::Invalid(format!("{}: stack too deep", method.name())))?,
        max_local_used: sim.max_local as u16,
    })
}

/// Validate a whole class: every method body, declared `max_stack` adequacy,
/// and the native/body invariant.
///
/// # Errors
///
/// Returns the first [`ClassfileError`] found.
pub fn validate_class(class: &ClassFile) -> Result<(), ClassfileError> {
    for m in class.methods() {
        match (&m.code, m.is_native()) {
            (None, false) => {
                return Err(ClassfileError::Invalid(format!(
                    "{}.{} is not native but has no code",
                    class.name(),
                    m.name()
                )))
            }
            (Some(_), true) => {
                return Err(ClassfileError::Invalid(format!(
                    "{}.{} is native but has code",
                    class.name(),
                    m.name()
                )))
            }
            (Some(code), false) => {
                let facts = validate_code(&class.pool, m, code)?;
                if facts.max_stack > code.max_stack {
                    return Err(ClassfileError::Invalid(format!(
                        "{}.{}: declared max_stack {} < required {}",
                        class.name(),
                        m.name(),
                        code.max_stack,
                        facts.max_stack
                    )));
                }
            }
            (None, true) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ExceptionHandler;
    use crate::flags::MethodFlags;
    use crate::insn::Cond;

    fn method(desc: &str) -> MethodInfo {
        MethodInfo::new(
            "t",
            desc,
            MethodFlags::STATIC,
            Code {
                max_stack: 0,
                max_locals: 0,
                insns: vec![Insn::Return],
                exception_table: vec![],
            },
        )
        .unwrap()
    }

    fn check(desc: &str, max_locals: u16, insns: Vec<Insn>) -> Result<CodeFacts, ClassfileError> {
        check_with(desc, max_locals, insns, vec![], &ConstantPool::new())
    }

    fn check_with(
        desc: &str,
        max_locals: u16,
        insns: Vec<Insn>,
        exception_table: Vec<ExceptionHandler>,
        pool: &ConstantPool,
    ) -> Result<CodeFacts, ClassfileError> {
        let m = method(desc);
        let code = Code {
            max_stack: 0,
            max_locals,
            insns,
            exception_table,
        };
        validate_code(pool, &m, &code)
    }

    #[test]
    fn straight_line_depth() {
        let facts = check(
            "()I",
            0,
            vec![Insn::IConst(1), Insn::IConst(2), Insn::IAdd, Insn::IReturn],
        )
        .unwrap();
        assert_eq!(facts.max_stack, 2);
    }

    #[test]
    fn underflow_rejected() {
        let err = check("()V", 0, vec![Insn::IAdd, Insn::Return]).unwrap_err();
        assert!(err.to_string().contains("underflow"), "{err}");
    }

    #[test]
    fn kind_mismatch_rejected() {
        let err = check("()V", 0, vec![Insn::IConst(1), Insn::FNeg, Insn::Return]).unwrap_err();
        assert!(err.to_string().contains("expected Float"), "{err}");
    }

    #[test]
    fn falls_off_end_rejected() {
        let err = check("()V", 0, vec![Insn::Nop]).unwrap_err();
        assert!(err.to_string().contains("falls off"), "{err}");
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let err = check("()V", 0, vec![Insn::Goto(9), Insn::Return]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn local_out_of_range_rejected() {
        let err = check("()V", 1, vec![Insn::ILoad(1), Insn::Pop, Insn::Return]).unwrap_err();
        assert!(err.to_string().contains("local slot 1"), "{err}");
    }

    #[test]
    fn inconsistent_merge_rejected() {
        // Two paths to pc 4 with different depths.
        let err = check(
            "(I)V",
            1,
            vec![
                Insn::ILoad(0),        // 0
                Insn::If(Cond::Eq, 3), // 1: eq -> 3 (empty stack)
                Insn::IConst(7),       // 2: push
                Insn::Nop,             // 3: merge point, depth 0 vs 1
                Insn::Return,          // 4
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("merge point"), "{err}");
    }

    #[test]
    fn consistent_diamond_accepted() {
        let facts = check(
            "(I)I",
            1,
            vec![
                Insn::ILoad(0),        // 0
                Insn::If(Cond::Eq, 4), // 1
                Insn::IConst(1),       // 2
                Insn::Goto(5),         // 3
                Insn::IConst(2),       // 4
                Insn::IReturn,         // 5 (merge, depth 1)
            ],
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
    }

    #[test]
    fn loop_accepted() {
        let facts = check(
            "(I)V",
            1,
            vec![
                Insn::ILoad(0),        // 0
                Insn::If(Cond::Le, 4), // 1
                Insn::IInc {
                    local: 0,
                    delta: -1,
                }, // 2
                Insn::Goto(0),         // 3
                Insn::Return,          // 4
            ],
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
        assert_eq!(facts.max_local_used, 1);
    }

    #[test]
    fn wrong_return_kind_rejected() {
        let err = check("()I", 0, vec![Insn::Return]).unwrap_err();
        assert!(err.to_string().contains("void return"), "{err}");
        let err = check("()V", 0, vec![Insn::IConst(0), Insn::IReturn]).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        let err = check("()F", 0, vec![Insn::IConst(0), Insn::IReturn]).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn invoke_effects() {
        let mut pool = ConstantPool::new();
        let m = pool.intern_method_ref("x/Y", "f", "(IF)I");
        let facts = check_with(
            "()I",
            0,
            vec![
                Insn::IConst(1),
                Insn::FConst(2.0),
                Insn::InvokeStatic(m),
                Insn::IReturn,
            ],
            vec![],
            &pool,
        )
        .unwrap();
        assert_eq!(facts.max_stack, 2);
        // Wrong argument kinds:
        let err = check_with(
            "()I",
            0,
            vec![
                Insn::FConst(1.0),
                Insn::IConst(2),
                Insn::InvokeStatic(m),
                Insn::IReturn,
            ],
            vec![],
            &pool,
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn virtual_invoke_pops_receiver() {
        let mut pool = ConstantPool::new();
        let m = pool.intern_method_ref("x/Y", "f", "()V");
        // Stack has only the receiver; fine for virtual, underflows nothing.
        let facts = check_with(
            "()V",
            0,
            vec![Insn::AConstNull, Insn::InvokeVirtual(m), Insn::Return],
            vec![],
            &pool,
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
        // Static invoke of same ref leaves the null on the stack at return.
        let facts = check_with(
            "()V",
            0,
            vec![
                Insn::AConstNull,
                Insn::InvokeStatic(m),
                Insn::Pop,
                Insn::Return,
            ],
            vec![],
            &pool,
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
    }

    #[test]
    fn exception_handler_entry_state() {
        let mut pool = ConstantPool::new();
        let m = pool.intern_method_ref("x/Y", "f", "()V");
        // try { f(); } finally-style handler rethrows.
        let facts = check_with(
            "()V",
            0,
            vec![
                Insn::InvokeStatic(m), // 0 (covered)
                Insn::Return,          // 1
                Insn::AThrow,          // 2 handler: [Ref] -> throw
            ],
            vec![ExceptionHandler {
                start: 0,
                end: 1,
                handler: 2,
                catch_class: None,
            }],
            &pool,
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
    }

    #[test]
    fn bad_exception_table_rejected() {
        let err = check_with(
            "()V",
            0,
            vec![Insn::Return],
            vec![ExceptionHandler {
                start: 0,
                end: 0,
                handler: 0,
                catch_class: None,
            }],
            &ConstantPool::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("bad range"), "{err}");
        let err = check_with(
            "()V",
            0,
            vec![Insn::Return],
            vec![ExceptionHandler {
                start: 0,
                end: 1,
                handler: 5,
                catch_class: None,
            }],
            &ConstantPool::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn dangling_pool_ref_rejected() {
        let err = check(
            "()V",
            0,
            vec![
                Insn::InvokeStatic(crate::constpool::CpIndex(3)),
                Insn::Return,
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ClassfileError::Invalid(_)), "{err}");
    }

    #[test]
    fn empty_body_rejected() {
        let err = check("()V", 0, vec![]).unwrap_err();
        assert!(err.to_string().contains("empty code"), "{err}");
    }

    #[test]
    fn max_locals_must_cover_args() {
        let m = MethodInfo::new(
            "t",
            "(II)V",
            MethodFlags::STATIC,
            Code {
                max_stack: 0,
                max_locals: 1, // two args need two slots
                insns: vec![Insn::Return],
                exception_table: vec![],
            },
        )
        .unwrap();
        let err = validate_code(&ConstantPool::new(), &m, m.code.as_ref().unwrap()).unwrap_err();
        assert!(err.to_string().contains("argument slots"), "{err}");
    }

    #[test]
    fn validate_class_checks_native_invariant() {
        let mut c = ClassFile::new("a/B");
        c.add_method(MethodInfo::new_native("n", "()V", MethodFlags::EMPTY).unwrap())
            .unwrap();
        c.add_method(
            MethodInfo::new(
                "ok",
                "()V",
                MethodFlags::STATIC,
                Code {
                    max_stack: 0,
                    max_locals: 0,
                    insns: vec![Insn::Return],
                    exception_table: vec![],
                },
            )
            .unwrap(),
        )
        .unwrap();
        validate_class(&c).unwrap();
    }

    #[test]
    fn validate_class_rejects_understated_max_stack() {
        let mut c = ClassFile::new("a/B");
        c.add_method(
            MethodInfo::new(
                "m",
                "()V",
                MethodFlags::STATIC,
                Code {
                    max_stack: 0, // needs 1
                    max_locals: 0,
                    insns: vec![Insn::IConst(1), Insn::Pop, Insn::Return],
                    exception_table: vec![],
                },
            )
            .unwrap(),
        )
        .unwrap();
        let err = validate_class(&c).unwrap_err();
        assert!(err.to_string().contains("max_stack"), "{err}");
    }

    #[test]
    fn tableswitch_flows_to_all_targets() {
        let facts = check(
            "(I)I",
            1,
            vec![
                Insn::ILoad(0), // 0
                Insn::TableSwitch {
                    low: 0,
                    targets: vec![2, 4],
                    default: 6,
                }, // 1
                Insn::IConst(10), // 2
                Insn::IReturn,  // 3
                Insn::IConst(20), // 4
                Insn::IReturn,  // 5
                Insn::IConst(0), // 6
                Insn::IReturn,  // 7
            ],
        )
        .unwrap();
        assert_eq!(facts.max_stack, 1);
    }

    #[test]
    fn unreachable_garbage_is_ignored() {
        // Dead code after an unconditional return is not validated —
        // same as the JVM verifier's reachability rule.
        let facts = check("()V", 0, vec![Insn::Return, Insn::IAdd]).unwrap();
        assert_eq!(facts.max_stack, 0);
    }
}
