//! Binary serialization of class files.
//!
//! The paper's static-instrumentation pipeline works on *files*: it reads
//! `.class` files (individual or archived in `rt.jar`), rewrites them, and
//! writes them back for the JVM to pick up via `-Xbootclasspath/p:`. This
//! module defines the analogous on-disk format for the simulator so that
//! the instrumentation tool in `jvmsim-instr` is a real
//! bytes-in/bytes-out transformer rather than an in-memory shortcut.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  u32  0x4A564D53 ("JVMS")
//! version u16 1
//! flags  u16
//! name   str            (u16 length + UTF-8 bytes)
//! super  u8 + str       (0 = none)
//! pool   u16 count, then tagged entries
//! fields u16 count, then (str name, str descriptor, u16 flags)
//! methods u16 count, then (str name, str descriptor, u16 flags, u8 has_code
//!          [+ code: u16 max_stack, u16 max_locals, u32 n, insns,
//!             u16 handlers, (u32 start, u32 end, u32 handler, u8 + str)])
//! ```

use crate::class::{ClassFile, Code, ExceptionHandler, FieldInfo, MethodInfo};
use crate::constpool::{Constant, ConstantPool, CpIndex};
use crate::error::ClassfileError;
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::insn::{ArrayKind, Cond, Insn};

/// File magic: `"JVMS"`.
pub const MAGIC: u32 = 0x4A56_4D53;
/// Current format version.
pub const VERSION: u16 = 1;

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() <= u16::MAX as usize,
            "string too long for format"
        );
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Gt => 4,
        Cond::Le => 5,
    }
}

fn array_kind_code(k: ArrayKind) -> u8 {
    match k {
        ArrayKind::Int => 0,
        ArrayKind::Float => 1,
        ArrayKind::Ref => 2,
    }
}

#[allow(clippy::too_many_lines)]
fn write_insn(w: &mut Writer, insn: &Insn) {
    use Insn::*;
    match insn {
        Nop => w.u8(0x00),
        IConst(v) => {
            w.u8(0x01);
            w.i64(*v);
        }
        FConst(v) => {
            w.u8(0x02);
            w.f64(*v);
        }
        AConstNull => w.u8(0x03),
        Ldc(i) => {
            w.u8(0x04);
            w.u16(i.0);
        }
        ILoad(s) => {
            w.u8(0x05);
            w.u16(*s);
        }
        FLoad(s) => {
            w.u8(0x06);
            w.u16(*s);
        }
        ALoad(s) => {
            w.u8(0x07);
            w.u16(*s);
        }
        IStore(s) => {
            w.u8(0x08);
            w.u16(*s);
        }
        FStore(s) => {
            w.u8(0x09);
            w.u16(*s);
        }
        AStore(s) => {
            w.u8(0x0A);
            w.u16(*s);
        }
        Pop => w.u8(0x0B),
        Dup => w.u8(0x0C),
        Swap => w.u8(0x0D),
        IAdd => w.u8(0x10),
        ISub => w.u8(0x11),
        IMul => w.u8(0x12),
        IDiv => w.u8(0x13),
        IRem => w.u8(0x14),
        INeg => w.u8(0x15),
        IShl => w.u8(0x16),
        IShr => w.u8(0x17),
        IUShr => w.u8(0x18),
        IAnd => w.u8(0x19),
        IOr => w.u8(0x1A),
        IXor => w.u8(0x1B),
        IInc { local, delta } => {
            w.u8(0x1C);
            w.u16(*local);
            w.i32(*delta);
        }
        FAdd => w.u8(0x20),
        FSub => w.u8(0x21),
        FMul => w.u8(0x22),
        FDiv => w.u8(0x23),
        FNeg => w.u8(0x24),
        I2F => w.u8(0x25),
        F2I => w.u8(0x26),
        FCmp => w.u8(0x27),
        Goto(t) => {
            w.u8(0x30);
            w.u32(*t);
        }
        If(c, t) => {
            w.u8(0x31);
            w.u8(cond_code(*c));
            w.u32(*t);
        }
        IfICmp(c, t) => {
            w.u8(0x32);
            w.u8(cond_code(*c));
            w.u32(*t);
        }
        IfNull(t) => {
            w.u8(0x33);
            w.u32(*t);
        }
        IfNonNull(t) => {
            w.u8(0x34);
            w.u32(*t);
        }
        TableSwitch {
            low,
            targets,
            default,
        } => {
            w.u8(0x35);
            w.i64(*low);
            w.u32(targets.len() as u32);
            for t in targets {
                w.u32(*t);
            }
            w.u32(*default);
        }
        InvokeStatic(i) => {
            w.u8(0x40);
            w.u16(i.0);
        }
        InvokeVirtual(i) => {
            w.u8(0x41);
            w.u16(i.0);
        }
        Return => w.u8(0x42),
        IReturn => w.u8(0x43),
        FReturn => w.u8(0x44),
        AReturn => w.u8(0x45),
        New(i) => {
            w.u8(0x50);
            w.u16(i.0);
        }
        GetField(i) => {
            w.u8(0x51);
            w.u16(i.0);
        }
        PutField(i) => {
            w.u8(0x52);
            w.u16(i.0);
        }
        GetStatic(i) => {
            w.u8(0x53);
            w.u16(i.0);
        }
        PutStatic(i) => {
            w.u8(0x54);
            w.u16(i.0);
        }
        NewArray(k) => {
            w.u8(0x55);
            w.u8(array_kind_code(*k));
        }
        IALoad => w.u8(0x56),
        IAStore => w.u8(0x57),
        FALoad => w.u8(0x58),
        FAStore => w.u8(0x59),
        AALoad => w.u8(0x5A),
        AAStore => w.u8(0x5B),
        ArrayLength => w.u8(0x5C),
        AThrow => w.u8(0x60),
    }
}

/// Serialize a class to bytes.
///
/// # Panics
///
/// Panics if a count exceeds the format's `u16`/`u32` ranges (more than
/// 65 535 fields, methods, or exception handlers in one class) — silently
/// truncating would produce an undetectably corrupt file.
pub fn encode(class: &ClassFile) -> Vec<u8> {
    assert!(
        class.fields().len() <= u16::MAX as usize,
        "too many fields to encode"
    );
    assert!(
        class.methods().len() <= u16::MAX as usize,
        "too many methods to encode"
    );
    for m in class.methods() {
        if let Some(code) = &m.code {
            assert!(
                code.exception_table.len() <= u16::MAX as usize,
                "too many exception handlers to encode"
            );
            assert!(
                code.insns.len() <= u32::MAX as usize,
                "too many instructions to encode"
            );
        }
    }
    let mut w = Writer { buf: Vec::new() };
    w.u32(MAGIC);
    w.u16(VERSION);
    w.u16(class.flags.bits());
    w.str(class.name());
    w.opt_str(class.super_name());
    // Constant pool.
    let entries = class.pool.entries();
    w.u16(entries.len() as u16);
    for e in entries {
        match e {
            Constant::Utf8(s) => {
                w.u8(0);
                w.str(s);
            }
            Constant::Class { name } => {
                w.u8(1);
                w.u16(name.0);
            }
            Constant::MethodRef {
                class,
                name,
                descriptor,
            } => {
                w.u8(2);
                w.u16(class.0);
                w.u16(name.0);
                w.u16(descriptor.0);
            }
            Constant::FieldRef {
                class,
                name,
                descriptor,
            } => {
                w.u8(3);
                w.u16(class.0);
                w.u16(name.0);
                w.u16(descriptor.0);
            }
        }
    }
    // Fields.
    w.u16(class.fields().len() as u16);
    for f in class.fields() {
        w.str(f.name());
        w.str(&f.ty().to_string());
        w.u16(f.flags.bits());
    }
    // Methods.
    w.u16(class.methods().len() as u16);
    for m in class.methods() {
        w.str(m.name());
        w.str(m.descriptor_string());
        w.u16(m.flags.bits());
        match &m.code {
            None => w.u8(0),
            Some(code) => {
                w.u8(1);
                w.u16(code.max_stack);
                w.u16(code.max_locals);
                w.u32(code.insns.len() as u32);
                for insn in &code.insns {
                    write_insn(&mut w, insn);
                }
                w.u16(code.exception_table.len() as u16);
                for h in &code.exception_table {
                    w.u32(h.start);
                    w.u32(h.end);
                    w.u32(h.handler);
                    w.opt_str(h.catch_class.as_deref());
                }
            }
        }
    }
    w.buf
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ClassfileError> {
        if self.pos + n > self.data.len() {
            return Err(ClassfileError::BadFormat(format!(
                "truncated at offset {} (wanted {n} bytes of {})",
                self.pos,
                self.data.len()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ClassfileError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ClassfileError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ClassfileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, ClassfileError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ClassfileError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ClassfileError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn str(&mut self) -> Result<String, ClassfileError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ClassfileError::BadFormat(format!("invalid UTF-8 string: {e}")))
    }
    fn opt_str(&mut self) -> Result<Option<String>, ClassfileError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(ClassfileError::BadFormat(format!(
                "bad optional-string tag {other}"
            ))),
        }
    }
    fn cond(&mut self) -> Result<Cond, ClassfileError> {
        Ok(match self.u8()? {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Gt,
            5 => Cond::Le,
            other => {
                return Err(ClassfileError::BadFormat(format!(
                    "bad condition code {other}"
                )))
            }
        })
    }
    fn array_kind(&mut self) -> Result<ArrayKind, ClassfileError> {
        Ok(match self.u8()? {
            0 => ArrayKind::Int,
            1 => ArrayKind::Float,
            2 => ArrayKind::Ref,
            other => return Err(ClassfileError::BadFormat(format!("bad array kind {other}"))),
        })
    }
}

#[allow(clippy::too_many_lines)]
fn read_insn(r: &mut Reader<'_>) -> Result<Insn, ClassfileError> {
    use Insn::*;
    let op = r.u8()?;
    Ok(match op {
        0x00 => Nop,
        0x01 => IConst(r.i64()?),
        0x02 => FConst(r.f64()?),
        0x03 => AConstNull,
        0x04 => Ldc(CpIndex(r.u16()?)),
        0x05 => ILoad(r.u16()?),
        0x06 => FLoad(r.u16()?),
        0x07 => ALoad(r.u16()?),
        0x08 => IStore(r.u16()?),
        0x09 => FStore(r.u16()?),
        0x0A => AStore(r.u16()?),
        0x0B => Pop,
        0x0C => Dup,
        0x0D => Swap,
        0x10 => IAdd,
        0x11 => ISub,
        0x12 => IMul,
        0x13 => IDiv,
        0x14 => IRem,
        0x15 => INeg,
        0x16 => IShl,
        0x17 => IShr,
        0x18 => IUShr,
        0x19 => IAnd,
        0x1A => IOr,
        0x1B => IXor,
        0x1C => IInc {
            local: r.u16()?,
            delta: r.i32()?,
        },
        0x20 => FAdd,
        0x21 => FSub,
        0x22 => FMul,
        0x23 => FDiv,
        0x24 => FNeg,
        0x25 => I2F,
        0x26 => F2I,
        0x27 => FCmp,
        0x30 => Goto(r.u32()?),
        0x31 => {
            let c = r.cond()?;
            If(c, r.u32()?)
        }
        0x32 => {
            let c = r.cond()?;
            IfICmp(c, r.u32()?)
        }
        0x33 => IfNull(r.u32()?),
        0x34 => IfNonNull(r.u32()?),
        0x35 => {
            let low = r.i64()?;
            let n = r.u32()? as usize;
            let mut targets = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                targets.push(r.u32()?);
            }
            let default = r.u32()?;
            TableSwitch {
                low,
                targets,
                default,
            }
        }
        0x40 => InvokeStatic(CpIndex(r.u16()?)),
        0x41 => InvokeVirtual(CpIndex(r.u16()?)),
        0x42 => Return,
        0x43 => IReturn,
        0x44 => FReturn,
        0x45 => AReturn,
        0x50 => New(CpIndex(r.u16()?)),
        0x51 => GetField(CpIndex(r.u16()?)),
        0x52 => PutField(CpIndex(r.u16()?)),
        0x53 => GetStatic(CpIndex(r.u16()?)),
        0x54 => PutStatic(CpIndex(r.u16()?)),
        0x55 => NewArray(r.array_kind()?),
        0x56 => IALoad,
        0x57 => IAStore,
        0x58 => FALoad,
        0x59 => FAStore,
        0x5A => AALoad,
        0x5B => AAStore,
        0x5C => ArrayLength,
        0x60 => AThrow,
        other => {
            return Err(ClassfileError::BadFormat(format!(
                "unknown opcode 0x{other:02X}"
            )))
        }
    })
}

/// Deserialize a class from bytes.
///
/// # Errors
///
/// Returns [`ClassfileError::BadFormat`] on magic/version mismatch,
/// truncation, or any malformed record. The decoded class is *not*
/// re-validated here; run [`crate::validate::validate_class`] before
/// executing untrusted input.
pub fn decode(data: &[u8]) -> Result<ClassFile, ClassfileError> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(ClassfileError::BadFormat(format!(
            "bad magic 0x{magic:08X} (expected 0x{MAGIC:08X})"
        )));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ClassfileError::BadFormat(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let flags_bits = r.u16()?;
    let flags = ClassFlags::from_bits(flags_bits)
        .ok_or_else(|| ClassfileError::BadFormat(format!("bad class flags 0x{flags_bits:04X}")))?;
    let name = r.str()?;
    let super_name = r.opt_str()?;

    let mut class = ClassFile::new(name);
    class.flags = flags;
    if let Some(s) = super_name {
        class.set_super_name(s)
    }

    let mut pool = ConstantPool::new();
    let pool_len = r.u16()?;
    for _ in 0..pool_len {
        let tag = r.u8()?;
        let entry = match tag {
            0 => Constant::Utf8(r.str()?),
            1 => Constant::Class {
                name: CpIndex(r.u16()?),
            },
            2 => Constant::MethodRef {
                class: CpIndex(r.u16()?),
                name: CpIndex(r.u16()?),
                descriptor: CpIndex(r.u16()?),
            },
            3 => Constant::FieldRef {
                class: CpIndex(r.u16()?),
                name: CpIndex(r.u16()?),
                descriptor: CpIndex(r.u16()?),
            },
            other => {
                return Err(ClassfileError::BadFormat(format!(
                    "unknown constant tag {other}"
                )))
            }
        };
        pool.push_raw(entry);
    }
    class.pool = pool;

    let field_count = r.u16()?;
    for _ in 0..field_count {
        let fname = r.str()?;
        let fdesc = r.str()?;
        let bits = r.u16()?;
        let fflags = FieldFlags::from_bits(bits)
            .ok_or_else(|| ClassfileError::BadFormat(format!("bad field flags 0x{bits:04X}")))?;
        class.add_field(FieldInfo::new(fname, &fdesc, fflags)?)?;
    }

    let method_count = r.u16()?;
    for _ in 0..method_count {
        let mname = r.str()?;
        let mdesc = r.str()?;
        let bits = r.u16()?;
        let mflags = MethodFlags::from_bits(bits)
            .ok_or_else(|| ClassfileError::BadFormat(format!("bad method flags 0x{bits:04X}")))?;
        let has_code = r.u8()?;
        let method = match has_code {
            0 => {
                if !mflags.contains(MethodFlags::NATIVE) {
                    return Err(ClassfileError::BadFormat(format!(
                        "method {mname} has no code but is not native"
                    )));
                }
                MethodInfo::new_native(mname, &mdesc, mflags)?
            }
            1 => {
                if mflags.contains(MethodFlags::NATIVE) {
                    return Err(ClassfileError::BadFormat(format!(
                        "method {mname} is declared native but carries code"
                    )));
                }
                let max_stack = r.u16()?;
                let max_locals = r.u16()?;
                let n = r.u32()? as usize;
                let mut insns = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    insns.push(read_insn(&mut r)?);
                }
                let handler_count = r.u16()?;
                let mut exception_table = Vec::with_capacity(handler_count as usize);
                for _ in 0..handler_count {
                    exception_table.push(ExceptionHandler {
                        start: r.u32()?,
                        end: r.u32()?,
                        handler: r.u32()?,
                        catch_class: r.opt_str()?,
                    });
                }
                MethodInfo::new(
                    mname,
                    &mdesc,
                    mflags,
                    Code {
                        max_stack,
                        max_locals,
                        insns,
                        exception_table,
                    },
                )?
            }
            other => {
                return Err(ClassfileError::BadFormat(format!(
                    "bad has-code tag {other}"
                )))
            }
        };
        class.add_method(method)?;
    }

    if r.pos != r.data.len() {
        return Err(ClassfileError::BadFormat(format!(
            "{} trailing bytes after class record",
            r.data.len() - r.pos
        )));
    }
    Ok(class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{single_method_class, ClassBuilder};
    use crate::insn::Cond;

    fn sample_class() -> ClassFile {
        let mut cb = ClassBuilder::new("pkg/Sample");
        cb.field("hits", "I", FieldFlags::STATIC).unwrap();
        cb.native_method("nat", "(I)I", MethodFlags::PUBLIC)
            .unwrap();
        let mut m = cb.method("loop", "(I)I", MethodFlags::STATIC);
        let top = m.new_label();
        let done = m.new_label();
        m.bind(top);
        m.iload(0).if_(Cond::Le, done);
        m.iload(0).invokestatic("pkg/Sample", "nat", "(I)I").pop();
        m.iinc(0, -1).goto(top);
        m.bind(done);
        m.iload(0).ireturn();
        m.finish().unwrap();
        cb.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_class() {
        let class = sample_class();
        let bytes = encode(&class);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(class, decoded);
    }

    #[test]
    fn round_trip_every_instruction() {
        // A method exercising every opcode keeps the codec honest.
        let class = single_method_class("t/All", "all", "(IF)V", |m| {
            let l = m.new_label();
            let l2 = m.new_label();
            let l3 = m.new_label();
            let start = m.new_label();
            let end = m.new_label();
            let handler = m.new_label();
            m.bind(start);
            m.nop();
            m.iconst(5).istore(2);
            m.fconst(1.5).fstore(3);
            m.aconst_null().astore(4);
            m.ldc_str("hello").astore(4);
            m.iload(2).iload(2).iadd().istore(2);
            m.iload(2).iload(2).isub().istore(2);
            m.bind(end);
            m.iload(2).pop();
            m.iload(2)
                .iload(2)
                .dup()
                .pop()
                .swap()
                .imul()
                .iload(2)
                .iand()
                .istore(2);
            m.iload(2)
                .iconst(1)
                .ior()
                .iconst(1)
                .ixor()
                .iconst(1)
                .ishl()
                .istore(2);
            m.iload(2).iconst(1).ishr().iconst(1).iushr().istore(2);
            m.iload(2)
                .iconst(2)
                .idiv()
                .iconst(2)
                .irem()
                .ineg()
                .istore(2);
            m.iinc(2, 7);
            m.fload(3)
                .fload(3)
                .fadd()
                .fload(3)
                .fsub()
                .fload(3)
                .fmul()
                .fstore(3);
            m.fload(3).fload(3).fdiv().fneg().fstore(3);
            m.iload(2).i2f().f2i().istore(2);
            m.fload(3).fload(3).fcmp().istore(2);
            m.iload(2).if_(Cond::Ne, l);
            m.bind(l);
            m.iload(2).iload(2).if_icmp(Cond::Lt, l2);
            m.bind(l2);
            m.aload(4).ifnull(l3);
            m.bind(l3);
            let l4 = m.new_label();
            m.aload(4).ifnonnull(l4);
            m.bind(l4);
            m.iconst(3).newarray(ArrayKind::Int).astore(5);
            m.aload(5).iconst(0).iconst(9).iastore();
            m.aload(5).iconst(0).iaload().pop();
            m.iconst(3).newarray(ArrayKind::Float).astore(6);
            m.aload(6).iconst(0).fconst(2.0).fastore();
            m.aload(6).iconst(0).faload().pop();
            m.iconst(3).newarray(ArrayKind::Ref).astore(7);
            m.aload(7).iconst(0).aconst_null().aastore();
            m.aload(7).iconst(0).aaload().pop();
            m.aload(7).arraylength().pop();
            m.new_obj("t/Obj").astore(4);
            m.aload(4).getfield("t/Obj", "f", "I").pop();
            m.aload(4).iconst(1).putfield("t/Obj", "f", "I");
            m.getstatic("t/Obj", "s", "F").pop();
            m.fconst(0.0).putstatic("t/Obj", "s", "F");
            m.invokestatic("t/Obj", "sm", "()V");
            m.aload(4).invokevirtual("t/Obj", "vm", "()V");
            let c0 = m.new_label();
            let def = m.new_label();
            m.iload(2).tableswitch(0, &[c0], def);
            m.bind(c0);
            m.ret_void();
            m.bind(def);
            m.ret_void();
            m.bind(handler);
            m.athrow();
            m.try_region(start, end, handler, Some("t/Err"));
        });
        let class = class.unwrap();
        let bytes = encode(&class);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(class, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        let class = sample_class();
        let mut bytes = encode(&class);
        bytes[0] ^= 0xFF;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let class = sample_class();
        let mut bytes = encode(&class);
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let class = sample_class();
        let bytes = encode(&class);
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let class = sample_class();
        let mut bytes = encode(&class);
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn decoded_class_revalidates() {
        let class = sample_class();
        let decoded = decode(&encode(&class)).unwrap();
        crate::validate::validate_class(&decoded).unwrap();
    }
}
