//! The per-class constant pool.
//!
//! Instructions never embed strings or symbolic references directly; they
//! carry a [`CpIndex`] into the class's pool, exactly as on the JVM. The
//! pool interns entries, so repeated references to the same method cost one
//! slot.

use std::collections::HashMap;
use std::fmt;

use crate::error::ClassfileError;

/// Index of an entry in a class's constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpIndex(pub u16);

impl fmt::Display for CpIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One constant-pool entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constant {
    /// A UTF-8 string used for names and descriptors (and `Ldc` string
    /// constants).
    Utf8(String),
    /// A symbolic reference to a class, by name entry.
    Class {
        /// Pool index of the class name (`Utf8`).
        name: CpIndex,
    },
    /// A symbolic reference to a method.
    MethodRef {
        /// Pool index of the owning class (`Class`).
        class: CpIndex,
        /// Pool index of the method name (`Utf8`).
        name: CpIndex,
        /// Pool index of the method descriptor (`Utf8`).
        descriptor: CpIndex,
    },
    /// A symbolic reference to a field.
    FieldRef {
        /// Pool index of the owning class (`Class`).
        class: CpIndex,
        /// Pool index of the field name (`Utf8`).
        name: CpIndex,
        /// Pool index of the field type descriptor (`Utf8`).
        descriptor: CpIndex,
    },
}

/// A resolved (string-level) method reference, as returned by
/// [`ConstantPool::method_ref`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// Internal name of the owning class, e.g. `spec/jvm98/Compress`.
    pub class: String,
    /// Method name.
    pub name: String,
    /// Method descriptor string, e.g. `(I)V`.
    pub descriptor: String,
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}{}", self.class, self.name, self.descriptor)
    }
}

/// A resolved (string-level) field reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// Internal name of the owning class.
    pub class: String,
    /// Field name.
    pub name: String,
    /// Field type descriptor string.
    pub descriptor: String,
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}:{}", self.class, self.name, self.descriptor)
    }
}

/// An interning constant pool.
///
/// ```
/// use jvmsim_classfile::constpool::ConstantPool;
///
/// # fn main() -> Result<(), jvmsim_classfile::ClassfileError> {
/// let mut pool = ConstantPool::new();
/// let m = pool.intern_method_ref("a/B", "run", "()V");
/// assert_eq!(pool.intern_method_ref("a/B", "run", "()V"), m); // interned
/// assert_eq!(pool.method_ref(m)?.to_string(), "a/B.run()V");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    entries: Vec<Constant>,
    intern: HashMap<Constant, CpIndex>,
}

impl PartialEq for ConstantPool {
    fn eq(&self, other: &Self) -> bool {
        // The intern map is a cache over `entries`; equality is by content.
        self.entries == other.entries
    }
}

impl Eq for ConstantPool {}

impl ConstantPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in index order.
    pub fn entries(&self) -> &[Constant] {
        &self.entries
    }

    /// Fetch the entry at `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadConstant`] if `idx` is out of range.
    pub fn get(&self, idx: CpIndex) -> Result<&Constant, ClassfileError> {
        self.entries
            .get(idx.0 as usize)
            .ok_or_else(|| ClassfileError::BadConstant(format!("{idx} out of range")))
    }

    fn push(&mut self, c: Constant) -> CpIndex {
        if let Some(&idx) = self.intern.get(&c) {
            return idx;
        }
        let idx = CpIndex(u16::try_from(self.entries.len()).expect("constant pool overflow"));
        self.entries.push(c.clone());
        self.intern.insert(c, idx);
        idx
    }

    /// Intern a UTF-8 entry.
    pub fn intern_utf8(&mut self, s: impl Into<String>) -> CpIndex {
        self.push(Constant::Utf8(s.into()))
    }

    /// Intern a class reference by internal name.
    pub fn intern_class(&mut self, name: impl Into<String>) -> CpIndex {
        let name = self.intern_utf8(name);
        self.push(Constant::Class { name })
    }

    /// Intern a method reference.
    pub fn intern_method_ref(
        &mut self,
        class: impl Into<String>,
        name: impl Into<String>,
        descriptor: impl Into<String>,
    ) -> CpIndex {
        let class = self.intern_class(class);
        let name = self.intern_utf8(name);
        let descriptor = self.intern_utf8(descriptor);
        self.push(Constant::MethodRef {
            class,
            name,
            descriptor,
        })
    }

    /// Intern a field reference.
    pub fn intern_field_ref(
        &mut self,
        class: impl Into<String>,
        name: impl Into<String>,
        descriptor: impl Into<String>,
    ) -> CpIndex {
        let class = self.intern_class(class);
        let name = self.intern_utf8(name);
        let descriptor = self.intern_utf8(descriptor);
        self.push(Constant::FieldRef {
            class,
            name,
            descriptor,
        })
    }

    /// Read a UTF-8 entry.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadConstant`] if `idx` is out of range or
    /// does not refer to a `Utf8` entry.
    pub fn utf8(&self, idx: CpIndex) -> Result<&str, ClassfileError> {
        match self.get(idx)? {
            Constant::Utf8(s) => Ok(s),
            other => Err(ClassfileError::BadConstant(format!(
                "{idx} is {other:?}, expected Utf8"
            ))),
        }
    }

    /// Resolve a `Class` entry to its name.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadConstant`] on a non-`Class` entry.
    pub fn class_name(&self, idx: CpIndex) -> Result<&str, ClassfileError> {
        match self.get(idx)? {
            Constant::Class { name } => self.utf8(*name),
            other => Err(ClassfileError::BadConstant(format!(
                "{idx} is {other:?}, expected Class"
            ))),
        }
    }

    /// Resolve a `MethodRef` entry to strings.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadConstant`] on a non-`MethodRef` entry.
    pub fn method_ref(&self, idx: CpIndex) -> Result<MethodRef, ClassfileError> {
        match self.get(idx)? {
            Constant::MethodRef {
                class,
                name,
                descriptor,
            } => Ok(MethodRef {
                class: self.class_name(*class)?.to_owned(),
                name: self.utf8(*name)?.to_owned(),
                descriptor: self.utf8(*descriptor)?.to_owned(),
            }),
            other => Err(ClassfileError::BadConstant(format!(
                "{idx} is {other:?}, expected MethodRef"
            ))),
        }
    }

    /// Resolve a `FieldRef` entry to strings.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadConstant`] on a non-`FieldRef` entry.
    pub fn field_ref(&self, idx: CpIndex) -> Result<FieldRef, ClassfileError> {
        match self.get(idx)? {
            Constant::FieldRef {
                class,
                name,
                descriptor,
            } => Ok(FieldRef {
                class: self.class_name(*class)?.to_owned(),
                name: self.utf8(*name)?.to_owned(),
                descriptor: self.utf8(*descriptor)?.to_owned(),
            }),
            other => Err(ClassfileError::BadConstant(format!(
                "{idx} is {other:?}, expected FieldRef"
            ))),
        }
    }

    /// Append a raw entry without interning (used by the binary decoder,
    /// which must preserve indices exactly).
    pub(crate) fn push_raw(&mut self, c: Constant) -> CpIndex {
        let idx = CpIndex(u16::try_from(self.entries.len()).expect("constant pool overflow"));
        self.entries.push(c.clone());
        // Keep the intern cache coherent so later interning on a decoded
        // pool reuses existing entries (first occurrence wins).
        self.intern.entry(c).or_insert(idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut p = ConstantPool::new();
        let a = p.intern_utf8("hello");
        let b = p.intern_utf8("hello");
        let c = p.intern_utf8("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn method_ref_round_trip() {
        let mut p = ConstantPool::new();
        let m = p.intern_method_ref("x/Y", "frob", "(IF)I");
        let r = p.method_ref(m).unwrap();
        assert_eq!(r.class, "x/Y");
        assert_eq!(r.name, "frob");
        assert_eq!(r.descriptor, "(IF)I");
        assert_eq!(r.to_string(), "x/Y.frob(IF)I");
    }

    #[test]
    fn field_ref_round_trip() {
        let mut p = ConstantPool::new();
        let fr = p.intern_field_ref("x/Y", "count", "I");
        let r = p.field_ref(fr).unwrap();
        assert_eq!(r.to_string(), "x/Y.count:I");
    }

    #[test]
    fn shared_substructure_is_interned() {
        let mut p = ConstantPool::new();
        let m1 = p.intern_method_ref("x/Y", "a", "()V");
        let m2 = p.intern_method_ref("x/Y", "b", "()V");
        assert_ne!(m1, m2);
        // x/Y Utf8 + Class + "a" + "b" + "()V" + 2 method refs = 7 entries.
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut p = ConstantPool::new();
        let u = p.intern_utf8("zzz");
        assert!(p.method_ref(u).is_err());
        assert!(p.class_name(u).is_err());
        let c = p.intern_class("a/B");
        assert!(p.utf8(c).is_err());
        assert!(p.field_ref(c).is_err());
    }

    #[test]
    fn out_of_range_is_an_error() {
        let p = ConstantPool::new();
        assert!(p.get(CpIndex(0)).is_err());
        assert!(p.utf8(CpIndex(3)).is_err());
    }

    #[test]
    fn class_name_resolution() {
        let mut p = ConstantPool::new();
        let c = p.intern_class("java/lang/Object");
        assert_eq!(p.class_name(c).unwrap(), "java/lang/Object");
    }
}
