//! # jvmsim-classfile — bytecode ISA and class model
//!
//! The class-file substrate of the jvmsim simulated JVM: value
//! [types][ty] and descriptors, an interning [constant pool][constpool],
//! a JVM-flavoured [instruction set][insn], [class/method/field
//! structures][class], a fluent [assembler][builder], a textual
//! [assembly language][jasm], a dataflow [validator][validate], a binary
//! [codec], and a [disassembler][dis].
//!
//! Everything downstream builds on this crate: the VM interprets
//! [`ClassFile`]s, the instrumentation library transforms their serialized
//! form, and the workloads assemble them.
//!
//! ```
//! use jvmsim_classfile::builder::ClassBuilder;
//! use jvmsim_classfile::flags::MethodFlags;
//! use jvmsim_classfile::codec;
//!
//! # fn main() -> Result<(), jvmsim_classfile::ClassfileError> {
//! let mut cb = ClassBuilder::new("demo/Main");
//! let mut m = cb.method("main", "()I", MethodFlags::STATIC);
//! m.iconst(40).iconst(2).iadd().ireturn();
//! m.finish()?;
//! let class = cb.finish()?;
//!
//! // Classes round-trip through the binary format the instrumentation
//! // pipeline operates on.
//! let bytes = codec::encode(&class);
//! assert_eq!(codec::decode(&bytes)?, class);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod class;
pub mod codec;
pub mod constpool;
pub mod dis;
mod error;
pub mod flags;
pub mod insn;
pub mod jasm;
pub mod ty;
pub mod validate;

pub use class::{ClassFile, Code, ExceptionHandler, FieldInfo, MethodInfo, CLINIT, OBJECT_CLASS};
pub use constpool::{ConstantPool, CpIndex, FieldRef, MethodRef};
pub use error::ClassfileError;
pub use flags::{ClassFlags, FieldFlags, MethodFlags};
pub use insn::{ArrayKind, Cond, Insn, InsnIndex};
pub use ty::{MethodDescriptor, ReturnType, Type};
