//! Value types and method descriptors.
//!
//! The simulated JVM is a stack machine over three value kinds — 64-bit
//! integers, 64-bit floats and object references — plus `void` for return
//! types. Method descriptors use a compact JVM-flavoured grammar:
//!
//! * `I` — integer, `F` — float, `V` — void (return position only)
//! * `Lpkg/Class;` — reference to an instance of a class
//! * `[I`, `[F`, `[Lpkg/Class;` — arrays (arrays of arrays are written `[[I`)
//! * a descriptor is `(` *param types* `)` *return type*, e.g. `(I[I)Lq/R;`

use std::fmt;
use std::str::FromStr;

use crate::error::ClassfileError;

/// A value type as it appears in descriptors and field declarations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (`I`).
    Int,
    /// 64-bit IEEE-754 float (`F`).
    Float,
    /// Reference to an instance of the named class (`Lname;`).
    Object(String),
    /// Array with the given element type (`[elem`).
    Array(Box<Type>),
}

impl Type {
    /// Object type for a class name.
    pub fn object(name: impl Into<String>) -> Self {
        Type::Object(name.into())
    }

    /// Array of this type.
    pub fn array_of(self) -> Self {
        Type::Array(Box::new(self))
    }

    /// Is this type stored as a reference at runtime?
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Object(_) | Type::Array(_))
    }

    fn write(&self, out: &mut String) {
        match self {
            Type::Int => out.push('I'),
            Type::Float => out.push('F'),
            Type::Object(name) => {
                out.push('L');
                out.push_str(name);
                out.push(';');
            }
            Type::Array(elem) => {
                out.push('[');
                elem.write(out);
            }
        }
    }

    fn parse(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Type, ClassfileError> {
        match chars.next() {
            Some('I') => Ok(Type::Int),
            Some('F') => Ok(Type::Float),
            Some('L') => {
                let mut name = String::new();
                for c in chars.by_ref() {
                    if c == ';' {
                        if name.is_empty() {
                            return Err(ClassfileError::BadDescriptor(
                                "empty class name in descriptor".into(),
                            ));
                        }
                        return Ok(Type::Object(name));
                    }
                    name.push(c);
                }
                Err(ClassfileError::BadDescriptor(
                    "unterminated class name in descriptor".into(),
                ))
            }
            Some('[') => Ok(Type::Array(Box::new(Type::parse(chars)?))),
            other => Err(ClassfileError::BadDescriptor(format!(
                "unexpected character {other:?} in descriptor"
            ))),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl FromStr for Type {
    type Err = ClassfileError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars().peekable();
        let ty = Type::parse(&mut chars)?;
        if chars.next().is_some() {
            return Err(ClassfileError::BadDescriptor(format!(
                "trailing characters in type descriptor {s:?}"
            )));
        }
        Ok(ty)
    }
}

/// Return type of a method: a [`Type`] or void.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ReturnType {
    /// The method returns no value (`V`).
    #[default]
    Void,
    /// The method returns a value of this type.
    Value(Type),
}

impl ReturnType {
    /// Does the method push a value when it returns?
    pub fn is_value(&self) -> bool {
        matches!(self, ReturnType::Value(_))
    }
}

impl fmt::Display for ReturnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnType::Void => f.write_str("V"),
            ReturnType::Value(t) => t.fmt(f),
        }
    }
}

/// A parsed method descriptor: parameter types and return type.
///
/// ```
/// use jvmsim_classfile::ty::{MethodDescriptor, Type, ReturnType};
///
/// # fn main() -> Result<(), jvmsim_classfile::ClassfileError> {
/// let d: MethodDescriptor = "(I[F)Ljava/lang/String;".parse()?;
/// assert_eq!(d.params().len(), 2);
/// assert_eq!(d.params()[1], Type::Float.array_of());
/// assert!(d.return_type().is_value());
/// assert_eq!(d.to_string(), "(I[F)Ljava/lang/String;");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodDescriptor {
    params: Vec<Type>,
    ret: ReturnType,
}

impl MethodDescriptor {
    /// Construct from parts.
    pub fn new(params: Vec<Type>, ret: ReturnType) -> Self {
        MethodDescriptor { params, ret }
    }

    /// Descriptor `()V`.
    pub fn void() -> Self {
        MethodDescriptor {
            params: Vec::new(),
            ret: ReturnType::Void,
        }
    }

    /// Parameter types, in declaration order.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Return type.
    pub fn return_type(&self) -> &ReturnType {
        &self.ret
    }

    /// Number of local-variable slots the parameters occupy (all value kinds
    /// take one slot in this VM), not counting a `this` receiver.
    pub fn param_slots(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for MethodDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::from("(");
        for p in &self.params {
            p.write(&mut s);
        }
        s.push(')');
        f.write_str(&s)?;
        self.ret.fmt(f)
    }
}

impl FromStr for MethodDescriptor {
    type Err = ClassfileError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars().peekable();
        if chars.next() != Some('(') {
            return Err(ClassfileError::BadDescriptor(format!(
                "method descriptor {s:?} must start with '('"
            )));
        }
        let mut params = Vec::new();
        loop {
            match chars.peek() {
                Some(')') => {
                    chars.next();
                    break;
                }
                Some(_) => params.push(Type::parse(&mut chars)?),
                None => {
                    return Err(ClassfileError::BadDescriptor(format!(
                        "method descriptor {s:?} missing ')'"
                    )))
                }
            }
        }
        let ret = match chars.peek() {
            Some('V') => {
                chars.next();
                ReturnType::Void
            }
            Some(_) => ReturnType::Value(Type::parse(&mut chars)?),
            None => {
                return Err(ClassfileError::BadDescriptor(format!(
                    "method descriptor {s:?} missing return type"
                )))
            }
        };
        if chars.next().is_some() {
            return Err(ClassfileError::BadDescriptor(format!(
                "trailing characters in method descriptor {s:?}"
            )));
        }
        Ok(MethodDescriptor { params, ret })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        for s in ["I", "F", "Lfoo/Bar;", "[I", "[[F", "[Lx/Y;"] {
            let t: Type = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn reference_kinds() {
        assert!(!Type::Int.is_reference());
        assert!(!Type::Float.is_reference());
        assert!(Type::object("a/B").is_reference());
        assert!(Type::Int.array_of().is_reference());
    }

    #[test]
    fn descriptor_round_trip() {
        for s in [
            "()V",
            "(I)I",
            "(IF)F",
            "(Lfoo/Bar;[I)Lbaz/Qux;",
            "([[F)V",
            "(IIIIIIII)I",
        ] {
            let d: MethodDescriptor = s.parse().unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn descriptor_parts() {
        let d: MethodDescriptor = "(I[F)Lq/R;".parse().unwrap();
        assert_eq!(d.params().len(), 2);
        assert_eq!(d.params()[0], Type::Int);
        assert_eq!(d.params()[1], Type::Float.array_of());
        assert_eq!(*d.return_type(), ReturnType::Value(Type::object("q/R")),);
        assert_eq!(d.param_slots(), 2);
    }

    #[test]
    fn void_descriptor_constructor() {
        assert_eq!(MethodDescriptor::void().to_string(), "()V");
    }

    #[test]
    fn rejects_malformed() {
        assert!("".parse::<MethodDescriptor>().is_err());
        assert!("I".parse::<MethodDescriptor>().is_err());
        assert!("()".parse::<MethodDescriptor>().is_err());
        assert!("(I".parse::<MethodDescriptor>().is_err());
        assert!("(L;)V".parse::<MethodDescriptor>().is_err());
        assert!("(Lfoo)V".parse::<MethodDescriptor>().is_err());
        assert!("()Vx".parse::<MethodDescriptor>().is_err());
        assert!("(X)V".parse::<MethodDescriptor>().is_err());
        assert!("II".parse::<Type>().is_err());
    }
}
