//! Fluent assembler for classes and method bodies.
//!
//! [`ClassBuilder`] collects fields and methods; [`MethodBuilder`] assembles
//! a body instruction by instruction with forward-referencing [`Label`]s,
//! then validates it and computes `max_stack`/`max_locals` automatically.
//!
//! ```
//! use jvmsim_classfile::builder::ClassBuilder;
//! use jvmsim_classfile::flags::MethodFlags;
//!
//! # fn main() -> Result<(), jvmsim_classfile::ClassfileError> {
//! let mut cb = ClassBuilder::new("demo/Abs");
//! let mut m = cb.method("abs", "(I)I", MethodFlags::STATIC);
//! let nonneg = m.new_label();
//! m.iload(0)
//!     .iconst(0)
//!     .if_icmp(jvmsim_classfile::insn::Cond::Ge, nonneg)
//!     .iload(0)
//!     .ineg()
//!     .ireturn();
//! m.bind(nonneg);
//! m.iload(0).ireturn();
//! m.finish()?;
//! let class = cb.finish()?;
//! assert_eq!(class.find_method("abs", "(I)I").unwrap().code.as_ref().unwrap().max_stack, 2);
//! # Ok(())
//! # }
//! ```

use crate::class::{ClassFile, Code, ExceptionHandler, FieldInfo, MethodInfo};
use crate::error::ClassfileError;
use crate::flags::{FieldFlags, MethodFlags};
use crate::insn::{ArrayKind, Cond, Insn, InsnIndex};
use crate::ty::MethodDescriptor;
use crate::validate::{validate_code, CodeFacts};

/// A forward-referencing jump target inside one method body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds one [`ClassFile`].
#[derive(Debug)]
pub struct ClassBuilder {
    class: ClassFile,
}

impl ClassBuilder {
    /// Start a class with the given internal name.
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            class: ClassFile::new(name),
        }
    }

    /// Internal name of the class under construction.
    pub fn name(&self) -> &str {
        self.class.name()
    }

    /// Set the superclass.
    pub fn extends(&mut self, super_name: impl Into<String>) -> &mut Self {
        self.class.set_super_name(super_name);
        self
    }

    /// Declare a field.
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor or duplicate name.
    pub fn field(
        &mut self,
        name: &str,
        descriptor: &str,
        flags: FieldFlags,
    ) -> Result<&mut Self, ClassfileError> {
        self.class
            .add_field(FieldInfo::new(name, descriptor, flags)?)?;
        Ok(self)
    }

    /// Declare a `native` method (no body).
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor or duplicate signature.
    pub fn native_method(
        &mut self,
        name: &str,
        descriptor: &str,
        flags: MethodFlags,
    ) -> Result<&mut Self, ClassfileError> {
        self.class
            .add_method(MethodInfo::new_native(name, descriptor, flags)?)?;
        Ok(self)
    }

    /// Start assembling a bytecode method. Call [`MethodBuilder::finish`] to
    /// attach it to the class.
    ///
    /// # Panics
    ///
    /// Panics if `descriptor` is not a valid method descriptor — builder
    /// call sites pass literals, so this is a programming error, not input.
    pub fn method<'a>(
        &'a mut self,
        name: &str,
        descriptor: &str,
        flags: MethodFlags,
    ) -> MethodBuilder<'a> {
        let desc: MethodDescriptor = descriptor
            .parse()
            .unwrap_or_else(|e| panic!("bad method descriptor {descriptor:?}: {e}"));
        let arg_slots = desc.param_slots() + usize::from(!flags.contains(MethodFlags::STATIC));
        MethodBuilder {
            cb: self,
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            flags,
            insns: Vec::new(),
            labels: Vec::new(),
            fixup_pcs: Vec::new(),
            handlers: Vec::new(),
            max_local: arg_slots as u16,
        }
    }

    /// Finish, validate and return the class.
    ///
    /// # Errors
    ///
    /// Returns any [`ClassfileError`] from [`crate::validate::validate_class`].
    pub fn finish(self) -> Result<ClassFile, ClassfileError> {
        crate::validate::validate_class(&self.class)?;
        Ok(self.class)
    }
}

/// Assembles one method body. Produced by [`ClassBuilder::method`].
#[derive(Debug)]
pub struct MethodBuilder<'a> {
    cb: &'a mut ClassBuilder,
    name: String,
    descriptor: String,
    flags: MethodFlags,
    insns: Vec<Insn>,
    /// `labels[i]` = pc bound for label i.
    labels: Vec<Option<InsnIndex>>,
    /// Instructions whose branch targets are label ids awaiting resolution.
    fixup_pcs: Vec<InsnIndex>,
    /// Exception regions with label endpoints.
    handlers: Vec<(Label, Label, Label, Option<String>)>,
    max_local: u16,
}

macro_rules! simple_emitters {
    ($($(#[$doc:meta])* $fn_name:ident => $insn:expr;)+) => {
        $(
            $(#[$doc])*
            pub fn $fn_name(&mut self) -> &mut Self {
                self.emit($insn)
            }
        )+
    };
}

impl<'a> MethodBuilder<'a> {
    /// Append a raw instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Current instruction count (the pc the next emitted instruction gets).
    pub fn pc(&self) -> InsnIndex {
        self.insns.len() as InsnIndex
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Bind `label` to the next instruction's pc.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder-usage bug).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let pc = self.pc();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(pc);
        self
    }

    fn emit_branch(&mut self, insn: Insn) -> &mut Self {
        self.fixup_pcs.push(self.pc());
        self.emit(insn)
    }

    fn touch(&mut self, slot: u16) {
        // Saturate: slot u16::MAX then fails validation ("local slot out of
        // range") instead of overflowing.
        self.max_local = self.max_local.max(slot.saturating_add(1));
    }

    // --- constants ---

    /// Push an int constant.
    pub fn iconst(&mut self, v: i64) -> &mut Self {
        self.emit(Insn::IConst(v))
    }

    /// Push a float constant.
    pub fn fconst(&mut self, v: f64) -> &mut Self {
        self.emit(Insn::FConst(v))
    }

    /// Push a string constant (interned in the pool).
    pub fn ldc_str(&mut self, s: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_utf8(s);
        self.emit(Insn::Ldc(idx))
    }

    // --- locals ---

    /// Push int from a local slot.
    pub fn iload(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::ILoad(slot))
    }

    /// Push float from a local slot.
    pub fn fload(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::FLoad(slot))
    }

    /// Push reference from a local slot.
    pub fn aload(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::ALoad(slot))
    }

    /// Pop int into a local slot.
    pub fn istore(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::IStore(slot))
    }

    /// Pop float into a local slot.
    pub fn fstore(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::FStore(slot))
    }

    /// Pop reference into a local slot.
    pub fn astore(&mut self, slot: u16) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::AStore(slot))
    }

    /// Add `delta` to the int in a local slot.
    pub fn iinc(&mut self, slot: u16, delta: i32) -> &mut Self {
        self.touch(slot);
        self.emit(Insn::IInc { local: slot, delta })
    }

    simple_emitters! {
        /// Push `null`.
        aconst_null => Insn::AConstNull;
        /// Discard top of stack.
        pop => Insn::Pop;
        /// Duplicate top of stack.
        dup => Insn::Dup;
        /// Swap the top two values.
        swap => Insn::Swap;
        /// Int add.
        iadd => Insn::IAdd;
        /// Int subtract.
        isub => Insn::ISub;
        /// Int multiply.
        imul => Insn::IMul;
        /// Int divide.
        idiv => Insn::IDiv;
        /// Int remainder.
        irem => Insn::IRem;
        /// Int negate.
        ineg => Insn::INeg;
        /// Shift left.
        ishl => Insn::IShl;
        /// Arithmetic shift right.
        ishr => Insn::IShr;
        /// Logical shift right.
        iushr => Insn::IUShr;
        /// Bitwise and.
        iand => Insn::IAnd;
        /// Bitwise or.
        ior => Insn::IOr;
        /// Bitwise xor.
        ixor => Insn::IXor;
        /// Float add.
        fadd => Insn::FAdd;
        /// Float subtract.
        fsub => Insn::FSub;
        /// Float multiply.
        fmul => Insn::FMul;
        /// Float divide.
        fdiv => Insn::FDiv;
        /// Float negate.
        fneg => Insn::FNeg;
        /// Int → float.
        i2f => Insn::I2F;
        /// Float → int.
        f2i => Insn::F2I;
        /// Float compare (-1/0/1).
        fcmp => Insn::FCmp;
        /// Return void.
        ret_void => Insn::Return;
        /// Return int.
        ireturn => Insn::IReturn;
        /// Return float.
        freturn => Insn::FReturn;
        /// Return reference.
        areturn => Insn::AReturn;
        /// Pop index+arrayref, push int element.
        iaload => Insn::IALoad;
        /// Pop value+index+arrayref, store int element.
        iastore => Insn::IAStore;
        /// Pop index+arrayref, push float element.
        faload => Insn::FALoad;
        /// Pop value+index+arrayref, store float element.
        fastore => Insn::FAStore;
        /// Pop index+arrayref, push reference element.
        aaload => Insn::AALoad;
        /// Pop value+index+arrayref, store reference element.
        aastore => Insn::AAStore;
        /// Pop arrayref, push length.
        arraylength => Insn::ArrayLength;
        /// Throw the reference on top of stack.
        athrow => Insn::AThrow;
        /// No operation.
        nop => Insn::Nop;
    }

    // --- control flow ---

    /// Unconditional jump.
    pub fn goto(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Insn::Goto(l.0))
    }

    /// Jump if the popped int satisfies `cond` versus zero.
    pub fn if_(&mut self, cond: Cond, l: Label) -> &mut Self {
        self.emit_branch(Insn::If(cond, l.0))
    }

    /// Jump if `lhs cond rhs` over the two popped ints.
    pub fn if_icmp(&mut self, cond: Cond, l: Label) -> &mut Self {
        self.emit_branch(Insn::IfICmp(cond, l.0))
    }

    /// Jump if the popped reference is null.
    pub fn ifnull(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Insn::IfNull(l.0))
    }

    /// Jump if the popped reference is non-null.
    pub fn ifnonnull(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Insn::IfNonNull(l.0))
    }

    /// Table switch over the popped int.
    pub fn tableswitch(&mut self, low: i64, targets: &[Label], default: Label) -> &mut Self {
        self.emit_branch(Insn::TableSwitch {
            low,
            targets: targets.iter().map(|l| l.0).collect(),
            default: default.0,
        })
    }

    // --- calls, fields, objects ---

    /// Call a static method.
    pub fn invokestatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .class
            .pool
            .intern_method_ref(class, name, descriptor);
        self.emit(Insn::InvokeStatic(idx))
    }

    /// Call an instance method.
    pub fn invokevirtual(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .class
            .pool
            .intern_method_ref(class, name, descriptor);
        self.emit(Insn::InvokeVirtual(idx))
    }

    /// Allocate an instance of `class`.
    pub fn new_obj(&mut self, class: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_class(class);
        self.emit(Insn::New(idx))
    }

    /// Push an instance field.
    pub fn getfield(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_field_ref(class, name, descriptor);
        self.emit(Insn::GetField(idx))
    }

    /// Store into an instance field.
    pub fn putfield(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_field_ref(class, name, descriptor);
        self.emit(Insn::PutField(idx))
    }

    /// Push a static field.
    pub fn getstatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_field_ref(class, name, descriptor);
        self.emit(Insn::GetStatic(idx))
    }

    /// Store into a static field.
    pub fn putstatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self.cb.class.pool.intern_field_ref(class, name, descriptor);
        self.emit(Insn::PutStatic(idx))
    }

    /// Allocate an array of `kind` with the popped length.
    pub fn newarray(&mut self, kind: ArrayKind) -> &mut Self {
        self.emit(Insn::NewArray(kind))
    }

    /// Declare an exception-table region: exceptions raised in
    /// `start..end` matching `catch_class` (`None` = catch-all / `finally`)
    /// transfer to `handler`.
    pub fn try_region(
        &mut self,
        start: Label,
        end: Label,
        handler: Label,
        catch_class: Option<&str>,
    ) -> &mut Self {
        self.handlers
            .push((start, end, handler, catch_class.map(str::to_owned)));
        self
    }

    /// Resolve labels, validate, compute `max_stack`, and attach the method
    /// to the class.
    ///
    /// # Errors
    ///
    /// Fails on unbound labels, duplicate signatures, or any structural
    /// problem found by the validator.
    pub fn finish(self) -> Result<CodeFacts, ClassfileError> {
        let MethodBuilder {
            cb,
            name,
            descriptor,
            flags,
            mut insns,
            labels,
            fixup_pcs,
            handlers,
            max_local,
        } = self;
        // Resolve label ids in branch instructions to bound pcs.
        let resolved: Vec<Option<InsnIndex>> = labels;
        let mut unbound: Option<u32> = None;
        for pc in fixup_pcs {
            insns[pc as usize].map_targets(|label_id| {
                match resolved.get(label_id as usize).copied().flatten() {
                    Some(target) => target,
                    None => {
                        unbound = Some(label_id);
                        0
                    }
                }
            });
        }
        if let Some(id) = unbound {
            return Err(ClassfileError::Invalid(format!(
                "{name}.{descriptor}: label Label({id}) used but never bound"
            )));
        }
        let mut exception_table = Vec::with_capacity(handlers.len());
        for (s, e, h, catch) in handlers {
            let lookup = |l: Label| -> Result<InsnIndex, ClassfileError> {
                resolved[l.0 as usize].ok_or_else(|| {
                    ClassfileError::Invalid(format!(
                        "{name}.{descriptor}: exception-region label {l:?} never bound"
                    ))
                })
            };
            exception_table.push(ExceptionHandler {
                start: lookup(s)?,
                end: lookup(e)?,
                handler: lookup(h)?,
                catch_class: catch,
            });
        }
        let mut code = Code {
            max_stack: 0,
            max_locals: max_local,
            insns,
            exception_table,
        };
        let probe = MethodInfo::new(name.clone(), &descriptor, flags, code.clone())?;
        let facts = validate_code(&cb.class.pool, &probe, &code)?;
        code.max_stack = facts.max_stack;
        cb.class
            .add_method(MethodInfo::new(name, &descriptor, flags, code)?)?;
        Ok(facts)
    }
}

/// Convenience: build a class whose single static method `name()` has the
/// given body — used pervasively in tests.
///
/// # Errors
///
/// Propagates builder errors.
pub fn single_method_class(
    class_name: &str,
    method_name: &str,
    descriptor: &str,
    build: impl FnOnce(&mut MethodBuilder<'_>),
) -> Result<ClassFile, ClassfileError> {
    let mut cb = ClassBuilder::new(class_name);
    let mut mb = cb.method(
        method_name,
        descriptor,
        MethodFlags::STATIC | MethodFlags::PUBLIC,
    );
    build(&mut mb);
    mb.finish()?;
    cb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_method() {
        let class = single_method_class("t/A", "two", "()I", |m| {
            m.iconst(1).iconst(1).iadd().ireturn();
        })
        .unwrap();
        let m = class.find_method("two", "()I").unwrap();
        let code = m.code.as_ref().unwrap();
        assert_eq!(code.max_stack, 2);
        assert_eq!(code.max_locals, 0);
        assert_eq!(code.insns.len(), 4);
    }

    #[test]
    fn forward_and_backward_labels() {
        let class = single_method_class("t/A", "countdown", "(I)I", |m| {
            let top = m.new_label();
            let done = m.new_label();
            m.bind(top);
            m.iload(0).if_(Cond::Le, done);
            m.iinc(0, -1).goto(top);
            m.bind(done);
            m.iload(0).ireturn();
        })
        .unwrap();
        let code = class
            .find_method("countdown", "(I)I")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        // goto must point back at pc 0, the If forward at the bound pc.
        assert_eq!(code.insns[3], Insn::Goto(0));
        assert!(matches!(code.insns[1], Insn::If(Cond::Le, t) if t == 4));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut cb = ClassBuilder::new("t/A");
        let mut m = cb.method("bad", "()V", MethodFlags::STATIC);
        let l = m.new_label();
        m.goto(l);
        let err = m.finish().unwrap_err();
        assert!(err.to_string().contains("never bound"), "{err}");
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut cb = ClassBuilder::new("t/A");
        let mut m = cb.method("bad", "()V", MethodFlags::STATIC);
        let l = m.new_label();
        m.bind(l);
        m.bind(l);
    }

    #[test]
    fn max_locals_covers_args_and_temps() {
        let class = single_method_class("t/A", "f", "(II)I", |m| {
            m.iload(0).iload(1).iadd().istore(5).iload(5).ireturn();
        })
        .unwrap();
        let code = class
            .find_method("f", "(II)I")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        assert_eq!(code.max_locals, 6);
    }

    #[test]
    fn instance_method_gets_this_slot() {
        let mut cb = ClassBuilder::new("t/A");
        let mut m = cb.method("g", "()V", MethodFlags::PUBLIC);
        m.ret_void();
        m.finish().unwrap();
        let class = cb.finish().unwrap();
        let code = class
            .find_method("g", "()V")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        assert_eq!(code.max_locals, 1);
    }

    #[test]
    fn try_region_resolves() {
        let class = single_method_class("t/A", "f", "()V", |m| {
            let start = m.new_label();
            let end = m.new_label();
            let handler = m.new_label();
            m.bind(start);
            m.invokestatic("t/B", "risky", "()V");
            m.bind(end);
            m.ret_void();
            m.bind(handler);
            m.athrow();
            m.try_region(start, end, handler, None);
        })
        .unwrap();
        let code = class
            .find_method("f", "()V")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        assert_eq!(code.exception_table.len(), 1);
        let h = &code.exception_table[0];
        assert_eq!((h.start, h.end, h.handler), (0, 1, 2));
        assert_eq!(h.catch_class, None);
    }

    #[test]
    fn invalid_body_rejected_at_finish() {
        let mut cb = ClassBuilder::new("t/A");
        let mut m = cb.method("bad", "()I", MethodFlags::STATIC);
        m.ret_void(); // wrong return kind
        assert!(m.finish().is_err());
    }

    #[test]
    fn pool_interning_through_builder() {
        let class = single_method_class("t/A", "f", "()V", |m| {
            m.invokestatic("x/Y", "g", "()V");
            m.invokestatic("x/Y", "g", "()V");
            m.ret_void();
        })
        .unwrap();
        let code = class
            .find_method("f", "()V")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        assert_eq!(code.insns[0], code.insns[1]);
    }

    #[test]
    fn native_and_field_declarations() {
        let mut cb = ClassBuilder::new("t/A");
        cb.field("hits", "I", FieldFlags::STATIC)
            .unwrap()
            .native_method("read", "()I", MethodFlags::PUBLIC)
            .unwrap();
        let class = cb.finish().unwrap();
        assert!(class.has_native_methods());
        assert!(class.find_field("hits").is_some());
    }

    #[test]
    fn tableswitch_labels_resolve() {
        let class = single_method_class("t/A", "pick", "(I)I", |m| {
            let c0 = m.new_label();
            let c1 = m.new_label();
            let def = m.new_label();
            m.iload(0).tableswitch(0, &[c0, c1], def);
            m.bind(c0);
            m.iconst(100).ireturn();
            m.bind(c1);
            m.iconst(200).ireturn();
            m.bind(def);
            m.iconst(-1).ireturn();
        })
        .unwrap();
        let code = class
            .find_method("pick", "(I)I")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        match &code.insns[1] {
            Insn::TableSwitch {
                targets, default, ..
            } => {
                assert_eq!(targets, &vec![2, 4]);
                assert_eq!(*default, 6);
            }
            other => panic!("expected tableswitch, got {other}"),
        }
    }
}
