//! Error type for classfile construction, encoding and validation.

use std::fmt;

/// Errors produced while building, parsing, encoding or validating class
/// files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassfileError {
    /// A type or method descriptor string was malformed.
    BadDescriptor(String),
    /// A constant-pool index was out of range or referred to the wrong kind
    /// of entry.
    BadConstant(String),
    /// Binary classfile data could not be decoded.
    BadFormat(String),
    /// Structural validation failed (bad branch target, stack underflow,
    /// inconsistent merge, missing code, ...).
    Invalid(String),
    /// A duplicate member (method or field with the same name + descriptor)
    /// was declared.
    Duplicate(String),
}

impl fmt::Display for ClassfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassfileError::BadDescriptor(m) => write!(f, "bad descriptor: {m}"),
            ClassfileError::BadConstant(m) => write!(f, "bad constant reference: {m}"),
            ClassfileError::BadFormat(m) => write!(f, "malformed classfile data: {m}"),
            ClassfileError::Invalid(m) => write!(f, "invalid class: {m}"),
            ClassfileError::Duplicate(m) => write!(f, "duplicate member: {m}"),
        }
    }
}

impl std::error::Error for ClassfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ClassfileError::BadDescriptor("x".into());
        assert_eq!(e.to_string(), "bad descriptor: x");
        let e = ClassfileError::Invalid("stack underflow at pc 3".into());
        assert!(e.to_string().contains("stack underflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ClassfileError>();
    }
}
