//! `jasm` — a textual assembly language for jvmsim classes.
//!
//! The inverse of the [disassembler][crate::dis]: a line-oriented assembly
//! syntax that parses into validated [`ClassFile`]s. Used for prototyping
//! workloads, writing regression tests as readable fixtures, and the
//! `jasm` command-line assembler in `jvmsim-instr`.
//!
//! # Syntax
//!
//! ```text
//! class demo/Counter extends java/lang/Object {
//!     field static hits I
//!     native method static poke (I)I
//!
//!     method static bump (I)I {
//!         getstatic demo/Counter.hits:I
//!         iload 0
//!         iadd
//!         dup
//!         putstatic demo/Counter.hits:I
//!         ireturn
//!     }
//!
//!     method static spin (I)V {
//!       top:
//!         iload 0
//!         ifle done
//!         iinc 0 -1
//!         goto top
//!       done:
//!         return
//!     }
//! }
//! ```
//!
//! * one instruction per line; labels end with `:`; comments start with
//!   `//`
//! * member references are written `pkg/Cls.name(desc)` for methods and
//!   `pkg/Cls.name:desc` for fields
//! * `try <start> <end> <handler> <class|*>` lines (anywhere in a body)
//!   declare exception regions; `*` is a catch-all
//! * flags (`public static final synchronized synthetic`) precede the
//!   member name; classes are `public` by default

use std::collections::HashMap;

use crate::builder::{ClassBuilder, Label, MethodBuilder};
use crate::error::ClassfileError;
use crate::flags::{FieldFlags, MethodFlags};
use crate::insn::{ArrayKind, Cond};
use crate::ClassFile;

fn err(line_no: usize, msg: impl std::fmt::Display) -> ClassfileError {
    ClassfileError::Invalid(format!("jasm line {line_no}: {msg}"))
}

/// Parse a `jasm` source file into its classes.
///
/// # Errors
///
/// Returns [`ClassfileError::Invalid`] with a line number for syntax
/// errors, plus any structural errors from validation (the output always
/// passes [`crate::validate::validate_class`]).
///
/// ```
/// let classes = jvmsim_classfile::jasm::parse(
///     "class t/Two {\n  method static two ()I {\n    iconst 2\n    ireturn\n  }\n}",
/// )?;
/// assert_eq!(classes[0].find_method("two", "()I").unwrap().signature(), "two()I");
/// # Ok::<(), jvmsim_classfile::ClassfileError>(())
/// ```
pub fn parse(source: &str) -> Result<Vec<ClassFile>, ClassfileError> {
    let mut classes = Vec::new();
    let mut lines = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_owned()))
        .filter(|(_, l)| !l.is_empty())
        .collect::<Vec<_>>()
        .into_iter()
        .peekable();

    while let Some((line_no, line)) = lines.next() {
        let mut words = line.split_whitespace();
        match words.next() {
            Some("class") => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "class needs a name"))?;
                let mut cb = ClassBuilder::new(name);
                match (words.next(), words.next(), words.next()) {
                    (Some("extends"), Some(sup), Some("{")) => {
                        cb.extends(sup);
                    }
                    (Some("{"), None, None) => {}
                    _ => return Err(err(line_no, "expected `class Name [extends Super] {`")),
                }
                parse_class_body(&mut cb, &mut lines)?;
                classes.push(cb.finish()?);
            }
            Some(other) => return Err(err(line_no, format!("expected `class`, found {other:?}"))),
            None => unreachable!("blank lines filtered"),
        }
    }
    Ok(classes)
}

fn strip_comment(line: &str) -> &str {
    // Only `//` comments (`;` is significant inside `L…;` descriptors),
    // and only outside double-quoted string literals (`ldc "http://…"`).
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

type Lines = std::iter::Peekable<std::vec::IntoIter<(usize, String)>>;

fn parse_method_flags(words: &[&str]) -> Result<MethodFlags, String> {
    let mut flags = MethodFlags::EMPTY;
    for w in words {
        flags |= match *w {
            "public" => MethodFlags::PUBLIC,
            "static" => MethodFlags::STATIC,
            "final" => MethodFlags::FINAL,
            "synchronized" => MethodFlags::SYNCHRONIZED,
            "synthetic" => MethodFlags::SYNTHETIC,
            other => return Err(format!("unknown method flag {other:?}")),
        };
    }
    Ok(flags)
}

fn parse_class_body(cb: &mut ClassBuilder, lines: &mut Lines) -> Result<(), ClassfileError> {
    while let Some((line_no, line)) = lines.next() {
        if line == "}" {
            return Ok(());
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["field", rest @ ..] => {
                let [flag_words @ .., name, descriptor] = rest else {
                    return Err(err(line_no, "field needs `field [flags] name descriptor`"));
                };
                let mut flags = FieldFlags::EMPTY;
                for w in flag_words {
                    flags |= match *w {
                        "public" => FieldFlags::PUBLIC,
                        "static" => FieldFlags::STATIC,
                        "final" => FieldFlags::FINAL,
                        other => return Err(err(line_no, format!("unknown field flag {other:?}"))),
                    };
                }
                cb.field(name, descriptor, flags)?;
            }
            ["native", "method", rest @ ..] => {
                let [flag_words @ .., name, descriptor] = rest else {
                    return Err(err(line_no, "native method needs `[flags] name (desc)R`"));
                };
                let flags = parse_method_flags(flag_words).map_err(|m| err(line_no, m))?;
                cb.native_method(name, descriptor, flags)?;
            }
            ["method", rest @ ..] => {
                let [flag_words @ .., name, descriptor, "{"] = rest else {
                    return Err(err(line_no, "method needs `[flags] name (desc)R {`"));
                };
                let flags = parse_method_flags(flag_words).map_err(|m| err(line_no, m))?;
                let mut mb = cb.method(name, descriptor, flags);
                parse_method_body(&mut mb, lines)?;
                mb.finish()?;
            }
            _ => return Err(err(line_no, format!("unexpected class item {line:?}"))),
        }
    }
    Err(ClassfileError::Invalid(
        "jasm: unterminated class body".into(),
    ))
}

struct LabelTable {
    labels: HashMap<String, Label>,
}

impl LabelTable {
    fn get(&mut self, mb: &mut MethodBuilder<'_>, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = mb.new_label();
        self.labels.insert(name.to_owned(), l);
        l
    }
}

/// Split `pkg/Cls.name(desc)R` into (class, name, descriptor).
fn split_method_ref(s: &str) -> Option<(&str, &str, &str)> {
    let paren = s.find('(')?;
    let dot = s[..paren].rfind('.')?;
    Some((&s[..dot], &s[dot + 1..paren], &s[paren..]))
}

/// Split `pkg/Cls.name:DESC` into (class, name, descriptor).
fn split_field_ref(s: &str) -> Option<(&str, &str, &str)> {
    let colon = s.find(':')?;
    let dot = s[..colon].rfind('.')?;
    Some((&s[..dot], &s[dot + 1..colon], &s[colon + 1..]))
}

fn cond_of(suffix: &str) -> Option<Cond> {
    Some(match suffix {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "ge" => Cond::Ge,
        "gt" => Cond::Gt,
        "le" => Cond::Le,
        _ => return None,
    })
}

#[allow(clippy::too_many_lines)]
fn parse_method_body(mb: &mut MethodBuilder<'_>, lines: &mut Lines) -> Result<(), ClassfileError> {
    let mut labels = LabelTable {
        labels: HashMap::new(),
    };
    let mut bound: Vec<String> = Vec::new();
    for (line_no, line) in lines.by_ref() {
        if line == "}" {
            return Ok(());
        }
        // Label?
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line_no, "bad label"));
            }
            if bound.iter().any(|b| b == name) {
                return Err(err(line_no, format!("label {name:?} bound twice")));
            }
            let l = labels.get(mb, name);
            mb.bind(l);
            bound.push(name.to_owned());
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let (op, args) = words.split_first().expect("nonempty line");
        let need = |n: usize| -> Result<(), ClassfileError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(line_no, format!("{op} expects {n} operand(s)")))
            }
        };
        let int_arg = |i: usize| -> Result<i64, ClassfileError> {
            args.get(i)
                .and_then(|s| s.parse::<i64>().ok())
                .ok_or_else(|| err(line_no, format!("{op}: bad integer operand")))
        };
        match *op {
            // Simple, operand-free mnemonics.
            "nop" => {
                need(0)?;
                mb.nop();
            }
            "aconst_null" => {
                need(0)?;
                mb.aconst_null();
            }
            "pop" => {
                need(0)?;
                mb.pop();
            }
            "dup" => {
                need(0)?;
                mb.dup();
            }
            "swap" => {
                need(0)?;
                mb.swap();
            }
            "iadd" | "isub" | "imul" | "idiv" | "irem" | "ineg" | "ishl" | "ishr" | "iushr"
            | "iand" | "ior" | "ixor" | "fadd" | "fsub" | "fmul" | "fdiv" | "fneg" | "i2f"
            | "f2i" | "fcmp" | "return" | "ireturn" | "freturn" | "areturn" | "iaload"
            | "iastore" | "faload" | "fastore" | "aaload" | "aastore" | "arraylength"
            | "athrow" => {
                need(0)?;
                match *op {
                    "iadd" => mb.iadd(),
                    "isub" => mb.isub(),
                    "imul" => mb.imul(),
                    "idiv" => mb.idiv(),
                    "irem" => mb.irem(),
                    "ineg" => mb.ineg(),
                    "ishl" => mb.ishl(),
                    "ishr" => mb.ishr(),
                    "iushr" => mb.iushr(),
                    "iand" => mb.iand(),
                    "ior" => mb.ior(),
                    "ixor" => mb.ixor(),
                    "fadd" => mb.fadd(),
                    "fsub" => mb.fsub(),
                    "fmul" => mb.fmul(),
                    "fdiv" => mb.fdiv(),
                    "fneg" => mb.fneg(),
                    "i2f" => mb.i2f(),
                    "f2i" => mb.f2i(),
                    "fcmp" => mb.fcmp(),
                    "return" => mb.ret_void(),
                    "ireturn" => mb.ireturn(),
                    "freturn" => mb.freturn(),
                    "areturn" => mb.areturn(),
                    "iaload" => mb.iaload(),
                    "iastore" => mb.iastore(),
                    "faload" => mb.faload(),
                    "fastore" => mb.fastore(),
                    "aaload" => mb.aaload(),
                    "aastore" => mb.aastore(),
                    "arraylength" => mb.arraylength(),
                    "athrow" => mb.athrow(),
                    _ => unreachable!(),
                };
            }
            "iconst" => {
                need(1)?;
                mb.iconst(int_arg(0)?);
            }
            "fconst" => {
                need(1)?;
                let v: f64 = args[0]
                    .parse()
                    .map_err(|_| err(line_no, "fconst: bad float"))?;
                mb.fconst(v);
            }
            "ldc" => {
                // Everything after `ldc` is a quoted string.
                let rest = line[3..].trim();
                let inner = rest
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| err(line_no, "ldc expects a double-quoted string"))?;
                mb.ldc_str(inner);
            }
            "iload" | "fload" | "aload" | "istore" | "fstore" | "astore" => {
                need(1)?;
                let slot =
                    u16::try_from(int_arg(0)?).map_err(|_| err(line_no, "slot out of range"))?;
                match *op {
                    "iload" => mb.iload(slot),
                    "fload" => mb.fload(slot),
                    "aload" => mb.aload(slot),
                    "istore" => mb.istore(slot),
                    "fstore" => mb.fstore(slot),
                    _ => mb.astore(slot),
                };
            }
            "iinc" => {
                need(2)?;
                let slot =
                    u16::try_from(int_arg(0)?).map_err(|_| err(line_no, "slot out of range"))?;
                let delta =
                    i32::try_from(int_arg(1)?).map_err(|_| err(line_no, "delta out of range"))?;
                mb.iinc(slot, delta);
            }
            "goto" => {
                need(1)?;
                let l = labels.get(mb, args[0]);
                mb.goto(l);
            }
            "ifnull" | "ifnonnull" => {
                need(1)?;
                let l = labels.get(mb, args[0]);
                if *op == "ifnull" {
                    mb.ifnull(l);
                } else {
                    mb.ifnonnull(l);
                }
            }
            _ if op.starts_with("if_icmp") => {
                need(1)?;
                let cond = cond_of(&op[7..])
                    .ok_or_else(|| err(line_no, format!("unknown condition in {op}")))?;
                let l = labels.get(mb, args[0]);
                mb.if_icmp(cond, l);
            }
            _ if op.starts_with("if") && cond_of(&op[2..]).is_some() => {
                need(1)?;
                let cond = cond_of(&op[2..]).expect("checked");
                let l = labels.get(mb, args[0]);
                mb.if_(cond, l);
            }
            "tableswitch" => {
                // tableswitch <low> [l1 l2 ...] default
                if args.len() < 3 || args[1] != "[" {
                    return Err(err(
                        line_no,
                        "tableswitch expects `tableswitch low [ l1 l2 … ] default`",
                    ));
                }
                let low = int_arg(0)?;
                let close = args
                    .iter()
                    .position(|&w| w == "]")
                    .ok_or_else(|| err(line_no, "tableswitch: missing `]`"))?;
                let targets: Vec<Label> =
                    args[2..close].iter().map(|w| labels.get(mb, w)).collect();
                let default = args
                    .get(close + 1)
                    .ok_or_else(|| err(line_no, "tableswitch: missing default"))?;
                let default = labels.get(mb, default);
                mb.tableswitch(low, &targets, default);
            }
            "invokestatic" | "invokevirtual" => {
                need(1)?;
                let (class, name, desc) = split_method_ref(args[0])
                    .ok_or_else(|| err(line_no, "expected pkg/Cls.name(desc)R"))?;
                if *op == "invokestatic" {
                    mb.invokestatic(class, name, desc);
                } else {
                    mb.invokevirtual(class, name, desc);
                }
            }
            "new" => {
                need(1)?;
                mb.new_obj(args[0]);
            }
            "getfield" | "putfield" | "getstatic" | "putstatic" => {
                need(1)?;
                let (class, name, desc) = split_field_ref(args[0])
                    .ok_or_else(|| err(line_no, "expected pkg/Cls.name:DESC"))?;
                match *op {
                    "getfield" => mb.getfield(class, name, desc),
                    "putfield" => mb.putfield(class, name, desc),
                    "getstatic" => mb.getstatic(class, name, desc),
                    _ => mb.putstatic(class, name, desc),
                };
            }
            "newarray" => {
                need(1)?;
                let kind = match args[0] {
                    "int" => ArrayKind::Int,
                    "float" => ArrayKind::Float,
                    "ref" => ArrayKind::Ref,
                    other => return Err(err(line_no, format!("unknown array kind {other:?}"))),
                };
                mb.newarray(kind);
            }
            "try" => {
                need(4)?;
                let start = labels.get(mb, args[0]);
                let end = labels.get(mb, args[1]);
                let handler = labels.get(mb, args[2]);
                let catch = if args[3] == "*" { None } else { Some(args[3]) };
                mb.try_region(start, end, handler, catch);
            }
            other => return Err(err(line_no, format!("unknown mnemonic {other:?}"))),
        }
    }
    Err(ClassfileError::Invalid(
        "jasm: unterminated method body".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_example_assembles_and_validates() {
        let src = r#"
            class demo/Counter extends java/lang/Object {
                field static hits I
                native method static poke (I)I

                method static bump (I)I {
                    getstatic demo/Counter.hits:I
                    iload 0
                    iadd
                    dup
                    putstatic demo/Counter.hits:I
                    ireturn
                }

                method static spin (I)V {
                  top:
                    iload 0
                    ifle done
                    iinc 0 -1
                    goto top
                  done:
                    return
                }
            }
        "#;
        let classes = parse(src).unwrap();
        assert_eq!(classes.len(), 1);
        let c = &classes[0];
        assert_eq!(c.name(), "demo/Counter");
        assert!(c.find_method("poke", "(I)I").unwrap().is_native());
        assert!(c.find_field("hits").unwrap().is_static());
        crate::validate::validate_class(c).unwrap();
    }

    #[test]
    fn try_regions_strings_and_switch() {
        let src = r#"
            // a parser fixture with everything fancy
            class t/Fancy {
                method static f (I)I {
                  start:
                    iload 0
                    tableswitch 0 [ a b ] dflt
                  a:
                    ldc "hello"   // push + drop a string
                    pop
                    iconst 1
                    ireturn
                  b:
                    iconst 1
                    iconst 0
                    idiv
                    ireturn
                  dflt:
                    iconst -1
                    ireturn
                  end:
                  handler:
                    pop
                    iconst 99
                    ireturn
                    try start end handler java/lang/ArithmeticException
                }
            }
        "#;
        let classes = parse(src).unwrap();
        let c = &classes[0];
        let code = c.find_method("f", "(I)I").unwrap().code.as_ref().unwrap();
        assert_eq!(code.exception_table.len(), 1);
        assert_eq!(
            code.exception_table[0].catch_class.as_deref(),
            Some("java/lang/ArithmeticException")
        );
        assert!(code
            .insns
            .iter()
            .any(|i| matches!(i, crate::Insn::TableSwitch { .. })));
    }

    #[test]
    fn multiple_classes_per_file() {
        let src = "class a/A {\n}\nclass b/B extends a/A {\n}";
        let classes = parse(src).unwrap();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[1].super_name(), Some("a/A"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            (
                "class a/A {\n  method static f ()V {\n    frobnicate\n  }\n}",
                "line 3",
            ),
            ("class a/A {\n  bogus item\n}", "line 2"),
            (
                "class a/A {\n  method static f ()V {\n    iconst x\n  }\n}",
                "line 3",
            ),
            (
                "class a/A {\n  method static f ()V {\n    goto\n  }\n}",
                "line 3",
            ),
            ("banana", "line 1"),
        ];
        for (src, needle) in cases {
            let e = parse(src).unwrap_err().to_string();
            assert!(e.contains(needle), "{src:?} → {e}");
        }
    }

    #[test]
    fn unterminated_bodies_are_errors() {
        assert!(parse("class a/A {").is_err());
        assert!(parse("class a/A {\n  method static f ()V {\n    return").is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse("class a/A {\n  method static f ()V {\n  x:\n  x:\n    return\n  }\n}")
            .unwrap_err()
            .to_string();
        assert!(e.contains("bound twice"), "{e}");
    }

    #[test]
    fn validation_failures_propagate() {
        // Stack underflow is caught by the validator at method finish.
        let e = parse("class a/A {\n  method static f ()V {\n    iadd\n    return\n  }\n}")
            .unwrap_err()
            .to_string();
        assert!(e.contains("underflow"), "{e}");
    }

    #[test]
    fn assembled_class_runs_like_builder_output() {
        // Parse and execute via the codec round trip (no VM here, just the
        // structural identity with a builder-constructed twin).
        let src = "class t/Twin {\n  method static two ()I {\n    iconst 1\n    iconst 1\n    iadd\n    ireturn\n  }\n}";
        let parsed = &parse(src).unwrap()[0];
        let built = crate::builder::single_method_class("t/Twin", "two", "()I", |m| {
            m.iconst(1).iconst(1).iadd().ireturn();
        })
        .unwrap();
        // Flags differ (jasm default vs helper's PUBLIC|STATIC); compare code.
        assert_eq!(
            parsed.find_method("two", "()I").unwrap().code,
            built.find_method("two", "()I").unwrap().code
        );
    }
}
