//! Class, method and field structures.

use std::fmt;

use crate::constpool::ConstantPool;
use crate::error::ClassfileError;
use crate::flags::{ClassFlags, FieldFlags, MethodFlags};
use crate::insn::{Insn, InsnIndex};
use crate::ty::{MethodDescriptor, Type};

/// Name of the root class every class ultimately extends.
pub const OBJECT_CLASS: &str = "java/lang/Object";

/// Name of the conventional class-initializer method, run once when a class
/// is first used (this is where `System.loadLibrary` calls typically live,
/// as §II-A of the paper notes).
pub const CLINIT: &str = "<clinit>";

/// One entry in a method's exception table.
///
/// If an exception is thrown while the program counter is in
/// `start..end` (instruction indices, end exclusive) and the thrown class
/// matches `catch_class` (or `catch_class` is `None`, a catch-all — how
/// `finally` is encoded), control transfers to `handler` with the exception
/// reference as the sole stack operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionHandler {
    /// First covered instruction index.
    pub start: InsnIndex,
    /// One past the last covered instruction index.
    pub end: InsnIndex,
    /// Handler entry point.
    pub handler: InsnIndex,
    /// Class of exceptions to catch; `None` catches everything.
    pub catch_class: Option<String>,
}

/// The bytecode body of a non-native, non-abstract method.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Code {
    /// Maximum operand-stack depth, as computed by the validator.
    pub max_stack: u16,
    /// Number of local-variable slots (parameters included).
    pub max_locals: u16,
    /// The instructions.
    pub insns: Vec<Insn>,
    /// Exception table, searched in order.
    pub exception_table: Vec<ExceptionHandler>,
}

/// A method declaration, with bytecode unless it is `native`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    name: String,
    descriptor: MethodDescriptor,
    descriptor_string: String,
    /// Access flags.
    pub flags: MethodFlags,
    /// Body; `None` exactly when [`MethodFlags::NATIVE`] is set.
    pub code: Option<Code>,
}

impl MethodInfo {
    /// Construct a bytecode method.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadDescriptor`] if `descriptor` does not
    /// parse, or [`ClassfileError::Invalid`] if `flags` contains `NATIVE`.
    pub fn new(
        name: impl Into<String>,
        descriptor: &str,
        flags: MethodFlags,
        code: Code,
    ) -> Result<Self, ClassfileError> {
        if flags.contains(MethodFlags::NATIVE) {
            return Err(ClassfileError::Invalid(
                "a native method cannot have a bytecode body".into(),
            ));
        }
        Ok(MethodInfo {
            name: name.into(),
            descriptor: descriptor.parse()?,
            descriptor_string: descriptor.to_owned(),
            flags,
            code: Some(code),
        })
    }

    /// Construct a `native` method (no body; resolved against a native
    /// library at link time).
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadDescriptor`] if `descriptor` does not
    /// parse.
    pub fn new_native(
        name: impl Into<String>,
        descriptor: &str,
        flags: MethodFlags,
    ) -> Result<Self, ClassfileError> {
        Ok(MethodInfo {
            name: name.into(),
            descriptor: descriptor.parse()?,
            descriptor_string: descriptor.to_owned(),
            flags: flags.with(MethodFlags::NATIVE),
            code: None,
        })
    }

    /// Method name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the method (used by the prefixing transform).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Parsed descriptor.
    pub fn descriptor(&self) -> &MethodDescriptor {
        &self.descriptor
    }

    /// Descriptor string as written, e.g. `(I[F)V`.
    pub fn descriptor_string(&self) -> &str {
        &self.descriptor_string
    }

    /// The paper's `m.isNative()`.
    pub fn is_native(&self) -> bool {
        self.flags.contains(MethodFlags::NATIVE)
    }

    /// Does the method have a `this` receiver?
    pub fn is_static(&self) -> bool {
        self.flags.contains(MethodFlags::STATIC)
    }

    /// Total argument slots including the receiver for instance methods.
    pub fn arg_slots(&self) -> usize {
        self.descriptor.param_slots() + usize::from(!self.is_static())
    }

    /// `name + descriptor`, the key a class resolves members by.
    pub fn signature(&self) -> String {
        format!("{}{}", self.name, self.descriptor_string)
    }
}

impl fmt::Display for MethodInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}{}", self.flags, self.name, self.descriptor_string)
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    name: String,
    ty: Type,
    /// Access flags.
    pub flags: FieldFlags,
}

impl FieldInfo {
    /// Construct a field.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::BadDescriptor`] if `descriptor` does not
    /// parse as a type.
    pub fn new(
        name: impl Into<String>,
        descriptor: &str,
        flags: FieldFlags,
    ) -> Result<Self, ClassfileError> {
        Ok(FieldInfo {
            name: name.into(),
            ty: descriptor.parse()?,
            flags,
        })
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// Is this a per-class (static) field?
    pub fn is_static(&self) -> bool {
        self.flags.contains(FieldFlags::STATIC)
    }
}

/// A complete class: name, superclass, constant pool, fields, methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassFile {
    name: String,
    super_name: Option<String>,
    /// Access flags.
    pub flags: ClassFlags,
    /// The class's constant pool.
    pub pool: ConstantPool,
    fields: Vec<FieldInfo>,
    methods: Vec<MethodInfo>,
}

impl ClassFile {
    /// Create an empty class extending [`OBJECT_CLASS`].
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let super_name = if name == OBJECT_CLASS {
            None
        } else {
            Some(OBJECT_CLASS.to_owned())
        };
        ClassFile {
            name,
            super_name,
            flags: ClassFlags::PUBLIC,
            pool: ConstantPool::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Internal class name, e.g. `spec/jvm98/Compress`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Superclass name; `None` only for `java/lang/Object` itself.
    pub fn super_name(&self) -> Option<&str> {
        self.super_name.as_deref()
    }

    /// Set the superclass.
    pub fn set_super_name(&mut self, name: impl Into<String>) {
        self.super_name = Some(name.into());
    }

    /// Declared fields.
    pub fn fields(&self) -> &[FieldInfo] {
        &self.fields
    }

    /// Declared methods.
    pub fn methods(&self) -> &[MethodInfo] {
        &self.methods
    }

    /// Mutable access to the methods (used by bytecode transforms).
    pub fn methods_mut(&mut self) -> &mut Vec<MethodInfo> {
        &mut self.methods
    }

    /// Add a field.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::Duplicate`] on a duplicate field name.
    pub fn add_field(&mut self, field: FieldInfo) -> Result<(), ClassfileError> {
        if self.fields.iter().any(|f| f.name() == field.name()) {
            return Err(ClassfileError::Duplicate(format!(
                "field {} in class {}",
                field.name(),
                self.name
            )));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Add a method.
    ///
    /// # Errors
    ///
    /// Returns [`ClassfileError::Duplicate`] if a method with the same name
    /// and descriptor already exists.
    pub fn add_method(&mut self, method: MethodInfo) -> Result<(), ClassfileError> {
        if self.methods.iter().any(|m| {
            m.name() == method.name() && m.descriptor_string() == method.descriptor_string()
        }) {
            return Err(ClassfileError::Duplicate(format!(
                "method {} in class {}",
                method.signature(),
                self.name
            )));
        }
        self.methods.push(method);
        Ok(())
    }

    /// Look up a method by name and descriptor.
    pub fn find_method(&self, name: &str, descriptor: &str) -> Option<&MethodInfo> {
        self.methods
            .iter()
            .find(|m| m.name() == name && m.descriptor_string() == descriptor)
    }

    /// Look up a field by name.
    pub fn find_field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name() == name)
    }

    /// Does the class declare any `native` method? (The dynamic
    /// instrumentation path uses this to decide whether a loaded class needs
    /// the wrapper transform at all.)
    pub fn has_native_methods(&self) -> bool {
        self.methods.iter().any(MethodInfo::is_native)
    }
}

impl fmt::Display for ClassFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class {} extends {} ({} fields, {} methods)",
            self.name,
            self.super_name.as_deref().unwrap_or("<root>"),
            self.fields.len(),
            self.methods.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_code() -> Code {
        Code {
            max_stack: 1,
            max_locals: 0,
            insns: vec![Insn::Return],
            exception_table: Vec::new(),
        }
    }

    #[test]
    fn method_properties() {
        let m = MethodInfo::new("run", "(I)I", MethodFlags::STATIC, simple_code()).unwrap();
        assert_eq!(m.name(), "run");
        assert!(!m.is_native());
        assert!(m.is_static());
        assert_eq!(m.arg_slots(), 1);
        assert_eq!(m.signature(), "run(I)I");
        assert!(m.code.is_some());
    }

    #[test]
    fn instance_method_has_receiver_slot() {
        let m = MethodInfo::new("f", "(II)V", MethodFlags::PUBLIC, simple_code()).unwrap();
        assert_eq!(m.arg_slots(), 3);
    }

    #[test]
    fn native_method_has_no_code() {
        let m = MethodInfo::new_native("read", "()I", MethodFlags::EMPTY).unwrap();
        assert!(m.is_native());
        assert!(m.code.is_none());
        assert!(m.flags.contains(MethodFlags::NATIVE));
    }

    #[test]
    fn native_with_body_rejected() {
        let err = MethodInfo::new("x", "()V", MethodFlags::NATIVE, simple_code()).unwrap_err();
        assert!(matches!(err, ClassfileError::Invalid(_)));
    }

    #[test]
    fn bad_descriptor_rejected() {
        assert!(MethodInfo::new_native("x", "(", MethodFlags::EMPTY).is_err());
        assert!(FieldInfo::new("f", "Q", FieldFlags::EMPTY).is_err());
    }

    #[test]
    fn class_member_lookup() {
        let mut c = ClassFile::new("a/B");
        c.add_method(MethodInfo::new_native("n", "()V", MethodFlags::EMPTY).unwrap())
            .unwrap();
        c.add_field(FieldInfo::new("count", "I", FieldFlags::STATIC).unwrap())
            .unwrap();
        assert!(c.find_method("n", "()V").is_some());
        assert!(c.find_method("n", "(I)V").is_none());
        assert!(c.find_field("count").unwrap().is_static());
        assert!(c.has_native_methods());
        assert_eq!(c.super_name(), Some(OBJECT_CLASS));
    }

    #[test]
    fn object_root_has_no_super() {
        let c = ClassFile::new(OBJECT_CLASS);
        assert_eq!(c.super_name(), None);
    }

    #[test]
    fn duplicates_rejected() {
        let mut c = ClassFile::new("a/B");
        let m = MethodInfo::new_native("n", "()V", MethodFlags::EMPTY).unwrap();
        c.add_method(m.clone()).unwrap();
        assert!(matches!(c.add_method(m), Err(ClassfileError::Duplicate(_))));
        // Overloads are fine.
        c.add_method(MethodInfo::new_native("n", "(I)V", MethodFlags::EMPTY).unwrap())
            .unwrap();
        let f = FieldInfo::new("x", "I", FieldFlags::EMPTY).unwrap();
        c.add_field(f.clone()).unwrap();
        assert!(matches!(c.add_field(f), Err(ClassfileError::Duplicate(_))));
    }

    #[test]
    fn display() {
        let c = ClassFile::new("a/B");
        assert_eq!(
            c.to_string(),
            "class a/B extends java/lang/Object (0 fields, 0 methods)"
        );
        let m = MethodInfo::new_native("n", "()V", MethodFlags::PUBLIC).unwrap();
        assert_eq!(m.to_string(), "public native n()V");
    }
}
