//! Codec robustness under arbitrary corruption: `decode` must return
//! `Err` — never panic, never hang — for any mutation of a valid encoded
//! class. This is the contract the VM's fault plane relies on when it
//! truncates classfile bytes mid-load: a corrupt class becomes a Java
//! linkage error, not a simulator crash.

use proptest::prelude::*;

use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::{codec, Cond, MethodFlags};

const ST: MethodFlags = MethodFlags::PUBLIC.with(MethodFlags::STATIC);

/// A representative class: constant pool strings, a native method, a
/// branching method with an exception table — every section of the
/// binary format is populated.
fn sample_class_bytes() -> Vec<u8> {
    let mut cb = ClassBuilder::new("fuzz/Sample");
    cb.native_method("nat", "(I)I", ST).unwrap();
    let mut m = cb.method("run", "(I)I", ST);
    let start = m.new_label();
    let end = m.new_label();
    let handler = m.new_label();
    let done = m.new_label();
    m.bind(start);
    m.iload(0).if_(Cond::Le, done);
    m.iload(0)
        .invokestatic("fuzz/Sample", "nat", "(I)I")
        .istore(0);
    m.ldc_str("marker").pop();
    m.goto(start);
    m.bind(end);
    m.bind(handler);
    m.pop();
    m.bind(done);
    m.iload(0).ireturn();
    m.try_region(start, end, handler, None);
    m.finish().unwrap();
    codec::encode(&cb.finish().unwrap())
}

#[test]
fn sample_round_trips() {
    let bytes = sample_class_bytes();
    let class = codec::decode(&bytes).expect("valid class decodes");
    assert_eq!(class.name(), "fuzz/Sample");
    assert_eq!(codec::encode(&class), bytes, "round trip is byte-stable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_never_panics(cut in 0usize..2048) {
        let bytes = sample_class_bytes();
        let cut = cut % bytes.len(); // every strict prefix
        prop_assert!(
            codec::decode(&bytes[..cut]).is_err(),
            "a strict prefix must not decode"
        );
    }

    #[test]
    fn single_byte_mutation_never_panics(pos in 0usize..2048, value in any::<u8>()) {
        let mut bytes = sample_class_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = value;
        // A mutated class may still decode (e.g. a flipped bit inside a
        // string constant) — the contract is only "no panic, and if Ok,
        // re-encoding doesn't panic either".
        if let Ok(class) = codec::decode(&bytes) {
            let _ = codec::encode(&class);
        }
    }

    #[test]
    fn multi_edit_mutation_never_panics(
        edits in prop::collection::vec((0usize..2048, any::<u8>()), 1..32),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = sample_class_bytes();
        for (pos, value) in edits {
            let pos = pos % bytes.len();
            bytes[pos] = value;
        }
        bytes.extend_from_slice(&tail);
        if let Ok(class) = codec::decode(&bytes) {
            let _ = codec::encode(&class);
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode(&bytes);
    }
}
