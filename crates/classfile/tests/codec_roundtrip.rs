//! Property tests: the binary codec round-trips arbitrary class structures
//! bit-exactly, and the assembler + validator agree with the codec.

use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::{
    codec, ArrayKind, ClassFile, Code, Cond, CpIndex, ExceptionHandler, Insn, MethodFlags,
    MethodInfo,
};
use proptest::prelude::*;

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Gt),
        Just(Cond::Le),
    ]
}

fn arb_array_kind() -> impl Strategy<Value = ArrayKind> {
    prop_oneof![
        Just(ArrayKind::Int),
        Just(ArrayKind::Float),
        Just(ArrayKind::Ref),
    ]
}

/// Arbitrary instructions (structurally arbitrary: the codec must
/// round-trip anything, valid or not).
fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        any::<i64>().prop_map(Insn::IConst),
        // NaN breaks PartialEq-based comparison; use finite floats.
        (-1.0e15f64..1.0e15).prop_map(Insn::FConst),
        Just(Insn::AConstNull),
        (0u16..64).prop_map(|i| Insn::Ldc(CpIndex(i))),
        (0u16..256).prop_map(Insn::ILoad),
        (0u16..256).prop_map(Insn::FLoad),
        (0u16..256).prop_map(Insn::ALoad),
        (0u16..256).prop_map(Insn::IStore),
        (0u16..256).prop_map(Insn::FStore),
        (0u16..256).prop_map(Insn::AStore),
        Just(Insn::Pop),
        Just(Insn::Dup),
        Just(Insn::Swap),
        Just(Insn::IAdd),
        Just(Insn::ISub),
        Just(Insn::IMul),
        Just(Insn::IDiv),
        Just(Insn::IRem),
        Just(Insn::INeg),
        Just(Insn::IShl),
        Just(Insn::IShr),
        Just(Insn::IUShr),
        Just(Insn::IAnd),
        Just(Insn::IOr),
        Just(Insn::IXor),
        ((0u16..256), any::<i32>()).prop_map(|(local, delta)| Insn::IInc { local, delta }),
        Just(Insn::FAdd),
        Just(Insn::FSub),
        Just(Insn::FMul),
        Just(Insn::FDiv),
        Just(Insn::FNeg),
        Just(Insn::I2F),
        Just(Insn::F2I),
        Just(Insn::FCmp),
        (0u32..10_000).prop_map(Insn::Goto),
        (arb_cond(), 0u32..10_000).prop_map(|(c, t)| Insn::If(c, t)),
        (arb_cond(), 0u32..10_000).prop_map(|(c, t)| Insn::IfICmp(c, t)),
        (0u32..10_000).prop_map(Insn::IfNull),
        (0u32..10_000).prop_map(Insn::IfNonNull),
        (
            any::<i64>(),
            prop::collection::vec(0u32..10_000, 0..8),
            0u32..10_000
        )
            .prop_map(|(low, targets, default)| Insn::TableSwitch {
                low,
                targets,
                default
            }),
        (0u16..64).prop_map(|i| Insn::InvokeStatic(CpIndex(i))),
        (0u16..64).prop_map(|i| Insn::InvokeVirtual(CpIndex(i))),
        Just(Insn::Return),
        Just(Insn::IReturn),
        Just(Insn::FReturn),
        Just(Insn::AReturn),
        (0u16..64).prop_map(|i| Insn::New(CpIndex(i))),
        (0u16..64).prop_map(|i| Insn::GetField(CpIndex(i))),
        (0u16..64).prop_map(|i| Insn::PutField(CpIndex(i))),
        (0u16..64).prop_map(|i| Insn::GetStatic(CpIndex(i))),
        (0u16..64).prop_map(|i| Insn::PutStatic(CpIndex(i))),
        arb_array_kind().prop_map(Insn::NewArray),
        Just(Insn::IALoad),
        Just(Insn::IAStore),
        Just(Insn::FALoad),
        Just(Insn::FAStore),
        Just(Insn::AALoad),
        Just(Insn::AAStore),
        Just(Insn::ArrayLength),
        Just(Insn::AThrow),
    ]
}

fn arb_class_name() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(/[A-Za-z][A-Za-z0-9_]{0,10}){1,3}"
}

fn arb_class() -> impl Strategy<Value = ClassFile> {
    (
        arb_class_name(),
        prop::collection::vec(arb_insn(), 1..60),
        prop::collection::vec(
            (
                (0u32..50),
                (0u32..50),
                (0u32..50),
                prop::option::of(arb_class_name()),
            ),
            0..4,
        ),
        prop::collection::vec(
            ("[a-z]{1,10}", "[ -~]{0,30}", "\\(\\)V|\\(I\\)I|\\(IF\\)F"),
            0..6,
        ),
    )
        .prop_map(|(name, insns, handlers, pool_seed)| {
            let mut class = ClassFile::new(name);
            // Populate the pool with entries the instruction operands can
            // (dangling-ly) reference; the codec must not care.
            for (cls, mname, desc) in &pool_seed {
                class
                    .pool
                    .intern_method_ref(cls.clone(), mname.clone(), desc.clone());
                class.pool.intern_field_ref(cls.clone(), mname.clone(), "I");
                class.pool.intern_utf8(desc.clone());
            }
            let exception_table = handlers
                .into_iter()
                .map(|(start, end, handler, catch_class)| ExceptionHandler {
                    start,
                    end: end.max(start + 1),
                    handler,
                    catch_class,
                })
                .collect();
            let code = Code {
                max_stack: 40,
                max_locals: 300,
                insns,
                exception_table,
            };
            class
                .add_method(MethodInfo::new("body", "()V", MethodFlags::STATIC, code).unwrap())
                .unwrap();
            class
                .add_method(MethodInfo::new_native("nat", "(IF)I", MethodFlags::PUBLIC).unwrap())
                .unwrap();
            class
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips_arbitrary_classes(class in arb_class()) {
        let bytes = codec::encode(&class);
        let decoded = codec::decode(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &class);
        // Re-encoding is byte-stable (canonical form).
        prop_assert_eq!(codec::encode(&decoded), bytes);
    }

    #[test]
    fn truncated_input_never_panics(class in arb_class(), cut in 0usize..5_000) {
        let bytes = codec::encode(&class);
        let cut = cut.min(bytes.len());
        // Must return an error (or succeed only for the full length),
        // never panic.
        let result = codec::decode(&bytes[..cut]);
        if cut < bytes.len() {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(class in arb_class(), pos in 0usize..5_000, flip in 1u8..=255) {
        let mut bytes = codec::encode(&class);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        // Any outcome is fine except a panic; if it decodes, it must
        // re-encode without panicking too.
        if let Ok(decoded) = codec::decode(&bytes) {
            let _ = codec::encode(&decoded);
        }
    }

    #[test]
    fn builder_output_always_validates_and_round_trips(
        consts in prop::collection::vec(-1000i64..1000, 1..20),
    ) {
        // Straight-line code from the builder must validate and survive
        // the codec.
        let mut cb = ClassBuilder::new("p/Sum");
        let mut m = cb.method("sum", "()I", MethodFlags::STATIC);
        m.iconst(0);
        for c in &consts {
            m.iconst(*c).iadd();
        }
        m.ireturn();
        m.finish().expect("valid");
        let class = cb.finish().expect("valid class");
        let decoded = codec::decode(&codec::encode(&class)).expect("round trip");
        jvmsim_classfile::validate::validate_class(&decoded).expect("still valid");
        prop_assert_eq!(decoded, class);
    }
}
