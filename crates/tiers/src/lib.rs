//! The tiered execution model: execution tiers, promotion modes, and the
//! `--tiers` scenario axis.
//!
//! The simulated JVM executes every bytecode method at one of three
//! tiers, mirroring HotSpot's tiered compilation pipeline:
//!
//! * [`Tier::Interp`] — the template interpreter. Every method starts
//!   here; per-instruction cost is highest.
//! * [`Tier::C1`] — the quick client compiler. A method is promoted when
//!   its invocation counter (or an activation's back-edge counter, via
//!   on-stack replacement) crosses the C1 threshold. Compilation itself
//!   charges cycles, attributed to a dedicated `c1_compile` bucket.
//! * [`Tier::C2`] — the optimizing server compiler. Promotion from C1 at
//!   a higher invocation count; the compile is an order of magnitude more
//!   expensive and the generated code an order of magnitude faster than
//!   interpreted bytecode (the Lambert/Casey interpreter-vs-tier ratios).
//!
//! Which promotions are *allowed* is the scenario axis: [`TiersMode`]
//! selects between a pure interpreter (`-Xint`), a single quick tier
//! (client mode), and the full pipeline (tiered server mode). The mode is
//! part of a run's cache identity — two runs at different modes never
//! share a memoized row.
//!
//! This crate is dependency-free plain data so every layer — the PCL cost
//! model below the VM, the suite driver and HTTP API above it — can name
//! tiers without depending on the VM itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

/// One execution tier. Ordered: `Interp < C1 < C2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tier {
    /// Interpreted execution (every method's initial tier).
    #[default]
    Interp,
    /// C1-like quick compile: fast to produce, moderately fast code.
    C1,
    /// C2-like optimizing compile: expensive to produce, fastest code.
    C2,
}

impl Tier {
    /// All tiers, promotion order.
    pub const ALL: [Tier; 3] = [Tier::Interp, Tier::C1, Tier::C2];

    /// Dense index (`Interp` = 0, `C1` = 1, `C2` = 2).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case label (`interp` / `c1` / `c2`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::C1 => "c1",
            Tier::C2 => "c2",
        }
    }

    /// The next tier up, if any.
    #[must_use]
    pub fn next(self) -> Option<Tier> {
        match self {
            Tier::Interp => Some(Tier::C1),
            Tier::C1 => Some(Tier::C2),
            Tier::C2 => None,
        }
    }

    /// Is this a compiled tier (anything above the interpreter)?
    #[must_use]
    pub fn is_compiled(self) -> bool {
        self != Tier::Interp
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The `--tiers` scenario axis: which promotions the pipeline performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TiersMode {
    /// No compilation at all — the `-Xint` ablation. Every method stays
    /// interpreted forever.
    InterpOnly,
    /// Interpreter plus the C1 quick tier only (HotSpot client mode).
    Tiered,
    /// The full pipeline: interpreter → C1 → C2 with on-stack
    /// replacement. The default.
    #[default]
    Full,
}

impl TiersMode {
    /// All modes, ablation order.
    pub const ALL: [TiersMode; 3] = [TiersMode::InterpOnly, TiersMode::Tiered, TiersMode::Full];

    /// Stable label, the canonical CLI / JSON spelling
    /// (`interp-only` / `tiered` / `full`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TiersMode::InterpOnly => "interp-only",
            TiersMode::Tiered => "tiered",
            TiersMode::Full => "full",
        }
    }

    /// The highest tier this mode ever promotes a method to.
    #[must_use]
    pub fn ceiling(self) -> Tier {
        match self {
            TiersMode::InterpOnly => Tier::Interp,
            TiersMode::Tiered => Tier::C1,
            TiersMode::Full => Tier::C2,
        }
    }

    /// Does this mode allow promoting *from* `tier`?
    #[must_use]
    pub fn allows_promotion_from(self, tier: Tier) -> bool {
        tier < self.ceiling()
    }
}

impl fmt::Display for TiersMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`TiersMode`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTiersModeError(String);

impl fmt::Display for ParseTiersModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown tiers mode '{}' (expected interp-only, tiered, or full)",
            self.0
        )
    }
}

impl std::error::Error for ParseTiersModeError {}

impl FromStr for TiersMode {
    type Err = ParseTiersModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp-only" | "interp_only" | "interponly" | "interp" | "xint" => {
                Ok(TiersMode::InterpOnly)
            }
            "tiered" | "c1" | "client" => Ok(TiersMode::Tiered),
            "full" | "c2" | "server" => Ok(TiersMode::Full),
            other => Err(ParseTiersModeError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_and_indices_are_dense() {
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert!(Tier::Interp < Tier::C1);
        assert!(Tier::C1 < Tier::C2);
        assert_eq!(Tier::Interp.next(), Some(Tier::C1));
        assert_eq!(Tier::C1.next(), Some(Tier::C2));
        assert_eq!(Tier::C2.next(), None);
        assert!(!Tier::Interp.is_compiled());
        assert!(Tier::C1.is_compiled());
        assert!(Tier::C2.is_compiled());
    }

    #[test]
    fn mode_ceilings_gate_promotion() {
        assert_eq!(TiersMode::InterpOnly.ceiling(), Tier::Interp);
        assert_eq!(TiersMode::Tiered.ceiling(), Tier::C1);
        assert_eq!(TiersMode::Full.ceiling(), Tier::C2);
        assert!(!TiersMode::InterpOnly.allows_promotion_from(Tier::Interp));
        assert!(TiersMode::Tiered.allows_promotion_from(Tier::Interp));
        assert!(!TiersMode::Tiered.allows_promotion_from(Tier::C1));
        assert!(TiersMode::Full.allows_promotion_from(Tier::C1));
        assert!(!TiersMode::Full.allows_promotion_from(Tier::C2));
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for mode in TiersMode::ALL {
            assert_eq!(mode.label().parse::<TiersMode>().unwrap(), mode);
        }
        assert_eq!(
            "INTERP-ONLY".parse::<TiersMode>(),
            Ok(TiersMode::InterpOnly)
        );
        assert_eq!(" tiered ".parse::<TiersMode>(), Ok(TiersMode::Tiered));
        assert_eq!("server".parse::<TiersMode>(), Ok(TiersMode::Full));
        let err = "jit".parse::<TiersMode>().unwrap_err();
        assert!(err.to_string().contains("jit"));
    }

    #[test]
    fn default_mode_is_full_pipeline() {
        assert_eq!(TiersMode::default(), TiersMode::Full);
        assert_eq!(Tier::default(), Tier::Interp);
    }
}
