//! The determinism contract, pinned by property test: interleaved
//! counter/gauge/histogram/charge updates distributed over N simulated
//! threads (shards) merge to the same [`MetricsSnapshot`] regardless of
//! merge order, and the registry's own fold agrees with a manual fold.

use proptest::prelude::*;

use jvmsim_metrics::{
    Bucket, CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsShard, MetricsSnapshot,
};

/// Apply one encoded update to a shard. The encoding keeps the strategy
/// simple: `kind` selects the metric family, `a`/`b` select the id and
/// the value.
fn apply(shard: &std::sync::Arc<MetricsShard>, kind: u8, a: u64, b: u64) {
    match kind % 5 {
        0 => shard.add(
            CounterId::ALL[(a % CounterId::COUNT as u64) as usize],
            b % 1_000,
        ),
        1 => shard.gauge_max(GaugeId::ALL[(a % GaugeId::COUNT as u64) as usize], b),
        2 => shard.observe(
            HistogramId::ALL[(a % HistogramId::COUNT as u64) as usize],
            b,
        ),
        3 => shard.charge(b % 100_000),
        _ => {
            let _g = shard.enter(Bucket::ALL[(a % Bucket::COUNT as u64) as usize]);
            shard.charge(b % 100_000);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_order_never_changes_the_snapshot(
        threads in 1usize..6,
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..200),
        rotation in any::<usize>(),
    ) {
        let reg = MetricsRegistry::new();
        // Interleave the update stream over the simulated threads.
        for (i, (kind, a, b)) in ops.iter().enumerate() {
            let shard = reg.shard(i % threads);
            apply(&shard, *kind, *a, *b);
        }
        reg.global().incr(CounterId::CellsStarted);

        // Manual folds in three different orders: forward, reverse, rotated.
        let mut parts: Vec<MetricsSnapshot> =
            (0..threads).map(|i| reg.shard(i).snapshot()).collect();
        parts.push(reg.global().snapshot());
        let fold = |order: &[usize]| {
            let mut out = MetricsSnapshot::default();
            for &i in order {
                out.absorb(&parts[i]);
            }
            out
        };
        let forward: Vec<usize> = (0..parts.len()).collect();
        let reverse: Vec<usize> = (0..parts.len()).rev().collect();
        let rot = rotation % parts.len();
        let rotated: Vec<usize> = (0..parts.len()).map(|i| (i + rot) % parts.len()).collect();

        let a = fold(&forward);
        let b = fold(&reverse);
        let c = fold(&rotated);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        // The registry's own fold agrees with the manual one.
        prop_assert_eq!(&a, &reg.snapshot());
    }

    #[test]
    fn absorb_is_associative(
        ops_a in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..50),
        ops_b in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..50),
        ops_c in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..50),
    ) {
        let snap = |ops: &[(u8, u64, u64)]| {
            let shard = std::sync::Arc::new(MetricsShard::new());
            for (kind, a, b) in ops {
                apply(&shard, *kind, *a, *b);
            }
            shard.snapshot()
        };
        let (a, b, c) = (snap(&ops_a), snap(&ops_b), snap(&ops_c));
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.absorb(&b);
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        prop_assert_eq!(left, right);
    }
}
