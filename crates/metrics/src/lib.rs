//! # jvmsim-metrics — deterministic internal metrics for the jvmsim stack
//!
//! The paper's headline result is an *overhead* study: Table I exists
//! because SPA's per-event probes cost 1 527 %–41 775 % while IPA's
//! transition-only probes cost 0–20.43 %. This crate lets the reproduction
//! measure that overhead *internally* — attributing every charged cycle to
//! a [`Bucket`] (workload, IPA probe, SPA probe, trace, harness) instead of
//! inferring it from end-to-end subtraction — plus monotonic counters and
//! log2-bucketed cycle histograms for the surrounding machinery.
//!
//! ## Determinism contract
//!
//! Mirrors the trace recorder's contract: snapshots are **byte-identical
//! for any `--jobs` value**. The registry is sharded per VM thread (thread
//! index == shard index, the same identity the PCL clocks use); the hot
//! path touches only fixed-size `AtomicU64` arrays inside one shard — no
//! locks, no heap allocation. [`MetricsRegistry::snapshot`] folds shards in
//! thread-index order, and [`MetricsSnapshot::absorb`] is commutative and
//! associative (counters and histograms sum, gauges take the max), so the
//! merged result is independent of scheduling. A property test pins the
//! merge-order independence.
//!
//! Recording **never charges cycles**: a run with a registry attached
//! produces the same Table I/II numbers as a run without one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, RwLock};

/// Which machinery a charged cycle belongs to — the columns of the
/// overhead-attribution table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bucket {
    /// Application bytecode, JDK natives, and VM bookkeeping on their
    /// behalf — everything an unprofiled run would also pay.
    #[default]
    Workload,
    /// IPA probe machinery: wrapper-native dispatch, transition timestamps,
    /// meter updates, thread-lifecycle event delivery to the IPA agent.
    IpaProbe,
    /// SPA probe machinery: MethodEntry/MethodExit event dispatch, the
    /// reified stack, raw-monitor totals.
    SpaProbe,
    /// Transition-trace recording. The recorder's documented contract is
    /// zero cycle perturbation, so this bucket must stay 0; it exists so
    /// the report *shows* that instead of assuming it.
    Trace,
    /// Launcher machinery: the JNI `Call*Method*` charge the harness pays
    /// to enter each thread's initial method.
    Harness,
    /// ALLOC agent machinery: allocation-event delivery and the agent's
    /// site-table bookkeeping.
    AllocProbe,
    /// LOCK agent machinery: monitor-ledger bookkeeping plus the modeled
    /// blocked cycles charged to waiting threads.
    LockProbe,
    /// C1 quick-compiler time: cycles spent producing tier-1 code (and
    /// half-charged aborted compiles under fault injection).
    C1Compile,
    /// C2 optimizing-compiler time: cycles spent producing tier-2 code
    /// (and half-charged aborted compiles under fault injection).
    C2Compile,
}

impl Bucket {
    /// Number of buckets (array sizing).
    pub const COUNT: usize = 9;

    /// Every bucket, in dense-index order.
    pub const ALL: [Bucket; Bucket::COUNT] = [
        Bucket::Workload,
        Bucket::IpaProbe,
        Bucket::SpaProbe,
        Bucket::Trace,
        Bucket::Harness,
        Bucket::AllocProbe,
        Bucket::LockProbe,
        Bucket::C1Compile,
        Bucket::C2Compile,
    ];

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            Bucket::Workload => 0,
            Bucket::IpaProbe => 1,
            Bucket::SpaProbe => 2,
            Bucket::Trace => 3,
            Bucket::Harness => 4,
            Bucket::AllocProbe => 5,
            Bucket::LockProbe => 6,
            Bucket::C1Compile => 7,
            Bucket::C2Compile => 8,
        }
    }

    /// Stable snake_case label (exporters, table headers).
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Workload => "workload",
            Bucket::IpaProbe => "ipa_probe",
            Bucket::SpaProbe => "spa_probe",
            Bucket::Trace => "trace",
            Bucket::Harness => "harness",
            Bucket::AllocProbe => "alloc_probe",
            Bucket::LockProbe => "lock_probe",
            Bucket::C1Compile => "c1_compile",
            Bucket::C2Compile => "c2_compile",
        }
    }

    fn from_index(i: u8) -> Bucket {
        Bucket::ALL[i as usize]
    }
}

/// Monotonic counter identities. Static: adding one is a code change, so
/// exposition order (and therefore artifact bytes) can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Interpreted bytecode instructions executed.
    InterpInsns,
    /// Method invocations (bytecode and native).
    Invocations,
    /// Native method invocations from bytecode (J2N dispatches).
    NativeCalls,
    /// JNI `Call*Method*` upcalls (N2J dispatches).
    JniUpcalls,
    /// JVMTI events delivered to an agent sink.
    JvmtiEvents,
    /// IPA probe executions (J2N begin/end + intercepted N2J begin/end).
    IpaProbes,
    /// SPA probe executions (MethodEntry/MethodExit callbacks).
    SpaProbes,
    /// Transition-trace events appended (stored in a ring).
    TraceAppends,
    /// Transition-trace events dropped (ring full or injected saturation).
    TraceDrops,
    /// Fault-injector consultations across all sites.
    FaultsConsulted,
    /// Faults actually injected across all sites.
    FaultsInjected,
    /// Suite cells whose execution began.
    CellsStarted,
    /// Suite cells that completed and produced a result.
    CellsCompleted,
    /// Suite cells quarantined with a typed failure.
    CellsQuarantined,
    /// Content-addressed cache lookups that verified and were served.
    CacheHits,
    /// Content-addressed cache lookups that found no entry.
    CacheMisses,
    /// Bytes moved through the content-addressed cache (reads + writes).
    CacheBytes,
    /// Cache entries that failed digest verification and were quarantined.
    CacheQuarantined,
    /// Serve-plane requests admitted (parsed far enough to be accounted).
    ServeAccepted,
    /// Serve-plane requests answered successfully (2xx, including hits).
    ServeServed,
    /// Serve-plane requests shed with `429` because the queue was full.
    ServeShed,
    /// Serve-plane requests that exceeded a deadline (`408`/`504`).
    ServeTimeout,
    /// Serve-plane requests whose connection dropped before the response.
    ServeDropped,
    /// Serve-plane requests rejected with a client/server error (4xx/5xx
    /// other than shed/timeout).
    ServeErrors,
    /// Serve-plane run requests answered from the cell-result cache.
    ServeHits,
    /// ALLOC probe executions (allocation-event callbacks).
    AllocProbes,
    /// LOCK probe executions (instrumented raw-monitor entries).
    LockProbes,
    /// Serve-plane run requests executed through a worker (cache misses
    /// that actually computed a row). Summed across a fleet this counts
    /// rows computed, so a healthy cluster run asserts it equals the
    /// matrix size exactly — zero double-computes.
    ServeRunsExecuted,
    /// Cluster peer-fetch attempts that returned a verified cell entry.
    ClusterPeerHits,
    /// Cluster peer-fetch rounds that exhausted every peer and degraded
    /// to local recompute.
    ClusterPeerMisses,
    /// Cluster peer-fetch retries (attempts beyond the first per peer),
    /// driven by the seeded backoff policy.
    ClusterRetries,
    /// Cluster requests routed past a quarantined owner to its
    /// consistent-hash successor.
    ClusterFailovers,
    /// Cache entries evicted by bounded-store compaction.
    ClusterEvictions,
    /// Serve-plane connections accepted by the event loop over the
    /// daemon's lifetime (keep-alive connections count once).
    ServeConnsAccepted,
    /// Methods promoted to the C1 quick tier (including via OSR).
    C1Compiles,
    /// Methods promoted to the C2 optimizing tier (including via OSR).
    C2Compiles,
    /// On-stack replacements: promotions triggered by a hot loop
    /// back-edge inside a running activation.
    OsrReplacements,
    /// Deoptimizations: compiled frames demoted back to the interpreter
    /// by exception unwinding.
    Deopts,
    /// Tier compiles aborted by the `tier-compile-abort` fault site.
    TierCompileAborts,
}

impl CounterId {
    /// Number of counters (array sizing).
    pub const COUNT: usize = 39;

    /// Every counter, in dense-index order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::InterpInsns,
        CounterId::Invocations,
        CounterId::NativeCalls,
        CounterId::JniUpcalls,
        CounterId::JvmtiEvents,
        CounterId::IpaProbes,
        CounterId::SpaProbes,
        CounterId::TraceAppends,
        CounterId::TraceDrops,
        CounterId::FaultsConsulted,
        CounterId::FaultsInjected,
        CounterId::CellsStarted,
        CounterId::CellsCompleted,
        CounterId::CellsQuarantined,
        CounterId::CacheHits,
        CounterId::CacheMisses,
        CounterId::CacheBytes,
        CounterId::CacheQuarantined,
        CounterId::ServeAccepted,
        CounterId::ServeServed,
        CounterId::ServeShed,
        CounterId::ServeTimeout,
        CounterId::ServeDropped,
        CounterId::ServeErrors,
        CounterId::ServeHits,
        CounterId::AllocProbes,
        CounterId::LockProbes,
        CounterId::ServeRunsExecuted,
        CounterId::ClusterPeerHits,
        CounterId::ClusterPeerMisses,
        CounterId::ClusterRetries,
        CounterId::ClusterFailovers,
        CounterId::ClusterEvictions,
        CounterId::ServeConnsAccepted,
        CounterId::C1Compiles,
        CounterId::C2Compiles,
        CounterId::OsrReplacements,
        CounterId::Deopts,
        CounterId::TierCompileAborts,
    ];

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            CounterId::InterpInsns => 0,
            CounterId::Invocations => 1,
            CounterId::NativeCalls => 2,
            CounterId::JniUpcalls => 3,
            CounterId::JvmtiEvents => 4,
            CounterId::IpaProbes => 5,
            CounterId::SpaProbes => 6,
            CounterId::TraceAppends => 7,
            CounterId::TraceDrops => 8,
            CounterId::FaultsConsulted => 9,
            CounterId::FaultsInjected => 10,
            CounterId::CellsStarted => 11,
            CounterId::CellsCompleted => 12,
            CounterId::CellsQuarantined => 13,
            CounterId::CacheHits => 14,
            CounterId::CacheMisses => 15,
            CounterId::CacheBytes => 16,
            CounterId::CacheQuarantined => 17,
            CounterId::ServeAccepted => 18,
            CounterId::ServeServed => 19,
            CounterId::ServeShed => 20,
            CounterId::ServeTimeout => 21,
            CounterId::ServeDropped => 22,
            CounterId::ServeErrors => 23,
            CounterId::ServeHits => 24,
            CounterId::AllocProbes => 25,
            CounterId::LockProbes => 26,
            CounterId::ServeRunsExecuted => 27,
            CounterId::ClusterPeerHits => 28,
            CounterId::ClusterPeerMisses => 29,
            CounterId::ClusterRetries => 30,
            CounterId::ClusterFailovers => 31,
            CounterId::ClusterEvictions => 32,
            CounterId::ServeConnsAccepted => 33,
            CounterId::C1Compiles => 34,
            CounterId::C2Compiles => 35,
            CounterId::OsrReplacements => 36,
            CounterId::Deopts => 37,
            CounterId::TierCompileAborts => 38,
        }
    }

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::InterpInsns => "interp_insns",
            CounterId::Invocations => "invocations",
            CounterId::NativeCalls => "native_calls",
            CounterId::JniUpcalls => "jni_upcalls",
            CounterId::JvmtiEvents => "jvmti_events",
            CounterId::IpaProbes => "ipa_probes",
            CounterId::SpaProbes => "spa_probes",
            CounterId::TraceAppends => "trace_appends",
            CounterId::TraceDrops => "trace_drops",
            CounterId::FaultsConsulted => "faults_consulted",
            CounterId::FaultsInjected => "faults_injected",
            CounterId::CellsStarted => "cells_started",
            CounterId::CellsCompleted => "cells_completed",
            CounterId::CellsQuarantined => "cells_quarantined",
            CounterId::CacheHits => "cache_hits",
            CounterId::CacheMisses => "cache_misses",
            CounterId::CacheBytes => "cache_bytes",
            CounterId::CacheQuarantined => "cache_quarantined",
            CounterId::ServeAccepted => "serve_accepted",
            CounterId::ServeServed => "serve_served",
            CounterId::ServeShed => "serve_shed",
            CounterId::ServeTimeout => "serve_timeout",
            CounterId::ServeDropped => "serve_dropped",
            CounterId::ServeErrors => "serve_errors",
            CounterId::ServeHits => "serve_hits",
            CounterId::AllocProbes => "alloc_probes",
            CounterId::LockProbes => "lock_probes",
            CounterId::ServeRunsExecuted => "serve_runs_executed",
            CounterId::ClusterPeerHits => "cluster_peer_hits",
            CounterId::ClusterPeerMisses => "cluster_peer_misses",
            CounterId::ClusterRetries => "cluster_retries",
            CounterId::ClusterFailovers => "cluster_failovers",
            CounterId::ClusterEvictions => "cluster_evictions",
            CounterId::ServeConnsAccepted => "serve_conns_accepted",
            CounterId::C1Compiles => "c1_compiles",
            CounterId::C2Compiles => "c2_compiles",
            CounterId::OsrReplacements => "osr_replacements",
            CounterId::Deopts => "deopts",
            CounterId::TierCompileAborts => "tier_compile_aborts",
        }
    }
}

/// Gauge identities. Gauges merge by `max`, so they suit high-water marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// VM threads created (high-water mark).
    Threads,
    /// Trace-ring capacity in slots.
    TraceCapacity,
    /// Deepest the serve-plane admission queue ever got (jobs queued at
    /// the moment of a successful enqueue, high-water mark).
    ServeQueueDepthHighwater,
    /// Most connections the event loop ever held open at once
    /// (high-water mark) — the C10k headline number.
    ServeOpenConnsHighwater,
}

impl GaugeId {
    /// Number of gauges (array sizing).
    pub const COUNT: usize = 4;

    /// Every gauge, in dense-index order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::Threads,
        GaugeId::TraceCapacity,
        GaugeId::ServeQueueDepthHighwater,
        GaugeId::ServeOpenConnsHighwater,
    ];

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            GaugeId::Threads => 0,
            GaugeId::TraceCapacity => 1,
            GaugeId::ServeQueueDepthHighwater => 2,
            GaugeId::ServeOpenConnsHighwater => 3,
        }
    }

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::Threads => "threads",
            GaugeId::TraceCapacity => "trace_capacity",
            GaugeId::ServeQueueDepthHighwater => "serve_queue_depth_highwater",
            GaugeId::ServeOpenConnsHighwater => "serve_open_conns_highwater",
        }
    }
}

/// Histogram identities (log2-bucketed cycle distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramId {
    /// Self-timed cycles of one IPA probe body.
    IpaProbeCycles,
    /// Self-timed cycles of one SPA probe body.
    SpaProbeCycles,
    /// Total cycles of one suite cell.
    CellCycles,
    /// Wall-clock latency of one serve-plane request, in microseconds.
    /// This is the only wall-clock quantity in the registry; it exists for
    /// operators and never feeds artifact bytes.
    ServeLatencyMicros,
    /// Self-timed cycles of one ALLOC probe body.
    AllocProbeCycles,
    /// Self-timed cycles of one LOCK probe body.
    LockProbeCycles,
    /// Modeled cycles a served request spent waiting in the admission
    /// queue (the span plane's `queue_wait` stage, one observation per
    /// admitted request).
    ServeQueueWaitCycles,
}

impl HistogramId {
    /// Number of histograms (array sizing).
    pub const COUNT: usize = 7;

    /// Every histogram, in dense-index order.
    pub const ALL: [HistogramId; HistogramId::COUNT] = [
        HistogramId::IpaProbeCycles,
        HistogramId::SpaProbeCycles,
        HistogramId::CellCycles,
        HistogramId::ServeLatencyMicros,
        HistogramId::AllocProbeCycles,
        HistogramId::LockProbeCycles,
        HistogramId::ServeQueueWaitCycles,
    ];

    /// Dense index in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            HistogramId::IpaProbeCycles => 0,
            HistogramId::SpaProbeCycles => 1,
            HistogramId::CellCycles => 2,
            HistogramId::ServeLatencyMicros => 3,
            HistogramId::AllocProbeCycles => 4,
            HistogramId::LockProbeCycles => 5,
            HistogramId::ServeQueueWaitCycles => 6,
        }
    }

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::IpaProbeCycles => "ipa_probe_cycles",
            HistogramId::SpaProbeCycles => "spa_probe_cycles",
            HistogramId::CellCycles => "cell_cycles",
            HistogramId::ServeLatencyMicros => "serve_latency_micros",
            HistogramId::AllocProbeCycles => "alloc_probe_cycles",
            HistogramId::LockProbeCycles => "lock_probe_cycles",
            HistogramId::ServeQueueWaitCycles => "serve_queue_wait_cycles",
        }
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index of `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of histogram bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// One thread's (or the global) metric storage: fixed atomic arrays only,
/// so recording is lock-free and allocation-free.
#[derive(Debug)]
pub struct MetricsShard {
    counters: [AtomicU64; CounterId::COUNT],
    gauges: [AtomicU64; GaugeId::COUNT],
    histograms: [Histogram; HistogramId::COUNT],
    bucket_cycles: [AtomicU64; Bucket::COUNT],
    /// The bucket currently receiving mirrored cycle charges.
    current_bucket: AtomicU8,
}

impl Default for MetricsShard {
    fn default() -> Self {
        MetricsShard::new()
    }
}

impl MetricsShard {
    /// A zeroed shard, attributing to [`Bucket::Workload`].
    pub fn new() -> Self {
        MetricsShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| Histogram::new()),
            bucket_cycles: std::array::from_fn(|_| AtomicU64::new(0)),
            current_bucket: AtomicU8::new(Bucket::Workload.index() as u8),
        }
    }

    /// Increment counter `id` by one.
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increment counter `id` by `n`.
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Raise gauge `id` to at least `v` (merge semantics are `max`).
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.gauges[id.index()].fetch_max(v, Ordering::Relaxed);
    }

    /// Record one observation of `v` into histogram `id`.
    pub fn observe(&self, id: HistogramId, v: u64) {
        self.histograms[id.index()].observe(v);
    }

    /// Mirror a cycle charge into the currently attributed bucket. Called
    /// by PCL on every clock charge; must stay branch-light.
    pub fn charge(&self, cycles: u64) {
        let b = self.current_bucket.load(Ordering::Relaxed) as usize;
        self.bucket_cycles[b].fetch_add(cycles, Ordering::Relaxed);
    }

    /// The bucket currently receiving charges.
    pub fn current_bucket(&self) -> Bucket {
        Bucket::from_index(self.current_bucket.load(Ordering::Relaxed))
    }

    /// Attribute charges to `bucket` until the guard drops (scopes nest:
    /// dropping restores the previous attribution).
    pub fn enter(self: &Arc<Self>, bucket: Bucket) -> BucketGuard {
        let prev = self
            .current_bucket
            .swap(bucket.index() as u8, Ordering::Relaxed);
        BucketGuard {
            shard: Arc::clone(self),
            prev,
        }
    }

    /// Freeze this shard's contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
            bucket_cycles: std::array::from_fn(|i| self.bucket_cycles[i].load(Ordering::Relaxed)),
            histograms: std::array::from_fn(|h| HistogramSnapshot {
                buckets: std::array::from_fn(|i| {
                    self.histograms[h].buckets[i].load(Ordering::Relaxed)
                }),
                sum: self.histograms[h].sum.load(Ordering::Relaxed),
                count: self.histograms[h].count.load(Ordering::Relaxed),
            }),
        }
    }
}

/// RAII bucket attribution scope (see [`MetricsShard::enter`]).
#[derive(Debug)]
pub struct BucketGuard {
    shard: Arc<MetricsShard>,
    prev: u8,
}

impl Drop for BucketGuard {
    fn drop(&mut self) {
        self.shard
            .current_bucket
            .store(self.prev, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RegistryInner {
    /// Per-thread shards, indexed by VM thread index (== PCL clock index).
    shards: RwLock<Vec<Arc<MetricsShard>>>,
    /// Shard for machinery with no thread context (trace recorder totals,
    /// fault-plane totals, suite-cell lifecycle). Totals sum over shards,
    /// so *which* shard a count lands in never changes the snapshot.
    global: Arc<MetricsShard>,
    /// Which bucket the attached agent's machinery belongs to.
    agent_bucket: AtomicU8,
}

/// Handle to one cell's metric registry. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with no per-thread shards yet.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                shards: RwLock::new(Vec::new()),
                global: Arc::new(MetricsShard::new()),
                agent_bucket: AtomicU8::new(Bucket::Workload.index() as u8),
            }),
        }
    }

    fn read_shards(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<MetricsShard>>> {
        self.inner.shards.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The shard for VM thread `index`, created on demand (registration is
    /// the only locking path; recording never takes this lock).
    pub fn shard(&self, index: usize) -> Arc<MetricsShard> {
        if let Some(s) = self.read_shards().get(index) {
            return Arc::clone(s);
        }
        let mut w = self.inner.shards.write().unwrap_or_else(|e| e.into_inner());
        while w.len() <= index {
            w.push(Arc::new(MetricsShard::new()));
        }
        Arc::clone(&w[index])
    }

    /// The global (thread-context-free) shard.
    pub fn global(&self) -> Arc<MetricsShard> {
        Arc::clone(&self.inner.global)
    }

    /// Declare which bucket the attached agent's machinery belongs to
    /// ([`Bucket::IpaProbe`], [`Bucket::SpaProbe`], or the default
    /// [`Bucket::Workload`] when no agent is attached).
    pub fn set_agent_bucket(&self, bucket: Bucket) {
        self.inner
            .agent_bucket
            .store(bucket.index() as u8, Ordering::Relaxed);
    }

    /// The declared agent bucket.
    pub fn agent_bucket(&self) -> Bucket {
        Bucket::from_index(self.inner.agent_bucket.load(Ordering::Relaxed))
    }

    /// Fold every shard — per-thread shards in thread-index order, then the
    /// global shard — into one snapshot. Because [`MetricsSnapshot::absorb`]
    /// is commutative and associative, the result is a pure function of
    /// what was recorded, independent of scheduling or fold order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for shard in self.read_shards().iter() {
            out.absorb(&shard.snapshot());
        }
        out.absorb(&self.inner.global.snapshot());
        out
    }
}

/// Frozen contents of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (bucket-wise sums). Sums wrap on overflow,
    /// matching the wrapping semantics of the underlying atomic adds.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }
}

/// Frozen registry contents: plain data, `Eq`, and mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; CounterId::COUNT],
    gauges: [u64; GaugeId::COUNT],
    bucket_cycles: [u64; Bucket::COUNT],
    histograms: [HistogramSnapshot; HistogramId::COUNT],
}

// Manual impl: `derive(Default)` caps arrays at 32 elements and
// `CounterId::COUNT` has outgrown that.
impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; CounterId::COUNT],
            gauges: [0; GaugeId::COUNT],
            bucket_cycles: [0; Bucket::COUNT],
            histograms: Default::default(),
        }
    }
}

impl MetricsSnapshot {
    /// Value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Value of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.index()]
    }

    /// Cycles attributed to `bucket`.
    pub fn bucket_cycles(&self, bucket: Bucket) -> u64 {
        self.bucket_cycles[bucket.index()]
    }

    /// Sum over all buckets. When PCL mirroring is attached this equals
    /// `Pcl::total_cycles()` exactly (every charge path mirrors).
    pub fn total_cycles(&self) -> u64 {
        self.bucket_cycles
            .iter()
            .fold(0u64, |a, b| a.wrapping_add(*b))
    }

    /// Cycles attributed to any non-workload bucket (agent + harness
    /// machinery) — the numerator of the internal overhead percentage.
    pub fn overhead_cycles(&self) -> u64 {
        self.total_cycles()
            .saturating_sub(self.bucket_cycles(Bucket::Workload))
    }

    /// Frozen histogram `id`.
    pub fn histogram(&self, id: HistogramId) -> &HistogramSnapshot {
        &self.histograms[id.index()]
    }

    /// Fold `other` into `self`: counters, cycles and histograms sum;
    /// gauges take the max. Commutative and associative, so any merge
    /// order over any sharding yields the same snapshot.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a = (*a).max(*b);
        }
        for (a, b) in self
            .bucket_cycles
            .iter_mut()
            .zip(other.bucket_cycles.iter())
        {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            a.absorb(b);
        }
    }
}

/// One labelled snapshot in an export set (one suite cell).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsEntry {
    /// Workload name (`benchmark` label).
    pub benchmark: String,
    /// Agent column label (`agent` label): `original` / `spa` / `ipa`.
    pub agent: String,
    /// The cell's merged snapshot.
    pub snapshot: MetricsSnapshot,
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `entries` in the Prometheus text exposition format. Entry order
/// is preserved; everything else is a pure function of the snapshots, so
/// the output is byte-identical across runs.
pub fn render_prometheus(entries: &[MetricsEntry]) -> String {
    let mut out = String::new();
    for id in CounterId::ALL {
        let _ = writeln!(
            out,
            "# HELP jvmsim_{}_total {} (monotonic)",
            id.name(),
            id.name()
        );
        let _ = writeln!(out, "# TYPE jvmsim_{}_total counter", id.name());
        for e in entries {
            let _ = writeln!(
                out,
                "jvmsim_{}_total{{benchmark=\"{}\",agent=\"{}\"}} {}",
                id.name(),
                escape_label(&e.benchmark),
                escape_label(&e.agent),
                e.snapshot.counter(id)
            );
        }
    }
    for id in GaugeId::ALL {
        let _ = writeln!(
            out,
            "# HELP jvmsim_{} {} (high-water mark)",
            id.name(),
            id.name()
        );
        let _ = writeln!(out, "# TYPE jvmsim_{} gauge", id.name());
        for e in entries {
            let _ = writeln!(
                out,
                "jvmsim_{}{{benchmark=\"{}\",agent=\"{}\"}} {}",
                id.name(),
                escape_label(&e.benchmark),
                escape_label(&e.agent),
                e.snapshot.gauge(id)
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP jvmsim_cycles_total virtual cycles by attribution bucket"
    );
    let _ = writeln!(out, "# TYPE jvmsim_cycles_total counter");
    for e in entries {
        for b in Bucket::ALL {
            let _ = writeln!(
                out,
                "jvmsim_cycles_total{{benchmark=\"{}\",agent=\"{}\",bucket=\"{}\"}} {}",
                escape_label(&e.benchmark),
                escape_label(&e.agent),
                b.name(),
                e.snapshot.bucket_cycles(b)
            );
        }
    }
    for id in HistogramId::ALL {
        let _ = writeln!(
            out,
            "# HELP jvmsim_{} log2-bucketed cycle distribution",
            id.name()
        );
        let _ = writeln!(out, "# TYPE jvmsim_{} histogram", id.name());
        for e in entries {
            let labels = format!(
                "benchmark=\"{}\",agent=\"{}\"",
                escape_label(&e.benchmark),
                escape_label(&e.agent)
            );
            let h = e.snapshot.histogram(id);
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "jvmsim_{}_bucket{{{},le=\"{}\"}} {}",
                    id.name(),
                    labels,
                    bucket_upper_bound(i),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "jvmsim_{}_bucket{{{},le=\"+Inf\"}} {}",
                id.name(),
                labels,
                h.count
            );
            let _ = writeln!(out, "jvmsim_{}_sum{{{}}} {}", id.name(), labels, h.sum);
            let _ = writeln!(out, "jvmsim_{}_count{{{}}} {}", id.name(), labels, h.count);
        }
    }
    out
}

/// Render `entries` as stable, hand-rolled JSON (fixed key order, entry
/// order preserved; byte-identical across runs).
pub fn render_json(entries: &[MetricsEntry]) -> String {
    let mut out = String::from("{\n  \"entries\": [");
    for (n, e) in entries.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"benchmark\": \"{}\", \"agent\": \"{}\"",
            escape_json(&e.benchmark),
            escape_json(&e.agent)
        );
        out.push_str(", \"counters\": {");
        for (i, id) in CounterId::ALL.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(out, "{sep}\"{}\": {}", id.name(), e.snapshot.counter(*id));
        }
        out.push_str("}, \"gauges\": {");
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(out, "{sep}\"{}\": {}", id.name(), e.snapshot.gauge(*id));
        }
        out.push_str("}, \"cycles\": {");
        for (i, b) in Bucket::ALL.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{sep}\"{}\": {}",
                b.name(),
                e.snapshot.bucket_cycles(*b)
            );
        }
        let _ = write!(out, ", \"total\": {}", e.snapshot.total_cycles());
        out.push_str("}, \"histograms\": {");
        for (i, id) in HistogramId::ALL.iter().enumerate() {
            let sep = if i > 0 { ", " } else { "" };
            let h = e.snapshot.histogram(*id);
            let _ = write!(
                out,
                "{sep}\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                id.name(),
                h.count,
                h.sum
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{b}, {c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 7, 8, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} over bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn enum_indices_dense_and_names_unique() {
        fn check<T: Copy>(all: &[T], index: impl Fn(T) -> usize, name: impl Fn(T) -> &'static str) {
            let mut seen = vec![false; all.len()];
            let mut names = std::collections::HashSet::new();
            for &x in all {
                assert!(!seen[index(x)]);
                seen[index(x)] = true;
                assert!(names.insert(name(x)));
            }
        }
        check(&Bucket::ALL, Bucket::index, Bucket::name);
        check(&CounterId::ALL, CounterId::index, CounterId::name);
        check(&GaugeId::ALL, GaugeId::index, GaugeId::name);
        check(&HistogramId::ALL, HistogramId::index, HistogramId::name);
    }

    #[test]
    fn bucket_guard_nests_and_restores() {
        let shard = Arc::new(MetricsShard::new());
        shard.charge(10);
        {
            let _g = shard.enter(Bucket::IpaProbe);
            shard.charge(5);
            {
                let _h = shard.enter(Bucket::Harness);
                shard.charge(2);
            }
            assert_eq!(shard.current_bucket(), Bucket::IpaProbe);
            shard.charge(1);
        }
        assert_eq!(shard.current_bucket(), Bucket::Workload);
        shard.charge(3);
        let s = shard.snapshot();
        assert_eq!(s.bucket_cycles(Bucket::Workload), 13);
        assert_eq!(s.bucket_cycles(Bucket::IpaProbe), 6);
        assert_eq!(s.bucket_cycles(Bucket::Harness), 2);
        assert_eq!(s.total_cycles(), 21);
        assert_eq!(s.overhead_cycles(), 8);
    }

    #[test]
    fn registry_shards_grow_and_snapshot_folds() {
        let reg = MetricsRegistry::new();
        let s2 = reg.shard(2); // indices 0 and 1 materialize too
        let s0 = reg.shard(0);
        assert!(Arc::ptr_eq(&reg.shard(2), &s2));
        s0.incr(CounterId::InterpInsns);
        s2.add(CounterId::InterpInsns, 4);
        s2.gauge_max(GaugeId::Threads, 3);
        s0.gauge_max(GaugeId::Threads, 7);
        reg.global().incr(CounterId::TraceAppends);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(CounterId::InterpInsns), 5);
        assert_eq!(snap.counter(CounterId::TraceAppends), 1);
        assert_eq!(snap.gauge(GaugeId::Threads), 7);
    }

    #[test]
    fn histogram_observations_round_trip() {
        let shard = Arc::new(MetricsShard::new());
        for v in [0u64, 1, 100, 100, 5000] {
            shard.observe(HistogramId::IpaProbeCycles, v);
        }
        let s = shard.snapshot();
        let h = s.histogram(HistogramId::IpaProbeCycles);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 5_201);
        assert_eq!(h.buckets[bucket_index(0)], 1);
        assert_eq!(h.buckets[bucket_index(100)], 2);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn agent_bucket_setting() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.agent_bucket(), Bucket::Workload);
        reg.set_agent_bucket(Bucket::SpaProbe);
        assert_eq!(reg.agent_bucket(), Bucket::SpaProbe);
    }

    #[test]
    fn absorb_is_commutative_on_fixed_values() {
        let a = {
            let s = MetricsShard::new();
            s.add(CounterId::Invocations, 3);
            s.gauge_max(GaugeId::Threads, 2);
            s.observe(HistogramId::CellCycles, 77);
            s.charge(40);
            s.snapshot()
        };
        let b = {
            let s = MetricsShard::new();
            s.add(CounterId::Invocations, 9);
            s.gauge_max(GaugeId::Threads, 5);
            s.observe(HistogramId::CellCycles, 3);
            s.charge(2);
            s.snapshot()
        };
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter(CounterId::Invocations), 12);
        assert_eq!(ab.gauge(GaugeId::Threads), 5);
        assert_eq!(ab.bucket_cycles(Bucket::Workload), 42);
        let empty = MetricsSnapshot::default();
        let mut ae = a.clone();
        ae.absorb(&empty);
        assert_eq!(ae, a, "empty snapshot is the merge identity");
    }

    #[test]
    fn exporters_emit_stable_labelled_lines() {
        let shard = MetricsShard::new();
        shard.add(CounterId::JniUpcalls, 7);
        shard.charge(123);
        shard.observe(HistogramId::IpaProbeCycles, 55);
        let entries = vec![MetricsEntry {
            benchmark: "compress".into(),
            agent: "ipa".into(),
            snapshot: shard.snapshot(),
        }];
        let prom = render_prometheus(&entries);
        assert!(prom.contains("# TYPE jvmsim_jni_upcalls_total counter"));
        assert!(prom.contains("jvmsim_jni_upcalls_total{benchmark=\"compress\",agent=\"ipa\"} 7"));
        assert!(prom.contains(
            "jvmsim_cycles_total{benchmark=\"compress\",agent=\"ipa\",bucket=\"workload\"} 123"
        ));
        assert!(prom.contains(
            "jvmsim_ipa_probe_cycles_bucket{benchmark=\"compress\",agent=\"ipa\",le=\"63\"} 1"
        ));
        assert!(
            prom.contains("jvmsim_ipa_probe_cycles_count{benchmark=\"compress\",agent=\"ipa\"} 1")
        );
        let json = render_json(&entries);
        assert!(json.contains("\"benchmark\": \"compress\""));
        assert!(json.contains("\"jni_upcalls\": 7"));
        assert!(json.contains("\"workload\": 123"));
        assert!(json.contains("\"total\": 123"));
        // Rendering the same entries twice is byte-identical.
        assert_eq!(prom, render_prometheus(&entries));
        assert_eq!(json, render_json(&entries));
    }
}
