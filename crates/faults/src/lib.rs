//! jvmsim-faults — a seeded, fully deterministic fault-injection plane.
//!
//! The paper's IPA design (§IV) is only correct because its
//! `J2N_Begin()`/`J2N_End()` brackets survive *abnormal* control flow:
//! exceptions unwinding out of prefixed native methods through the
//! `try/finally` wrapper, and pending JNI exceptions crossing the
//! intercepted `Call<Type>Method` table. This crate supplies the adversary:
//! a [`FaultInjector`] the VM, JVMTI shim, trace recorder, and suite driver
//! consult at well-defined hook points, plus a [`TransitionLedger`] that
//! pins the accounting invariants (every `J2N_Begin` matched by a
//! `J2N_End`, N2J nesting depth returning to zero per thread) the agents
//! must uphold while the faults fire.
//!
//! Everything is deterministic: the decision at the *n*-th consultation of
//! a site is a pure function of `(seed, site, n)`, so two runs with the
//! same plan inject exactly the same schedule regardless of wall-clock
//! time, and a failing chaos seed reproduces byte-for-byte.
//!
//! This crate sits at the bottom of the workspace dependency stack and is
//! deliberately dependency-free; threads are identified by raw `usize`
//! indices so it needs no knowledge of the VM's `ThreadId`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64 — the mixing function behind every injection decision.
///
/// Chosen because it is a bijection on `u64` with good avalanche behaviour
/// and needs no state beyond its input, which keeps per-site decisions a
/// pure function of `(seed, site, consultation index)`.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The hook points where a fault can fire. Each consumer consults exactly
/// the sites it owns; the injector tracks consultations and injections per
/// site so a chaos run can report coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Force an exception to unwind out of a (possibly prefixed) native
    /// method just as it would otherwise have returned normally — the
    /// paper's `try/finally` wrapper semantics must keep J2N accounting
    /// balanced (checked by the interpreter's `invoke_native`).
    NativeUnwind,
    /// Materialise a pending exception at the return of an intercepted JNI
    /// `Call<Type>Method` function, after the N2J bracket has closed
    /// (checked by `JniEnv::call`).
    NativePendingThrow,
    /// Abrupt asynchronous thread death: `java/lang/ThreadDeath` thrown at
    /// an interpreter safepoint poll.
    ThreadDeath,
    /// Truncate the classfile byte stream handed to the decoder at load
    /// time; the VM must degrade to a Java-level linkage error.
    ClassBytes,
    /// Force the trace ring to drop an event as if saturated; the
    /// `recorded + dropped == appended` ledger must still balance.
    TraceSaturation,
    /// Fail an artifact/exporter write; the driver must record the failure
    /// instead of panicking.
    ExporterWrite,
    /// Per-thread clock stall: a timestamp read observes an anomalously
    /// late clock (extra cycles charged before the read).
    ClockStall,
    /// Per-thread clock step-back: a timestamp read observes an earlier
    /// instant than the previous read; meters must saturate, not underflow.
    ClockStepBack,
    /// Flip a byte of a content-addressed cache entry as it is read back;
    /// digest verification must catch the poison, quarantine the entry and
    /// recompute — a corrupted cache may cost time, never correctness.
    CacheCorrupt,
    /// A serve-plane client stalls mid-request: the daemon's read loop
    /// observes a request that never completes within its deadline and must
    /// answer `408` and close the connection, counting the request exactly
    /// once in the admission ledger.
    ServeSlowRead,
    /// The connection drops just before the daemon writes its response; the
    /// request must still be accounted (accepted + dropped) and never
    /// double-executed or double-counted.
    ServeConnDrop,
    /// The ALLOC agent's allocation-site table refuses a new site as if
    /// full; the record must be routed to the overflow bin so
    /// `total_objects == Σ site objects + overflow` still balances.
    AllocSiteOverflow,
    /// A LOCK-agent contention record is dropped as if the monitor ledger
    /// were corrupted; the agent must count the discard so
    /// `observed == recorded + discarded` and `contended ≤ entries` hold.
    MonitorLedgerCorrupt,
    /// A cluster peer-fetch connection drops before the entry arrives; the
    /// fetching node must fall through its retry budget to the next tier
    /// (another peer, then local recompute) without ever serving a partial
    /// entry.
    PeerConnDrop,
    /// A cluster peer-fetch read stalls past its per-attempt timeout; the
    /// seeded backoff policy must retry or degrade, never hang the
    /// requesting worker.
    PeerSlowRead,
    /// A fleet member crashes outright mid-run; the cluster drill kills the
    /// daemon at this consultation, and routing must fail over to the
    /// consistent-hash successor while every surviving ledger stays
    /// balanced.
    MemberCrash,
    /// The span plane's collection ring refuses a request's span batch as
    /// if saturated; the plane must count every dropped record so
    /// `appended + dropped` still covers all finished spans and drill
    /// invariants are checked only over survivors.
    SpanBufferSaturation,
    /// A tier compile (C1 or C2) aborts partway — the compiler thread is
    /// modeled as bailing out. Half the compile cost has already been
    /// charged to the compile bucket; the method must stay at its current
    /// tier with its invocation counter reset, and the bucket ledger must
    /// still partition `total_cycles` exactly.
    TierCompileAbort,
}

impl FaultSite {
    /// Number of distinct sites.
    pub const COUNT: usize = 18;

    /// Every site, in a fixed order (indexing matches [`FaultSite::index`]).
    ///
    /// New sites are appended, never inserted: per-site decision streams are
    /// salted by index, so appending leaves every existing schedule (and
    /// every cached cell entry recording site tallies) untouched.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::NativeUnwind,
        FaultSite::NativePendingThrow,
        FaultSite::ThreadDeath,
        FaultSite::ClassBytes,
        FaultSite::TraceSaturation,
        FaultSite::ExporterWrite,
        FaultSite::ClockStall,
        FaultSite::ClockStepBack,
        FaultSite::CacheCorrupt,
        FaultSite::ServeSlowRead,
        FaultSite::ServeConnDrop,
        FaultSite::AllocSiteOverflow,
        FaultSite::MonitorLedgerCorrupt,
        FaultSite::PeerConnDrop,
        FaultSite::PeerSlowRead,
        FaultSite::MemberCrash,
        FaultSite::SpanBufferSaturation,
        FaultSite::TierCompileAbort,
    ];

    /// Stable index of this site into rate/counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            FaultSite::NativeUnwind => 0,
            FaultSite::NativePendingThrow => 1,
            FaultSite::ThreadDeath => 2,
            FaultSite::ClassBytes => 3,
            FaultSite::TraceSaturation => 4,
            FaultSite::ExporterWrite => 5,
            FaultSite::ClockStall => 6,
            FaultSite::ClockStepBack => 7,
            FaultSite::CacheCorrupt => 8,
            FaultSite::ServeSlowRead => 9,
            FaultSite::ServeConnDrop => 10,
            FaultSite::AllocSiteOverflow => 11,
            FaultSite::MonitorLedgerCorrupt => 12,
            FaultSite::PeerConnDrop => 13,
            FaultSite::PeerSlowRead => 14,
            FaultSite::MemberCrash => 15,
            FaultSite::SpanBufferSaturation => 16,
            FaultSite::TierCompileAbort => 17,
        }
    }

    /// Short human-readable label (used in chaos reports).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            FaultSite::NativeUnwind => "native-unwind",
            FaultSite::NativePendingThrow => "pending-throw",
            FaultSite::ThreadDeath => "thread-death",
            FaultSite::ClassBytes => "class-bytes",
            FaultSite::TraceSaturation => "trace-saturation",
            FaultSite::ExporterWrite => "exporter-write",
            FaultSite::ClockStall => "clock-stall",
            FaultSite::ClockStepBack => "clock-step-back",
            FaultSite::CacheCorrupt => "cache-corrupt",
            FaultSite::ServeSlowRead => "serve-slow-read",
            FaultSite::ServeConnDrop => "serve-conn-drop",
            FaultSite::AllocSiteOverflow => "alloc-site-overflow",
            FaultSite::MonitorLedgerCorrupt => "monitor-ledger-corrupt",
            FaultSite::PeerConnDrop => "peer-conn-drop",
            FaultSite::PeerSlowRead => "peer-slow-read",
            FaultSite::MemberCrash => "member-crash",
            FaultSite::SpanBufferSaturation => "span-buffer-saturation",
            FaultSite::TierCompileAbort => "tier-compile-abort",
        }
    }

    /// Per-site salt mixed into every decision so sites with equal rates
    /// do not fire in lockstep.
    #[inline]
    const fn salt(self) -> u64 {
        (self.index() as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Denominator of all injection rates: rates are expressed in parts per
/// million of consultations.
pub const PPM: u32 = 1_000_000;

/// A fault schedule: seed plus per-site rates. `Copy` so suite configs
/// embedding a plan stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed from which every injection decision is derived.
    pub seed: u64,
    /// Per-site injection rates in parts per million, indexed by
    /// [`FaultSite::index`].
    pub rates_ppm: [u32; FaultSite::COUNT],
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    #[must_use]
    pub const fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates_ppm: [0; FaultSite::COUNT],
        }
    }

    /// Set one site's rate (parts per million, clamped to [`PPM`]).
    #[must_use]
    pub const fn with_rate(mut self, site: FaultSite, ppm: u32) -> FaultPlan {
        self.rates_ppm[site.index()] = if ppm > PPM { PPM } else { ppm };
        self
    }

    /// The default chaos mix used by `jprof chaos`: every site armed, at
    /// rates tuned so a single S1 suite cell sees a handful of injections
    /// per site class without drowning in them.
    #[must_use]
    pub const fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rate(FaultSite::NativeUnwind, 8_000)
            .with_rate(FaultSite::NativePendingThrow, 8_000)
            .with_rate(FaultSite::ThreadDeath, 300)
            .with_rate(FaultSite::ClassBytes, 15_000)
            .with_rate(FaultSite::TraceSaturation, 20_000)
            .with_rate(FaultSite::ExporterWrite, 250_000)
            .with_rate(FaultSite::ClockStall, 10_000)
            .with_rate(FaultSite::ClockStepBack, 10_000)
            .with_rate(FaultSite::CacheCorrupt, 150_000)
            .with_rate(FaultSite::ServeSlowRead, 60_000)
            .with_rate(FaultSite::ServeConnDrop, 60_000)
            .with_rate(FaultSite::AllocSiteOverflow, 20_000)
            .with_rate(FaultSite::MonitorLedgerCorrupt, 20_000)
            .with_rate(FaultSite::PeerConnDrop, 60_000)
            .with_rate(FaultSite::PeerSlowRead, 60_000)
            .with_rate(FaultSite::MemberCrash, 40_000)
            .with_rate(FaultSite::SpanBufferSaturation, 20_000)
            .with_rate(FaultSite::TierCompileAbort, 30_000)
    }

    /// True if every rate is zero (the plan can never inject).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.rates_ppm.iter().all(|&r| r == 0)
    }
}

/// The injector consulted at each hook point.
///
/// Consumers call [`FaultInjector::inject`] with their site; `None` means
/// "no fault here", `Some(entropy)` means "fault fires" and hands back 64
/// deterministic bits the site can use to size the fault (cycles to stall,
/// bytes to truncate, …). The disabled injector answers `None` without
/// touching any atomics, so an un-armed VM pays one branch per hook.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    enabled: bool,
    consulted: [AtomicU64; FaultSite::COUNT],
    injected: [AtomicU64; FaultSite::COUNT],
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            enabled: !plan.is_inert(),
            plan,
            consulted: Default::default(),
            injected: Default::default(),
        }
    }

    /// The always-off injector; [`FaultInjector::inject`] is a single
    /// branch. This is what a VM holds when no chaos is requested.
    #[must_use]
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::new(0))
    }

    /// Whether this injector can ever fire.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Consult the plane at `site`. Returns `Some(entropy)` iff the fault
    /// fires at this consultation; the decision depends only on
    /// `(plan.seed, site, consultation index)`.
    #[inline]
    pub fn inject(&self, site: FaultSite) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let rate = self.plan.rates_ppm[site.index()];
        if rate == 0 {
            return None;
        }
        let n = self.consulted[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.plan.seed ^ site.salt() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if h % u64::from(PPM) < u64::from(rate) {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(splitmix64(h))
        } else {
            None
        }
    }

    /// How many times `site` has been consulted.
    #[must_use]
    pub fn consulted(&self, site: FaultSite) -> u64 {
        self.consulted[site.index()].load(Ordering::Relaxed)
    }

    /// How many times `site` actually fired.
    #[must_use]
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// `(site, consulted, injected)` for every site, in [`FaultSite::ALL`]
    /// order — what a chaos run prints as its coverage table.
    #[must_use]
    pub fn summary(&self) -> Vec<(FaultSite, u64, u64)> {
        FaultSite::ALL
            .iter()
            .map(|&s| (s, self.consulted(s), self.injected(s)))
            .collect()
    }
}

/// A bytecode↔native transition event fed to the [`TransitionLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// Entering native code from bytecode (`J2N_Begin`).
    J2nBegin,
    /// Returning from native code to bytecode (`J2N_End`), normal or
    /// exceptional.
    J2nEnd,
    /// A JNI `Call<Type>Method` re-entering bytecode (`N2J_Begin`).
    N2jBegin,
    /// That call returning to native code (`N2J_End`), normal or
    /// exceptional.
    N2jEnd,
}

/// Per-thread transition tallies.
#[derive(Debug, Default, Clone, Copy)]
struct ThreadTally {
    j2n_begins: u64,
    j2n_ends: u64,
    n2j_begins: u64,
    n2j_ends: u64,
    j2n_depth: i64,
    n2j_depth: i64,
    depth_went_negative: bool,
}

/// One invariant violation found by [`TransitionLedger::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerViolation {
    /// Raw thread index the violation was observed on.
    pub thread: usize,
    /// What went wrong, in words.
    pub what: String,
}

impl std::fmt::Display for LedgerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread {}: {}", self.thread, self.what)
    }
}

/// Aggregate transition counts over all threads (the chaos report line).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LedgerTotals {
    /// Total `J2N_Begin` events.
    pub j2n_begins: u64,
    /// Total `J2N_End` events.
    pub j2n_ends: u64,
    /// Total `N2J_Begin` events.
    pub n2j_begins: u64,
    /// Total `N2J_End` events.
    pub n2j_ends: u64,
}

/// The accounting-invariant tracker: counts every transition bracket per
/// thread and verifies, after a run, that the paper's `try/finally`
/// semantics held — begins match ends and nesting depth returned to zero
/// on every thread, no matter what the injector threw at the run.
#[derive(Debug, Default)]
pub struct TransitionLedger {
    threads: Mutex<Vec<ThreadTally>>,
    saw_negative: AtomicBool,
}

impl TransitionLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> TransitionLedger {
        TransitionLedger::default()
    }

    /// Record one transition event on `thread`.
    pub fn record(&self, thread: usize, kind: TransitionKind) {
        let mut g = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        if thread >= g.len() {
            g.resize(thread + 1, ThreadTally::default());
        }
        let t = &mut g[thread];
        match kind {
            TransitionKind::J2nBegin => {
                t.j2n_begins += 1;
                t.j2n_depth += 1;
            }
            TransitionKind::J2nEnd => {
                t.j2n_ends += 1;
                t.j2n_depth -= 1;
            }
            TransitionKind::N2jBegin => {
                t.n2j_begins += 1;
                t.n2j_depth += 1;
            }
            TransitionKind::N2jEnd => {
                t.n2j_ends += 1;
                t.n2j_depth -= 1;
            }
        }
        if t.j2n_depth < 0 || t.n2j_depth < 0 {
            t.depth_went_negative = true;
            self.saw_negative.store(true, Ordering::Relaxed);
        }
    }

    /// Aggregate counts over all threads.
    #[must_use]
    pub fn totals(&self) -> LedgerTotals {
        let g = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = LedgerTotals::default();
        for t in g.iter() {
            out.j2n_begins += t.j2n_begins;
            out.j2n_ends += t.j2n_ends;
            out.n2j_begins += t.n2j_begins;
            out.n2j_ends += t.n2j_ends;
        }
        out
    }

    /// Verify the invariants: per thread, `J2N` begins == ends, `N2J`
    /// begins == ends, both depths back at zero, and no depth ever dipped
    /// below zero (an end without a begin). Returns every violation found.
    ///
    /// # Errors
    ///
    /// A non-empty list of [`LedgerViolation`]s if any thread is
    /// unbalanced.
    pub fn check(&self) -> Result<LedgerTotals, Vec<LedgerViolation>> {
        let g = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        let mut violations = Vec::new();
        for (idx, t) in g.iter().enumerate() {
            if t.j2n_begins != t.j2n_ends {
                violations.push(LedgerViolation {
                    thread: idx,
                    what: format!(
                        "J2N unbalanced: {} begins vs {} ends",
                        t.j2n_begins, t.j2n_ends
                    ),
                });
            }
            if t.n2j_begins != t.n2j_ends {
                violations.push(LedgerViolation {
                    thread: idx,
                    what: format!(
                        "N2J unbalanced: {} begins vs {} ends",
                        t.n2j_begins, t.n2j_ends
                    ),
                });
            }
            if t.j2n_depth != 0 || t.n2j_depth != 0 {
                violations.push(LedgerViolation {
                    thread: idx,
                    what: format!(
                        "nesting depth nonzero at end: j2n={} n2j={}",
                        t.j2n_depth, t.n2j_depth
                    ),
                });
            }
            if t.depth_went_negative {
                violations.push(LedgerViolation {
                    thread: idx,
                    what: "an End bracket fired without a matching Begin".into(),
                });
            }
        }
        if violations.is_empty() {
            drop(g);
            Ok(self.totals())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_a_bijection_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn disabled_injector_never_fires_and_counts_nothing() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for _ in 0..1000 {
            assert_eq!(inj.inject(FaultSite::NativeUnwind), None);
        }
        assert_eq!(inj.consulted(FaultSite::NativeUnwind), 0);
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn zero_rate_site_never_fires_even_when_others_do() {
        let plan = FaultPlan::new(7).with_rate(FaultSite::ClockStall, PPM);
        let inj = FaultInjector::new(plan);
        assert!(inj.is_enabled());
        for _ in 0..500 {
            assert_eq!(inj.inject(FaultSite::NativeUnwind), None);
            assert!(inj.inject(FaultSite::ClockStall).is_some());
        }
        assert_eq!(inj.injected(FaultSite::NativeUnwind), 0);
        assert_eq!(inj.injected(FaultSite::ClockStall), 500);
    }

    #[test]
    fn same_plan_gives_identical_schedules() {
        let plan = FaultPlan::new(42)
            .with_rate(FaultSite::NativeUnwind, 100_000)
            .with_rate(FaultSite::ThreadDeath, 50_000);
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        for _ in 0..2000 {
            assert_eq!(
                a.inject(FaultSite::NativeUnwind),
                b.inject(FaultSite::NativeUnwind)
            );
            assert_eq!(
                a.inject(FaultSite::ThreadDeath),
                b.inject(FaultSite::ThreadDeath)
            );
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(a.total_injected() > 0, "rates high enough to fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| {
            FaultInjector::new(FaultPlan::new(seed).with_rate(FaultSite::ClassBytes, 500_000))
        };
        let a = mk(1);
        let b = mk(2);
        let fire = |inj: &FaultInjector| {
            (0..256)
                .map(|_| inj.inject(FaultSite::ClassBytes).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(fire(&a), fire(&b));
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let inj =
            FaultInjector::new(FaultPlan::new(9).with_rate(FaultSite::TraceSaturation, 250_000));
        for _ in 0..20_000 {
            inj.inject(FaultSite::TraceSaturation);
        }
        let hit = inj.injected(FaultSite::TraceSaturation) as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&hit), "observed {hit}");
    }

    #[test]
    fn ledger_balances_nested_transitions() {
        let ledger = TransitionLedger::new();
        // thread 0: J2N -> N2J -> (nested J2N) all unwound in order.
        ledger.record(0, TransitionKind::J2nBegin);
        ledger.record(0, TransitionKind::N2jBegin);
        ledger.record(0, TransitionKind::J2nBegin);
        ledger.record(0, TransitionKind::J2nEnd);
        ledger.record(0, TransitionKind::N2jEnd);
        ledger.record(0, TransitionKind::J2nEnd);
        ledger.record(2, TransitionKind::J2nBegin);
        ledger.record(2, TransitionKind::J2nEnd);
        let totals = ledger.check().expect("balanced");
        assert_eq!(totals.j2n_begins, 3);
        assert_eq!(totals.j2n_ends, 3);
        assert_eq!(totals.n2j_begins, 1);
    }

    #[test]
    fn ledger_reports_missing_end() {
        let ledger = TransitionLedger::new();
        ledger.record(1, TransitionKind::J2nBegin);
        let violations = ledger.check().expect_err("unbalanced");
        assert!(violations.iter().any(|v| v.thread == 1));
        assert!(violations.iter().any(|v| v.what.contains("J2N unbalanced")));
    }

    #[test]
    fn ledger_reports_end_without_begin() {
        let ledger = TransitionLedger::new();
        ledger.record(0, TransitionKind::N2jEnd);
        ledger.record(0, TransitionKind::N2jBegin);
        let violations = ledger.check().expect_err("went negative");
        assert!(violations
            .iter()
            .any(|v| v.what.contains("without a matching Begin")));
    }

    #[test]
    fn chaos_plan_arms_every_site() {
        let plan = FaultPlan::chaos(3);
        assert!(!plan.is_inert());
        for site in FaultSite::ALL {
            assert!(plan.rates_ppm[site.index()] > 0, "{site} unarmed");
        }
    }
}
