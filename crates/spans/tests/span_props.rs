//! Property tests over the span plane's two wire surfaces: the binary
//! codec must round-trip any record set bit-exactly and fail *closed*
//! (never panic, never return garbage) on truncated or mutated bytes,
//! and the `traceparent` parser must treat any malformed header as
//! absent rather than fatal.

use proptest::prelude::*;

use jvmsim_spans::{
    decode_spans, encode_spans, parse_annotation, parse_traceparent, render_traceparent,
    SpanBuilder, SpanRecord, SpanStage, TraceId,
};

fn arb_stage() -> impl Strategy<Value = SpanStage> {
    (0usize..SpanStage::COUNT).prop_map(|i| SpanStage::from_index(i).unwrap())
}

/// Structurally arbitrary records: the codec must round-trip anything,
/// including sets that violate the partition invariant.
fn arb_record() -> impl Strategy<Value = SpanRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u64>(), any::<u64>()),
        arb_stage(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((trace_hi, trace_lo, span_id, parent_span), (member, conn, req), stage, rest)| {
                SpanRecord {
                    trace_hi,
                    trace_lo,
                    span_id,
                    parent_span,
                    member,
                    conn,
                    req,
                    stage,
                    start_cycles: rest.0,
                    duration_cycles: rest.1,
                    detail: rest.2,
                }
            },
        )
}

proptest! {
    #[test]
    fn codec_round_trips_any_record_set(records in proptest::collection::vec(arb_record(), 0..48)) {
        let bytes = encode_spans(&records);
        prop_assert_eq!(decode_spans(&bytes), Some(records));
    }

    #[test]
    fn truncation_never_panics_and_never_decodes(
        records in proptest::collection::vec(arb_record(), 1..16),
        cut in 0usize..4096,
    ) {
        let bytes = encode_spans(&records);
        let cut = cut % bytes.len(); // every strict prefix
        // Every strict prefix must be rejected: the codec carries an
        // exact count and a strict cursor, so a partial write can never
        // pass for a complete export.
        prop_assert_eq!(decode_spans(&bytes[..cut]), None);
    }

    #[test]
    fn mutation_never_panics(
        records in proptest::collection::vec(arb_record(), 1..16),
        pos in 0usize..4096,
        xor in 1u32..256,
    ) {
        let mut bytes = encode_spans(&records);
        let pos = pos % bytes.len();
        #[allow(clippy::cast_possible_truncation)]
        let xor = xor as u8;
        bytes[pos] ^= xor;
        // Fail closed or reject — either way, no panic. A flip inside a
        // record payload still decodes (payload bytes are unconstrained
        // except the stage discriminant); header or count damage must not.
        let _ = decode_spans(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_spans(&bytes);
    }

    #[test]
    fn malformed_traceparent_is_ignored_not_fatal(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Any parse outcome is fine; what matters is no panic, and that
        // a builder handed the header still opens a usable root span.
        let header = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_traceparent(&header);
        let mut builder = SpanBuilder::begin(7, 0, 1, 2, Some(&header));
        builder.stage(SpanStage::Accept, 10, 0);
        let records = builder.finish(200);
        prop_assert_eq!(records[0].stage, SpanStage::Root);
        prop_assert!(records[0].trace_hi != 0 || records[0].trace_lo != 0);
    }

    #[test]
    fn well_formed_traceparent_round_trips(hi in any::<u64>(), lo in any::<u64>(), parent in any::<u64>()) {
        let trace = TraceId { hi, lo: if hi == 0 && lo == 0 { 1 } else { lo } };
        let header = render_traceparent(trace, parent);
        prop_assert_eq!(parse_traceparent(&header), Some((trace, parent)));
    }

    #[test]
    fn malformed_annotations_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = parse_annotation(&String::from_utf8_lossy(&bytes));
    }
}
