//! `jvmsim-spans`: the deterministic distributed-tracing plane.
//!
//! Every request entering the serve daemon opens a **root span** and one
//! **child span per lifecycle stage** (accept, admission verdict, cache
//! lookup + verify, each peer-fetch attempt, queue wait, recompute, row
//! encode, response write). Two properties make the plane unlike a
//! wall-clock tracer:
//!
//! 1. **Byte-reproducible identity.** The 128-bit trace id is
//!    [`splitmix64`] over `(daemon seed, connection ordinal, request
//!    ordinal)` — no wall clock, no thread identity — so the same drill
//!    produces the same trace ids at any `--jobs` count.
//! 2. **Exact attribution.** Stage durations are *modeled* cycle costs on
//!    the paper's clock ([`jvmsim_pcl::PAPER_CLOCK_HZ`]): pure functions
//!    of request identity and outcome path (payload bytes, queue depth at
//!    enqueue, the seeded backoff schedule, the run's own PCL
//!    `total_cycles` for the recompute stage). The root span's duration
//!    is *defined* as the sum of its children, so sibling stages
//!    partition the parent exactly — the same ledger discipline
//!    `jvmsim-metrics` enforces on its attribution buckets — and the
//!    partition invariant is checkable, not approximate.
//!
//! Trace context crosses fleet hops in a W3C-`traceparent`-shaped HTTP
//! header (`00-<32 hex trace id>-<16 hex parent span id>-01`): a peer
//! fetch forwards its root span's identity, so one trace stitches the
//! full fleet path (home member → failover successor → peer tier →
//! recompute). Malformed context is ignored, never fatal — the receiver
//! just opens a fresh root.
//!
//! Spans land in a bounded per-daemon [`SpanPlane`] ring (oldest evicted
//! first, every drop counted; the `span-buffer-saturation` fault site can
//! force drops in chaos runs), render to deterministic ordinal-sorted
//! JSON for `GET /v1/spans`, and travel between processes in a strict
//! versioned binary codec that fails closed on any truncation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use jvmsim_faults::{splitmix64, FaultInjector, FaultSite};
use jvmsim_pcl::PAPER_CLOCK_HZ;

/// Per-operand salts so connection and request ordinals decorrelate in
/// the trace-id stream (same shape as the fault plane's per-site salts).
const CONN_SALT: u64 = 0xA24B_AED4_963E_E407;
const REQ_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const CHILD_SALT: u64 = 0xD6E8_FEB8_6659_FD93;
const ROOT_SALT: u64 = 0x2545_F491_4F6C_DD1D;

/// A 128-bit trace identity, derived — never random.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// High 64 bits (seed × connection ordinal).
    pub hi: u64,
    /// Low 64 bits (high half × request ordinal).
    pub lo: u64,
}

impl TraceId {
    /// Derive the trace id for request `req` on connection `conn` of the
    /// daemon seeded `seed`. Pure; the all-zero id (which `traceparent`
    /// forbids) is nudged to `lo = 1`.
    #[must_use]
    pub fn derive(seed: u64, conn: u64, req: u64) -> TraceId {
        let hi = splitmix64(seed ^ conn.wrapping_mul(CONN_SALT));
        let mut lo = splitmix64(hi ^ req.wrapping_mul(REQ_SALT));
        if hi == 0 && lo == 0 {
            lo = 1;
        }
        TraceId { hi, lo }
    }

    /// Lower-case 32-digit hex rendering.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Inverse of [`TraceId::to_hex`]; `None` unless exactly 32 hex digits.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(TraceId {
            hi: u64::from_str_radix(&s[..16], 16).ok()?,
            lo: u64::from_str_radix(&s[16..], 16).ok()?,
        })
    }
}

/// The request lifecycle stages. `Root` is the request span itself; the
/// rest are its children, in the order the lifecycle visits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStage {
    /// The whole request (duration ≡ Σ children).
    Root,
    /// Accepting and reading the request off the wire.
    Accept,
    /// Parsing/validating the spec — the admission verdict.
    Admission,
    /// Waiting in the bounded admission queue behind earlier jobs.
    QueueWait,
    /// Content-addressed store lookup plus digest verification.
    CacheLookup,
    /// One peer-fetch wire attempt (backoff included; one span each).
    PeerFetch,
    /// Executing the run through the Session API (the run's own PCL
    /// cycles — the only stage timed by a real clock reading).
    Recompute,
    /// Rendering the canonical cell row.
    RowEncode,
    /// Serializing and writing the response.
    ResponseWrite,
    /// Client-side: the seeded sleep honoring a `429 Retry-After` hint.
    DeferredWait,
}

impl SpanStage {
    /// Number of stages (array sizing).
    pub const COUNT: usize = 10;

    /// Every stage, in dense-index order.
    pub const ALL: [SpanStage; SpanStage::COUNT] = [
        SpanStage::Root,
        SpanStage::Accept,
        SpanStage::Admission,
        SpanStage::QueueWait,
        SpanStage::CacheLookup,
        SpanStage::PeerFetch,
        SpanStage::Recompute,
        SpanStage::RowEncode,
        SpanStage::ResponseWrite,
        SpanStage::DeferredWait,
    ];

    /// Dense index in `[0, COUNT)`.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            SpanStage::Root => 0,
            SpanStage::Accept => 1,
            SpanStage::Admission => 2,
            SpanStage::QueueWait => 3,
            SpanStage::CacheLookup => 4,
            SpanStage::PeerFetch => 5,
            SpanStage::Recompute => 6,
            SpanStage::RowEncode => 7,
            SpanStage::ResponseWrite => 8,
            SpanStage::DeferredWait => 9,
        }
    }

    /// Stable snake_case label (JSON, annotations, tables).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanStage::Root => "root",
            SpanStage::Accept => "accept",
            SpanStage::Admission => "admission",
            SpanStage::QueueWait => "queue_wait",
            SpanStage::CacheLookup => "cache_lookup",
            SpanStage::PeerFetch => "peer_fetch",
            SpanStage::Recompute => "recompute",
            SpanStage::RowEncode => "row_encode",
            SpanStage::ResponseWrite => "response_write",
            SpanStage::DeferredWait => "deferred_wait",
        }
    }

    /// Inverse of [`SpanStage::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<SpanStage> {
        SpanStage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stage from its dense index.
    #[must_use]
    pub fn from_index(i: usize) -> Option<SpanStage> {
        SpanStage::ALL.get(i).copied()
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace identity, high half.
    pub trace_hi: u64,
    /// Trace identity, low half.
    pub trace_lo: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id: the root for children; for a root, the propagated
    /// remote parent (0 when the trace originated here).
    pub parent_span: u64,
    /// Fleet slot of the daemon that recorded the span.
    pub member: u32,
    /// Connection ordinal on that daemon (accept order).
    pub conn: u64,
    /// Request ordinal on that connection.
    pub req: u64,
    /// What the span measures.
    pub stage: SpanStage,
    /// Start offset within the trace, in cycles (root starts at 0;
    /// children tile the root without gaps).
    pub start_cycles: u64,
    /// Duration in cycles (root ≡ Σ children).
    pub duration_cycles: u64,
    /// Stage-specific detail: the response status on a root span; on a
    /// `peer_fetch` span `(peer << 32) | attempt`, with bit 63 set when
    /// the attempt found the entry; the depth at enqueue on `queue_wait`;
    /// payload bytes elsewhere.
    pub detail: u64,
}

// --- The deterministic stage cost model ------------------------------------

/// Cycles per modeled millisecond, at the paper's 2.66 GHz clock.
pub const CYCLES_PER_MS: u64 = PAPER_CLOCK_HZ / 1000;

/// Convert modeled milliseconds (backoff schedules, retry hints) to the
/// cycle clock every span is timed on.
#[must_use]
pub const fn ms_to_cycles(ms: u64) -> u64 {
    ms.saturating_mul(CYCLES_PER_MS)
}

/// Fixed cost of accepting a request plus a per-byte read cost.
#[must_use]
pub const fn accept_cost(request_bytes: usize) -> u64 {
    1_600 + 8 * request_bytes as u64
}

/// Fixed cost of the admission verdict (spec parse + validation).
#[must_use]
pub const fn admission_cost() -> u64 {
    400
}

/// Store lookup + digest verification: base probe cost plus a per-byte
/// verify cost over the entry actually read (`None` on a miss).
#[must_use]
pub const fn cache_lookup_cost(entry_bytes: Option<usize>) -> u64 {
    match entry_bytes {
        Some(n) => 2_400 + 8 * n as u64,
        None => 2_400,
    }
}

/// One peer-fetch wire attempt: connection setup plus the seeded backoff
/// slept before it (milliseconds → cycles) plus a per-byte transfer cost
/// over the payload it brought home (0 for 404/failed attempts).
#[must_use]
pub const fn peer_attempt_cost(backoff_ms: u64, payload_bytes: usize) -> u64 {
    8_000 + ms_to_cycles(backoff_ms) + 8 * payload_bytes as u64
}

/// Queue wait, charged per job already queued at enqueue time — 0 under
/// sequential load, which is exactly what makes drill spans `--jobs`
/// invariant.
#[must_use]
pub const fn queue_wait_cost(depth_at_enqueue: usize) -> u64 {
    12_000 * depth_at_enqueue as u64
}

/// Rendering the canonical cell row.
#[must_use]
pub const fn row_encode_cost(row_bytes: usize) -> u64 {
    1_200 + 4 * row_bytes as u64
}

/// Serializing and writing the response body.
#[must_use]
pub const fn response_write_cost(body_bytes: usize) -> u64 {
    1_000 + 2 * body_bytes as u64
}

// --- traceparent -----------------------------------------------------------

/// Render the propagation header: `00-<trace>-<parent span>-01`.
#[must_use]
pub fn render_traceparent(trace: TraceId, parent_span: u64) -> String {
    format!("00-{}-{parent_span:016x}-01", trace.to_hex())
}

/// Parse a propagation header. Deliberately lenient about everything but
/// shape: any malformed value yields `None` (the receiver opens a fresh
/// root), never an error — a hostile or ancient client cannot make the
/// daemon fail a request over its tracing header.
#[must_use]
pub fn parse_traceparent(value: &str) -> Option<(TraceId, u64)> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    if version.len() != 2 || !version.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let trace = TraceId::from_hex(parts.next()?)?;
    let parent = parts.next()?;
    if parent.len() != 16 || !parent.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let parent_span = u64::from_str_radix(parent, 16).ok()?;
    // Flags field must exist; trailing fields are tolerated (future
    // versions append, per the W3C grammar).
    let flags = parts.next()?;
    if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if trace.hi == 0 && trace.lo == 0 {
        return None;
    }
    Some((trace, parent_span))
}

// --- SpanBuilder -----------------------------------------------------------

/// Accumulates one request's stages and freezes them into records whose
/// root duration is the exact sum of its children.
#[derive(Debug)]
pub struct SpanBuilder {
    trace: TraceId,
    parent: u64,
    member: u32,
    conn: u64,
    req: u64,
    root_id: u64,
    stages: Vec<(SpanStage, u64, u64)>,
}

impl SpanBuilder {
    /// Open a request span: adopt the (leniently parsed) `traceparent`
    /// when one arrived, otherwise derive a fresh root identity from the
    /// daemon seed and the request's ordinals.
    #[must_use]
    pub fn begin(
        seed: u64,
        member: u32,
        conn: u64,
        req: u64,
        traceparent: Option<&str>,
    ) -> SpanBuilder {
        let (trace, parent) = traceparent
            .and_then(parse_traceparent)
            .unwrap_or((TraceId::derive(seed, conn, req), 0));
        let root_id = splitmix64(trace.lo ^ trace.hi.wrapping_mul(ROOT_SALT) ^ u64::from(member));
        SpanBuilder {
            trace,
            parent,
            member,
            conn,
            req,
            root_id,
            stages: Vec::with_capacity(8),
        }
    }

    /// This request's trace identity.
    #[must_use]
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The root span's id — what an outgoing peer fetch forwards as the
    /// remote hop's parent.
    #[must_use]
    pub fn root_span_id(&self) -> u64 {
        self.root_id
    }

    /// The propagation header an outgoing fleet hop should carry.
    #[must_use]
    pub fn traceparent(&self) -> String {
        render_traceparent(self.trace, self.root_id)
    }

    /// Append one stage with its modeled cycle cost.
    pub fn stage(&mut self, stage: SpanStage, cycles: u64, detail: u64) {
        self.stages.push((stage, cycles, detail));
    }

    /// Freeze into records: root first (duration ≡ Σ children, `detail` =
    /// response status), then the children tiling `[0, total)` in stage
    /// order — the partition invariant holds by construction.
    #[must_use]
    pub fn finish(self, status: u16) -> Vec<SpanRecord> {
        let total: u64 = self.stages.iter().map(|(_, c, _)| *c).sum();
        let mut out = Vec::with_capacity(self.stages.len() + 1);
        out.push(SpanRecord {
            trace_hi: self.trace.hi,
            trace_lo: self.trace.lo,
            span_id: self.root_id,
            parent_span: self.parent,
            member: self.member,
            conn: self.conn,
            req: self.req,
            stage: SpanStage::Root,
            start_cycles: 0,
            duration_cycles: total,
            detail: u64::from(status),
        });
        let mut cursor = 0u64;
        for (i, (stage, cycles, detail)) in self.stages.into_iter().enumerate() {
            out.push(SpanRecord {
                trace_hi: self.trace.hi,
                trace_lo: self.trace.lo,
                span_id: splitmix64(self.root_id ^ (i as u64 + 1).wrapping_mul(CHILD_SALT)),
                parent_span: self.root_id,
                member: self.member,
                conn: self.conn,
                req: self.req,
                stage,
                start_cycles: cursor,
                duration_cycles: cycles,
                detail,
            });
            cursor += cycles;
        }
        out
    }
}

// --- SpanPlane: the bounded per-daemon ring --------------------------------

/// The per-daemon collection point: seed, member identity, and a bounded
/// ring of finished spans. Oldest records are evicted first when the ring
/// is full; every drop (eviction or injected saturation) is counted so a
/// drill can reason about surviving spans honestly.
#[derive(Debug)]
pub struct SpanPlane {
    seed: u64,
    member: u32,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    appended: AtomicU64,
    dropped: AtomicU64,
}

impl SpanPlane {
    /// A plane for the daemon seeded `seed` at fleet slot `member`,
    /// holding at most `capacity` spans (floored at 1).
    #[must_use]
    pub fn new(seed: u64, member: u32, capacity: usize) -> SpanPlane {
        SpanPlane {
            seed,
            member,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The daemon's trace-id seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The daemon's fleet slot.
    #[must_use]
    pub fn member(&self) -> u32 {
        self.member
    }

    /// Ring capacity in spans.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one request's records. The `span-buffer-saturation` fault
    /// site is consulted once per request: an injection drops the whole
    /// batch (counted), modeling a saturated collector.
    pub fn push(&self, records: Vec<SpanRecord>, injector: &FaultInjector) {
        if injector.inject(FaultSite::SpanBufferSaturation).is_some() {
            self.dropped
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        for record in records {
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(record);
            self.appended.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans appended (including any later evicted).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Spans dropped (ring eviction + injected saturation).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ordinal-sorted snapshot: `(conn, req, root-first, start, span id)`
    /// — a pure function of the recorded set, so two daemons that served
    /// the same requests render byte-identical snapshots regardless of
    /// worker count or completion order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        sort_ordinal(&mut spans);
        spans
    }
}

/// The canonical ordinal sort every export uses.
pub fn sort_ordinal(spans: &mut [SpanRecord]) {
    spans.sort_by_key(|r| {
        (
            r.member,
            r.conn,
            r.req,
            usize::from(r.stage != SpanStage::Root),
            r.start_cycles,
            r.span_id,
        )
    });
}

// --- JSON rendering --------------------------------------------------------

/// Render one span as a fixed-key-order JSON object.
fn span_json(r: &SpanRecord) -> String {
    format!(
        "{{\"trace\":\"{:016x}{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\
         \"member\":{},\"conn\":{},\"req\":{},\"stage\":\"{}\",\"start\":{},\
         \"cycles\":{},\"detail\":{}}}",
        r.trace_hi,
        r.trace_lo,
        r.span_id,
        r.parent_span,
        r.member,
        r.conn,
        r.req,
        r.stage.name(),
        r.start_cycles,
        r.duration_cycles,
        r.detail
    )
}

/// The `GET /v1/spans` body: header counters plus one span per line,
/// already ordinal-sorted — byte-identical for any worker count.
#[must_use]
pub fn render_spans_json(member: u32, appended: u64, dropped: u64, spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    let _ = write!(
        out,
        "{{\"enabled\":true,\"member\":{member},\"appended\":{appended},\
         \"dropped\":{dropped},\"spans\":["
    );
    for (i, span) in spans.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&span_json(span));
    }
    out.push_str("\n]}\n");
    out
}

/// Outcome class of a root span, from the status it recorded — the same
/// classes as the serve admission ledger.
fn status_class(status: u64) -> &'static str {
    match status {
        200..=299 => "served",
        429 => "shed",
        408 | 504 => "timeout",
        _ => "error",
    }
}

/// A deterministic Prometheus exemplar block appended to `/v1/metrics`
/// when tracing is on: for each outcome class present in the ring, the
/// first root span in ordinal order, valued at its root cycles — linking
/// the `serve_*` ledger classes to concrete trace ids without sampling
/// randomness (`spans` must already be ordinal-sorted).
#[must_use]
pub fn render_exemplars(spans: &[SpanRecord]) -> String {
    let mut picks: [Option<&SpanRecord>; 4] = [None; 4];
    const CLASSES: [&str; 4] = ["served", "shed", "timeout", "error"];
    for root in spans.iter().filter(|r| r.stage == SpanStage::Root) {
        let class = status_class(root.detail);
        let slot = CLASSES.iter().position(|c| *c == class).unwrap_or(3);
        if picks[slot].is_none() {
            picks[slot] = Some(root);
        }
    }
    if picks.iter().all(Option::is_none) {
        return String::new();
    }
    let mut out = String::from(
        "# HELP jvmsim_serve_span_exemplar first trace per outcome class (value = root cycles)\n\
         # TYPE jvmsim_serve_span_exemplar gauge\n",
    );
    for (class, pick) in CLASSES.iter().zip(picks) {
        if let Some(root) = pick {
            let _ = writeln!(
                out,
                "jvmsim_serve_span_exemplar{{class=\"{class}\",trace_id=\"{:016x}{:016x}\"}} {}",
                root.trace_hi, root.trace_lo, root.duration_cycles
            );
        }
    }
    out
}

// --- Binary codec ----------------------------------------------------------

/// Wire-format version; bumped on any layout change so a decoder never
/// misreads an old snapshot as a new one.
pub const SPAN_WIRE_VERSION: u16 = 1;

const SPAN_MAGIC: &[u8; 4] = b"JSPN";
const RECORD_BYTES: usize = 8 * 7 + 4 + 8 + 1; // seven u64s, member u32, detail u64, stage u8

/// Encode spans for transport (`GET /v1/spans/bin`, drill scrapes).
#[must_use]
pub fn encode_spans(spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + spans.len() * RECORD_BYTES);
    out.extend_from_slice(SPAN_MAGIC);
    out.extend_from_slice(&SPAN_WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::try_from(spans.len()).unwrap_or(u32::MAX).to_le_bytes());
    for r in spans {
        out.extend_from_slice(&r.trace_hi.to_le_bytes());
        out.extend_from_slice(&r.trace_lo.to_le_bytes());
        out.extend_from_slice(&r.span_id.to_le_bytes());
        out.extend_from_slice(&r.parent_span.to_le_bytes());
        out.extend_from_slice(&r.member.to_le_bytes());
        out.extend_from_slice(&r.conn.to_le_bytes());
        out.extend_from_slice(&r.req.to_le_bytes());
        out.push(u8::try_from(r.stage.index()).unwrap_or(u8::MAX));
        out.extend_from_slice(&r.start_cycles.to_le_bytes());
        out.extend_from_slice(&r.duration_cycles.to_le_bytes());
        out.extend_from_slice(&r.detail.to_le_bytes());
    }
    out
}

/// Strict cursor over the wire bytes; every read fails closed.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
}

/// Decode a [`encode_spans`] payload. `None` on a bad magic, an unknown
/// version, a count the remaining bytes cannot hold, an out-of-range
/// stage, any truncation, or trailing bytes — a torn or tampered
/// snapshot is rejected whole, never partially decoded.
#[must_use]
pub fn decode_spans(bytes: &[u8]) -> Option<Vec<SpanRecord>> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != SPAN_MAGIC {
        return None;
    }
    if c.u16()? != SPAN_WIRE_VERSION {
        return None;
    }
    let count = c.u32()? as usize;
    // Reject counts the payload cannot possibly hold before allocating.
    if count > bytes.len().saturating_sub(c.pos) / RECORD_BYTES {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let trace_hi = c.u64()?;
        let trace_lo = c.u64()?;
        let span_id = c.u64()?;
        let parent_span = c.u64()?;
        let member = c.u32()?;
        let conn = c.u64()?;
        let req = c.u64()?;
        let stage = SpanStage::from_index(c.u8()? as usize)?;
        let start_cycles = c.u64()?;
        let duration_cycles = c.u64()?;
        let detail = c.u64()?;
        out.push(SpanRecord {
            trace_hi,
            trace_lo,
            span_id,
            parent_span,
            member,
            conn,
            req,
            stage,
            start_cycles,
            duration_cycles,
            detail,
        });
    }
    if c.pos != bytes.len() {
        return None;
    }
    Some(out)
}

// --- Invariant checking ----------------------------------------------------

/// Check the partition invariant over a span set (any mix of members):
/// for every root span, its children's durations must sum *exactly* to
/// the root's, and their starts must tile `[0, duration)` without gaps
/// or overlaps. Returns one description per violated root.
#[must_use]
pub fn partition_violations(spans: &[SpanRecord]) -> Vec<String> {
    let mut violations = Vec::new();
    for root in spans.iter().filter(|r| r.stage == SpanStage::Root) {
        let mut children: Vec<&SpanRecord> = spans
            .iter()
            .filter(|r| {
                r.stage != SpanStage::Root
                    && r.parent_span == root.span_id
                    && r.member == root.member
                    && r.conn == root.conn
                    && r.req == root.req
            })
            .collect();
        // Duration breaks start ties: a zero-cycle stage on a boundary
        // (an empty queue's `queue_wait`) tiles before the stage that
        // occupies the boundary.
        children.sort_by_key(|r| (r.start_cycles, r.duration_cycles));
        let sum: u64 = children.iter().map(|r| r.duration_cycles).sum();
        if sum != root.duration_cycles {
            violations.push(format!(
                "trace {:016x}{:016x} member {} conn {} req {}: children sum {} ≠ root {}",
                root.trace_hi,
                root.trace_lo,
                root.member,
                root.conn,
                root.req,
                sum,
                root.duration_cycles
            ));
            continue;
        }
        let mut cursor = 0u64;
        for child in &children {
            if child.start_cycles != cursor {
                violations.push(format!(
                    "trace {:016x}{:016x} member {} conn {} req {}: {} starts at {} expected {}",
                    root.trace_hi,
                    root.trace_lo,
                    root.member,
                    root.conn,
                    root.req,
                    child.stage.name(),
                    child.start_cycles,
                    cursor
                ));
                break;
            }
            cursor += child.duration_cycles;
        }
    }
    violations
}

/// Count the traces whose spans were recorded by at least two distinct
/// fleet members — the propagated-context stitch the drill asserts.
#[must_use]
pub fn stitched_traces(spans: &[SpanRecord]) -> usize {
    let mut seen: Vec<(u64, u64, u32)> = spans
        .iter()
        .map(|r| (r.trace_hi, r.trace_lo, r.member))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    let mut stitched = 0;
    let mut i = 0;
    while i < seen.len() {
        let mut j = i + 1;
        while j < seen.len() && seen[j].0 == seen[i].0 && seen[j].1 == seen[i].1 {
            j += 1;
        }
        if j - i >= 2 {
            stitched += 1;
        }
        i = j;
    }
    stitched
}

// --- Per-stage latency aggregation -----------------------------------------

/// The log2 bucket index of `v` (bucket 0 holds 0; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`) — the same shape as the metrics plane's histograms.
#[must_use]
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a log2 bucket.
#[must_use]
pub fn log2_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Per-stage log2 cycle histograms with exact counts and sums — the
/// aggregation behind the `jprof client` / `jprof cluster` stage tables.
#[derive(Debug, Clone)]
pub struct StageLatencyTable {
    buckets: [[u64; 65]; SpanStage::COUNT],
    counts: [u64; SpanStage::COUNT],
    sums: [u64; SpanStage::COUNT],
}

impl Default for StageLatencyTable {
    fn default() -> StageLatencyTable {
        StageLatencyTable {
            buckets: [[0; 65]; SpanStage::COUNT],
            counts: [0; SpanStage::COUNT],
            sums: [0; SpanStage::COUNT],
        }
    }
}

impl StageLatencyTable {
    /// Record one span duration.
    pub fn observe(&mut self, stage: SpanStage, cycles: u64) {
        let i = stage.index();
        self.buckets[i][log2_bucket(cycles)] += 1;
        self.counts[i] += 1;
        self.sums[i] = self.sums[i].saturating_add(cycles);
    }

    /// Fold every span in `spans` into the table.
    pub fn observe_all(&mut self, spans: &[SpanRecord]) {
        for span in spans {
            self.observe(span.stage, span.duration_cycles);
        }
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &StageLatencyTable) {
        for i in 0..SpanStage::COUNT {
            for b in 0..65 {
                self.buckets[i][b] += other.buckets[i][b];
            }
            self.counts[i] += other.counts[i];
            self.sums[i] = self.sums[i].saturating_add(other.sums[i]);
        }
    }

    /// Observations for `stage`.
    #[must_use]
    pub fn count(&self, stage: SpanStage) -> u64 {
        self.counts[stage.index()]
    }

    /// The upper bound of the bucket where the cumulative count crosses
    /// quantile `q` in `[0, 1]` — the log2-resolution quantile estimate.
    #[must_use]
    pub fn quantile(&self, stage: SpanStage, q: f64) -> u64 {
        let i = stage.index();
        let total = self.counts[i];
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (b, &n) in self.buckets[i].iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return log2_upper_bound(b);
            }
        }
        u64::MAX
    }

    /// The deterministic per-stage table: one line per stage that was
    /// observed — count, mean, p50 and p99 (log2-bucket upper bounds),
    /// in cycles.
    #[must_use]
    pub fn render(&self, prefix: &str) -> String {
        let mut out = String::new();
        for stage in SpanStage::ALL {
            let i = stage.index();
            if self.counts[i] == 0 {
                continue;
            }
            let mean = self.sums[i] / self.counts[i];
            let _ = writeln!(
                out,
                "{prefix} stage {} count {} mean_cycles {} p50_cycles {} p99_cycles {}",
                stage.name(),
                self.counts[i],
                mean,
                self.quantile(stage, 0.50),
                self.quantile(stage, 0.99)
            );
        }
        out
    }
}

// --- The response annotation (client-visible stage breakdown) --------------

/// Render the `X-Jvmsim-Span` response header: the trace id followed by
/// `stage=cycles` pairs in lifecycle order (repeated stages are summed),
/// so a client can build its per-stage table without scraping the ring.
#[must_use]
pub fn render_annotation(records: &[SpanRecord]) -> String {
    let Some(root) = records.iter().find(|r| r.stage == SpanStage::Root) else {
        return String::new();
    };
    let mut totals = [0u64; SpanStage::COUNT];
    for r in records {
        if r.stage != SpanStage::Root {
            totals[r.stage.index()] += r.duration_cycles;
        }
    }
    let mut out = format!("trace={:016x}{:016x}", root.trace_hi, root.trace_lo);
    let _ = write!(out, ";root={}", root.duration_cycles);
    for stage in SpanStage::ALL {
        let i = stage.index();
        if stage != SpanStage::Root && totals[i] > 0 {
            let _ = write!(out, ";{}={}", stage.name(), totals[i]);
        }
    }
    out
}

/// Parse an `X-Jvmsim-Span` header into `(trace id, [(stage, cycles)])`.
/// Lenient like [`parse_traceparent`]: unknown keys are skipped, any
/// malformed field just drops that field.
#[must_use]
pub fn parse_annotation(value: &str) -> Option<(TraceId, Vec<(SpanStage, u64)>)> {
    let mut trace = None;
    let mut stages = Vec::new();
    for field in value.trim().split(';') {
        let Some((key, val)) = field.split_once('=') else {
            continue;
        };
        if key == "trace" {
            trace = TraceId::from_hex(val);
        } else if let (Some(stage), Ok(cycles)) = (SpanStage::from_name(key), val.parse::<u64>()) {
            stages.push((stage, cycles));
        }
    }
    Some((trace?, stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim_faults::FaultPlan;

    fn sample_builder() -> SpanBuilder {
        let mut b = SpanBuilder::begin(42, 1, 3, 7, None);
        b.stage(SpanStage::Accept, accept_cost(100), 100);
        b.stage(SpanStage::Admission, admission_cost(), 0);
        b.stage(SpanStage::CacheLookup, cache_lookup_cost(None), 0);
        b.stage(SpanStage::PeerFetch, peer_attempt_cost(5, 0), 1 << 32);
        b.stage(SpanStage::QueueWait, queue_wait_cost(2), 2);
        b.stage(SpanStage::Recompute, 1_234_567, 0);
        b.stage(SpanStage::RowEncode, row_encode_cost(500), 500);
        b.stage(SpanStage::ResponseWrite, response_write_cost(500), 500);
        b
    }

    #[test]
    fn stage_indices_dense_and_names_unique() {
        for (i, stage) in SpanStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(SpanStage::from_index(i), Some(*stage));
            assert_eq!(SpanStage::from_name(stage.name()), Some(*stage));
        }
        let mut names: Vec<_> = SpanStage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanStage::COUNT);
    }

    #[test]
    fn trace_ids_are_deterministic_and_ordinal_sensitive() {
        assert_eq!(TraceId::derive(1, 2, 3), TraceId::derive(1, 2, 3));
        assert_ne!(TraceId::derive(1, 2, 3), TraceId::derive(1, 2, 4));
        assert_ne!(TraceId::derive(1, 2, 3), TraceId::derive(1, 3, 3));
        assert_ne!(TraceId::derive(1, 2, 3), TraceId::derive(2, 2, 3));
        let t = TraceId::derive(9, 0, 0);
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex(""), None);
    }

    #[test]
    fn traceparent_round_trips_and_rejects_garbage() {
        let t = TraceId::derive(7, 1, 2);
        let header = render_traceparent(t, 0xABCD);
        assert_eq!(parse_traceparent(&header), Some((t, 0xABCD)));
        for bad in [
            "",
            "00",
            "00-short-0000000000000000-01",
            "zz-00000000000000000000000000000001-0000000000000000-01",
            "00-00000000000000000000000000000000-0000000000000000-01", // all-zero trace
            "00-0000000000000000000000000000000g-0000000000000000-01",
            "00-00000000000000000000000000000001-00000000000000zz-01",
            "00-00000000000000000000000000000001-0000000000000000",
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn finish_partitions_the_root_exactly() {
        let records = sample_builder().finish(200);
        assert_eq!(records[0].stage, SpanStage::Root);
        assert_eq!(records[0].detail, 200);
        assert!(partition_violations(&records).is_empty());
        let total: u64 = records[1..].iter().map(|r| r.duration_cycles).sum();
        assert_eq!(records[0].duration_cycles, total);
        // Children tile [0, total) in order.
        let mut cursor = 0;
        for child in &records[1..] {
            assert_eq!(child.start_cycles, cursor);
            assert_eq!(child.parent_span, records[0].span_id);
            cursor += child.duration_cycles;
        }
    }

    #[test]
    fn zero_cycle_stage_on_a_boundary_still_partitions() {
        // An empty queue records a 0-cycle queue_wait that shares its
        // start with the stage after it; the checker must not let the
        // tie-break order manufacture a violation, in any input order.
        let mut b = SpanBuilder::begin(1, 0, 0, 0, None);
        b.stage(SpanStage::Accept, 100, 0);
        b.stage(SpanStage::QueueWait, 0, 0);
        b.stage(SpanStage::Recompute, 500, 0);
        let mut records = b.finish(200);
        assert!(partition_violations(&records).is_empty());
        records.reverse();
        assert!(partition_violations(&records).is_empty());
    }

    #[test]
    fn partition_checker_catches_bad_sums_and_gaps() {
        let mut records = sample_builder().finish(200);
        records[0].duration_cycles += 1;
        assert_eq!(partition_violations(&records).len(), 1);
        let mut records = sample_builder().finish(200);
        records[3].start_cycles += 1;
        assert_eq!(partition_violations(&records).len(), 1);
    }

    #[test]
    fn propagated_context_stitches_members() {
        let mut home = SpanBuilder::begin(42, 0, 0, 0, None);
        home.stage(SpanStage::Accept, accept_cost(10), 10);
        let header = home.traceparent();
        let mut remote = SpanBuilder::begin(99, 1, 5, 0, Some(&header));
        remote.stage(SpanStage::Accept, accept_cost(10), 10);
        let mut all = home.finish(200);
        let remote_records = remote.finish(200);
        assert_eq!(remote_records[0].trace_hi, all[0].trace_hi);
        assert_eq!(remote_records[0].parent_span, all[0].span_id);
        all.extend(remote_records);
        assert_eq!(stitched_traces(&all), 1);
        assert!(partition_violations(&all).is_empty());
        // A malformed header opens a fresh root instead of failing.
        let fresh = SpanBuilder::begin(99, 1, 5, 1, Some("garbage"));
        assert_ne!(fresh.trace(), TraceId::derive(42, 0, 0));
    }

    #[test]
    fn codec_round_trips_and_fails_closed() {
        let records = sample_builder().finish(200);
        let wire = encode_spans(&records);
        assert_eq!(decode_spans(&wire).as_deref(), Some(&records[..]));
        assert_eq!(decode_spans(&encode_spans(&[])).as_deref(), Some(&[][..]));
        // Truncations at every length fail closed, never panic.
        for n in 0..wire.len() {
            assert_eq!(decode_spans(&wire[..n]), None, "truncated at {n}");
        }
        // Trailing bytes are rejected.
        let mut extended = wire.clone();
        extended.push(0);
        assert_eq!(decode_spans(&extended), None);
        // A lying count is rejected before allocation.
        let mut lying = wire.clone();
        lying[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_spans(&lying), None);
        // A wrong version is rejected.
        let mut wrong = wire;
        wrong[4] = wrong[4].wrapping_add(1);
        assert_eq!(decode_spans(&wrong), None);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let plane = SpanPlane::new(1, 0, 4);
        let quiet = FaultInjector::new(FaultPlan::new(0));
        for req in 0..3 {
            let mut b = SpanBuilder::begin(1, 0, 0, req, None);
            b.stage(SpanStage::Accept, accept_cost(1), 1);
            b.stage(SpanStage::ResponseWrite, response_write_cost(1), 1);
            plane.push(b.finish(200), &quiet);
        }
        // 9 spans through a 4-slot ring: 5 evicted.
        assert_eq!(plane.appended(), 9);
        assert_eq!(plane.dropped(), 5);
        assert_eq!(plane.snapshot().len(), 4);
        // Injected saturation drops a whole batch.
        let saturated = FaultInjector::new(
            FaultPlan::new(3).with_rate(FaultSite::SpanBufferSaturation, 1_000_000),
        );
        let mut b = SpanBuilder::begin(1, 0, 0, 9, None);
        b.stage(SpanStage::Accept, accept_cost(1), 1);
        plane.push(b.finish(200), &saturated);
        assert_eq!(plane.dropped(), 7);
    }

    #[test]
    fn snapshot_is_ordinal_sorted_and_json_deterministic() {
        let plane = SpanPlane::new(5, 2, 64);
        let quiet = FaultInjector::new(FaultPlan::new(0));
        // Push out of ordinal order.
        for (conn, req) in [(1u64, 0u64), (0, 1), (0, 0)] {
            let mut b = SpanBuilder::begin(5, 2, conn, req, None);
            b.stage(SpanStage::Accept, accept_cost(2), 2);
            plane.push(b.finish(200), &quiet);
        }
        let snap = plane.snapshot();
        let ordinals: Vec<(u64, u64)> = snap.iter().map(|r| (r.conn, r.req)).collect();
        let mut sorted = ordinals.clone();
        sorted.sort_unstable();
        assert_eq!(ordinals, sorted);
        let a = render_spans_json(2, plane.appended(), plane.dropped(), &snap);
        let b = render_spans_json(2, plane.appended(), plane.dropped(), &snap);
        assert_eq!(a, b);
        assert!(a.contains("\"stage\":\"root\""));
        assert!(a.contains("\"enabled\":true"));
    }

    #[test]
    fn annotation_round_trips() {
        let records = sample_builder().finish(200);
        let header = render_annotation(&records);
        let (trace, stages) = parse_annotation(&header).unwrap();
        assert_eq!(trace.hi, records[0].trace_hi);
        assert_eq!(trace.lo, records[0].trace_lo);
        // The root entry carries the end-to-end total; the other stages
        // repeat the partition invariant.
        assert!(stages.contains(&(SpanStage::Root, records[0].duration_cycles)));
        let children: u64 = stages
            .iter()
            .filter(|(s, _)| *s != SpanStage::Root)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(children, records[0].duration_cycles);
        assert!(stages.iter().any(|(s, _)| *s == SpanStage::Recompute));
        assert_eq!(parse_annotation("no-trace-here"), None);
        // Unknown fields are skipped, not fatal.
        let (t2, s2) = parse_annotation(&format!("{header};mystery=9;bad")).unwrap();
        assert_eq!(t2, trace);
        assert_eq!(s2.len(), stages.len());
    }

    #[test]
    fn stage_table_quantiles_and_rendering() {
        let mut table = StageLatencyTable::default();
        for cycles in [1u64, 2, 4, 8, 1024] {
            table.observe(SpanStage::Recompute, cycles);
        }
        assert_eq!(table.count(SpanStage::Recompute), 5);
        // p50 of {1,2,4,8,1024}: rank 3 → bucket of 4 → upper bound 7.
        assert_eq!(table.quantile(SpanStage::Recompute, 0.50), 7);
        assert_eq!(table.quantile(SpanStage::Recompute, 0.99), 2047);
        assert_eq!(table.quantile(SpanStage::Accept, 0.99), 0);
        let rendered = table.render("drill");
        assert!(rendered.contains("drill stage recompute count 5"));
        assert!(!rendered.contains("stage accept"), "{rendered}");
        let mut other = StageLatencyTable::default();
        other.observe(SpanStage::Recompute, 1);
        other.merge(&table);
        assert_eq!(other.count(SpanStage::Recompute), 6);
    }

    #[test]
    fn exemplars_pick_first_root_per_class() {
        let mut spans = sample_builder().finish(200);
        let mut b = SpanBuilder::begin(42, 1, 3, 8, None);
        b.stage(SpanStage::Accept, accept_cost(1), 1);
        spans.extend(b.finish(429));
        let mut b = SpanBuilder::begin(42, 1, 3, 9, None);
        b.stage(SpanStage::Accept, accept_cost(1), 1);
        spans.extend(b.finish(200));
        sort_ordinal(&mut spans);
        let block = render_exemplars(&spans);
        assert!(block.contains("# TYPE jvmsim_serve_span_exemplar gauge"));
        assert!(block.contains("class=\"served\""));
        assert!(block.contains("class=\"shed\""));
        assert!(!block.contains("class=\"timeout\""));
        // Exactly one exemplar per present class.
        assert_eq!(block.matches("class=\"served\"").count(), 1);
        assert_eq!(render_exemplars(&[]), String::new());
    }

    #[test]
    fn cost_model_is_pure_and_monotone_in_bytes() {
        assert_eq!(accept_cost(10), accept_cost(10));
        assert!(accept_cost(11) > accept_cost(10));
        assert!(cache_lookup_cost(Some(100)) > cache_lookup_cost(None));
        assert_eq!(queue_wait_cost(0), 0);
        assert_eq!(ms_to_cycles(1), CYCLES_PER_MS);
        assert!(peer_attempt_cost(5, 0) > peer_attempt_cost(0, 0));
    }
}
