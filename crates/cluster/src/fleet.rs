//! The fleet: N in-process `jvmsim-serve` daemons behind one consistent
//! hash ring, with health-check quarantine, kill/rejoin, and per-member
//! admission-ledger accounting that survives member death.
//!
//! Failure detection is deliberately *observational*: killing a member
//! does not touch the routing state — the next health sweep (or a failed
//! request prompting one) discovers the corpse, withdraws it from the
//! peer directory, and quarantines it, exactly as a supervisor that
//! cannot see inside the process would. Routing then fails over along
//! the ring (counted in `cluster_failovers`), and the dead member's keys
//! land on successors whose peer-fetch tier keeps recomputes to the
//! minimum the failure actually forces.

use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use jvmsim_cache::CacheStore;
use jvmsim_faults::{splitmix64, FaultPlan, FaultSite};
use jvmsim_metrics::{CounterId, MetricsEntry, MetricsRegistry};
use jvmsim_serve::client::http_request;
use jvmsim_serve::{PeerDirectory, PeerView, RetryPolicy, ServeConfig, Server, SpanConfig};
use jvmsim_spans::{sort_ordinal, SpanRecord};

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Member count (floored at 1).
    pub peers: usize,
    /// Seed for every deterministic decision: member fault plans, retry
    /// jitter, and the drill's kill schedule.
    pub seed: u64,
    /// Root directory; member `i`'s store lives in `<root>/peer-<i>`.
    pub cache_root: PathBuf,
    /// Per-plane store bound handed to every member's cache (bytes).
    pub eviction_limit: u64,
    /// Worker threads per member.
    pub jobs: usize,
    /// Admission queue capacity per member.
    pub queue: usize,
    /// Per-request deadline on every member.
    pub deadline: Duration,
    /// Injection rate (ppm) for the `peer-conn-drop` and
    /// `peer-slow-read` sites on every member — 0 for a quiet fleet.
    pub peer_fault_ppm: u32,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Open a request span plane on every member. Each life gets its own
    /// span seed (mixed from the fleet seed, the slot, and the
    /// generation) so a rejoined member never reissues a dead life's
    /// trace ids.
    pub spans: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            peers: 3,
            seed: 0,
            cache_root: std::env::temp_dir().join("jvmsim-cluster"),
            eviction_limit: 256 * 1024,
            jobs: 2,
            queue: 8,
            deadline: Duration::from_secs(120),
            peer_fault_ppm: 0,
            vnodes: DEFAULT_VNODES,
            spans: false,
        }
    }
}

/// Seed-stream salt for per-member span planes.
const SPAN_SEED_SALT: u64 = 0x5BA2_5EED_7ACE_1D5E;

/// One member's admission ledger plus the cluster counters, frozen from
/// a metrics snapshot. Sums across lives via [`LedgerTotals::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerTotals {
    /// Requests admitted (the ledger's left-hand side).
    pub accepted: u64,
    /// Answered 2xx.
    pub served: u64,
    /// Load-shed 429.
    pub shed: u64,
    /// 408/504 deadline outcomes.
    pub timeout: u64,
    /// Connection dropped before the response was written.
    pub dropped: u64,
    /// Other 4xx/5xx.
    pub errors: u64,
    /// Rows actually computed through a worker.
    pub runs_executed: u64,
    /// Local misses satisfied by a peer's store.
    pub peer_hits: u64,
    /// Peer walks exhausted into a local recompute.
    pub peer_misses: u64,
    /// Extra peer-fetch attempts after the first.
    pub retries: u64,
    /// Entries evicted by store compaction.
    pub evictions: u64,
}

impl LedgerTotals {
    /// Extract the serve-plane counters from a member's metric entries
    /// (the first entry is the server's own registry).
    #[must_use]
    pub fn from_entries(entries: &[MetricsEntry]) -> LedgerTotals {
        let Some(entry) = entries.first() else {
            return LedgerTotals::default();
        };
        let c = |id| entry.snapshot.counter(id);
        LedgerTotals {
            accepted: c(CounterId::ServeAccepted),
            served: c(CounterId::ServeServed),
            shed: c(CounterId::ServeShed),
            timeout: c(CounterId::ServeTimeout),
            dropped: c(CounterId::ServeDropped),
            errors: c(CounterId::ServeErrors),
            runs_executed: c(CounterId::ServeRunsExecuted),
            peer_hits: c(CounterId::ClusterPeerHits),
            peer_misses: c(CounterId::ClusterPeerMisses),
            retries: c(CounterId::ClusterRetries),
            evictions: c(CounterId::ClusterEvictions),
        }
    }

    /// Does the admission ledger balance? (`accepted` equals the sum of
    /// the five exclusive outcome classes.)
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.accepted == self.served + self.shed + self.timeout + self.dropped + self.errors
    }

    /// Add another life's totals into this one.
    pub fn absorb(&mut self, other: &LedgerTotals) {
        self.accepted += other.accepted;
        self.served += other.served;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.dropped += other.dropped;
        self.errors += other.errors;
        self.runs_executed += other.runs_executed;
        self.peer_hits += other.peer_hits;
        self.peer_misses += other.peer_misses;
        self.retries += other.retries;
        self.evictions += other.evictions;
    }
}

/// One fleet slot across its lives.
struct Member {
    dir: PathBuf,
    server: Option<Server>,
    store: Option<CacheStore>,
    /// Health-sweep verdict; quarantined members are skipped by routing.
    quarantined: bool,
    /// Times this slot has (re)started.
    generation: u32,
    /// Accumulated totals from finished lives.
    retired: LedgerTotals,
    /// Ledger balance verdict captured at each death.
    death_ledgers_balanced: Vec<bool>,
    /// Spans captured from finished lives (the ring is drained at each
    /// kill, so a death loses accounting for nothing).
    retired_spans: Vec<SpanRecord>,
    /// Span append/drop totals from finished lives.
    retired_spans_appended: u64,
    /// See [`Member::retired_spans_appended`].
    retired_spans_dropped: u64,
}

/// A running fleet.
pub struct Cluster {
    config: ClusterConfig,
    directory: Arc<PeerDirectory>,
    ring: HashRing,
    members: Vec<Member>,
    /// Fleet-level counters (`cluster_failovers`).
    registry: MetricsRegistry,
}

impl Cluster {
    /// Start `config.peers` members, each on an ephemeral port with its
    /// own store under `cache_root`, and publish them all in the shared
    /// peer directory.
    ///
    /// # Errors
    ///
    /// Store-open or bind failures, with the member index named.
    pub fn start(config: ClusterConfig) -> Result<Cluster, String> {
        let peers = config.peers.max(1);
        let directory = Arc::new(PeerDirectory::new(peers));
        let ring = HashRing::new(peers, config.vnodes.max(1));
        let mut cluster = Cluster {
            members: (0..peers)
                .map(|i| Member {
                    dir: config.cache_root.join(format!("peer-{i}")),
                    server: None,
                    store: None,
                    quarantined: false,
                    generation: 0,
                    retired: LedgerTotals::default(),
                    death_ledgers_balanced: Vec::new(),
                    retired_spans: Vec::new(),
                    retired_spans_appended: 0,
                    retired_spans_dropped: 0,
                })
                .collect(),
            config,
            directory,
            ring,
            registry: MetricsRegistry::new(),
        };
        for i in 0..peers {
            cluster.start_member(i, false)?;
        }
        Ok(cluster)
    }

    /// Member count (fixed).
    #[must_use]
    pub fn peers(&self) -> usize {
        self.members.len()
    }

    /// The shared membership directory (what every member's peer-fetch
    /// tier consults).
    #[must_use]
    pub fn directory(&self) -> &Arc<PeerDirectory> {
        &self.directory
    }

    /// Published address of member `i`, if any.
    #[must_use]
    pub fn addr_of(&self, i: usize) -> Option<SocketAddr> {
        self.directory.get(i)
    }

    /// Is member `i` currently quarantined by the health sweep?
    #[must_use]
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.members.get(i).is_none_or(|m| m.quarantined)
    }

    /// How many times member `i` has (re)started.
    #[must_use]
    pub fn generation(&self, i: usize) -> u32 {
        self.members.get(i).map_or(0, |m| m.generation)
    }

    /// Fleet-level failover count.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.registry
            .snapshot()
            .counter(CounterId::ClusterFailovers)
    }

    fn start_member(&mut self, i: usize, wipe: bool) -> Result<(), String> {
        let spans = self.config.spans.then(|| SpanConfig {
            // Each life draws from its own id stream: mixing the
            // generation in means a rejoined member cannot collide with
            // trace ids its previous life already exported.
            seed: splitmix64(
                self.config.seed
                    ^ SPAN_SEED_SALT
                    ^ ((i as u64) << 8)
                    ^ u64::from(self.members[i].generation),
            ),
            member: i as u32,
            ..SpanConfig::default()
        });
        let member = &mut self.members[i];
        if wipe && member.dir.exists() {
            std::fs::remove_dir_all(&member.dir)
                .map_err(|e| format!("member {i}: wiping {}: {e}", member.dir.display()))?;
        }
        let store = CacheStore::open(&member.dir)
            .map_err(|e| format!("member {i}: opening store: {e}"))?
            .with_eviction_limit(self.config.eviction_limit);
        let seed = self.config.seed;
        let faults = FaultPlan::new(splitmix64(seed ^ (i as u64 + 1)))
            .with_rate(FaultSite::PeerConnDrop, self.config.peer_fault_ppm)
            .with_rate(FaultSite::PeerSlowRead, self.config.peer_fault_ppm);
        let serve_config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: self.config.jobs,
            queue: self.config.queue,
            deadline: self.config.deadline,
            idle: None,
            cache: Some(store.clone()),
            faults,
            peers: Some(PeerView {
                directory: Arc::clone(&self.directory),
                self_index: i,
                policy: RetryPolicy {
                    seed: splitmix64(seed ^ 0xFEE7 ^ (i as u64)),
                    base_ms: 5,
                    cap_ms: 40,
                    attempts: 2,
                    timeout: Duration::from_secs(1),
                },
            }),
            spans,
        };
        let server = Server::start(serve_config).map_err(|e| format!("member {i}: bind: {e}"))?;
        self.directory.set(i, server.local_addr());
        let member = &mut self.members[i];
        member.server = Some(server);
        member.store = Some(store);
        member.quarantined = false;
        member.generation += 1;
        Ok(())
    }

    /// Kill member `i`: drain its daemon and capture its final ledger.
    /// The directory slot is *not* withdrawn — discovering the death is
    /// the health sweep's job. Returns the life's final totals.
    ///
    /// # Errors
    ///
    /// `i` out of range or already dead.
    pub fn kill(&mut self, i: usize) -> Result<LedgerTotals, String> {
        let member = self
            .members
            .get_mut(i)
            .ok_or_else(|| format!("no member {i}"))?;
        let server = member
            .server
            .take()
            .ok_or_else(|| format!("member {i} is already dead"))?;
        if let Some(snap) = server.spans_snapshot() {
            member.retired_spans.extend(snap.records);
            member.retired_spans_appended += snap.appended;
            member.retired_spans_dropped += snap.dropped;
        }
        let totals = LedgerTotals::from_entries(&server.shutdown());
        member.death_ledgers_balanced.push(totals.balanced());
        member.retired.absorb(&totals);
        Ok(totals)
    }

    /// Restart a dead member on a fresh port (same slot, next
    /// generation). `wipe` empties its store first — a replacement node
    /// that lost its disk, the case that exercises the peer-fetch tier
    /// hardest. Publishes the new address and lifts the quarantine.
    ///
    /// # Errors
    ///
    /// Member still alive, or start failures.
    pub fn rejoin(&mut self, i: usize, wipe: bool) -> Result<(), String> {
        if self.members.get(i).is_none_or(|m| m.server.is_some()) {
            return Err(format!("member {i} is not dead"));
        }
        self.start_member(i, wipe)
    }

    /// Probe every directory slot with `GET /healthz` and quarantine the
    /// members that fail (withdrawing them from the directory so peer
    /// fetches stop trying them). Returns the per-member live verdicts.
    pub fn health_sweep(&mut self) -> Vec<bool> {
        let verdicts: Vec<bool> = (0..self.members.len())
            .map(|i| self.directory.get(i).is_some_and(probe_health))
            .collect();
        for (i, &live) in verdicts.iter().enumerate() {
            if live {
                self.members[i].quarantined = false;
            } else {
                self.directory.clear(i);
                self.members[i].quarantined = true;
            }
        }
        verdicts
    }

    /// Route `key` to the first live (non-quarantined) member in ring
    /// order, counting skipped members in `cluster_failovers`. `None`
    /// when the whole fleet is quarantined.
    #[must_use]
    pub fn route(&self, key: u64) -> Option<usize> {
        let (member, failovers) = self
            .ring
            .route_live(key, |m| !self.members[m].quarantined)?;
        self.registry
            .global()
            .add(CounterId::ClusterFailovers, failovers);
        Some(member)
    }

    /// Member `i`'s totals across every life, including the current one.
    #[must_use]
    pub fn member_totals(&self, i: usize) -> LedgerTotals {
        let Some(member) = self.members.get(i) else {
            return LedgerTotals::default();
        };
        let mut totals = member.retired;
        if let Some(server) = &member.server {
            totals.absorb(&LedgerTotals::from_entries(&server.metric_entries()));
        }
        totals
    }

    /// Sum of [`Cluster::member_totals`] over the fleet.
    #[must_use]
    pub fn fleet_totals(&self) -> LedgerTotals {
        let mut totals = LedgerTotals::default();
        for i in 0..self.members.len() {
            totals.absorb(&self.member_totals(i));
        }
        totals
    }

    /// Member `i`'s current-life span snapshot, when it is alive and
    /// tracing.
    #[must_use]
    pub fn member_spans(&self, i: usize) -> Option<jvmsim_serve::SpansSnapshot> {
        self.members
            .get(i)
            .and_then(|m| m.server.as_ref())
            .and_then(Server::spans_snapshot)
    }

    /// Every span the fleet has recorded — retired lives plus live
    /// rings — in ordinal order, with the fleet-wide append/drop totals.
    /// Returns `(appended, dropped, spans)`.
    #[must_use]
    pub fn fleet_spans(&self) -> (u64, u64, Vec<SpanRecord>) {
        let (mut appended, mut dropped) = (0u64, 0u64);
        let mut spans = Vec::new();
        for (i, member) in self.members.iter().enumerate() {
            appended += member.retired_spans_appended;
            dropped += member.retired_spans_dropped;
            spans.extend_from_slice(&member.retired_spans);
            if let Some(snap) = self.member_spans(i) {
                appended += snap.appended;
                dropped += snap.dropped;
                spans.extend(snap.records);
            }
        }
        sort_ordinal(&mut spans);
        (appended, dropped, spans)
    }

    /// Were all of member `i`'s captured death ledgers balanced?
    #[must_use]
    pub fn death_ledgers_balanced(&self, i: usize) -> bool {
        self.members
            .get(i)
            .is_none_or(|m| m.death_ledgers_balanced.iter().all(|&b| b))
    }

    /// Result-plane store size (bytes) per member, by slot.
    #[must_use]
    pub fn store_sizes(&self) -> Vec<u64> {
        self.members
            .iter()
            .map(|m| {
                m.store
                    .as_ref()
                    .map_or(0, |s| s.plane_size(jvmsim_cache::Plane::CellResult))
            })
            .collect()
    }

    /// Drain every live member, capturing final ledgers like
    /// [`Cluster::kill`]. Returns each member's all-lives totals.
    pub fn shutdown_all(&mut self) -> Vec<LedgerTotals> {
        for i in 0..self.members.len() {
            if self.members[i].server.is_some() {
                let _ = self.kill(i);
            }
        }
        (0..self.members.len())
            .map(|i| self.member_totals(i))
            .collect()
    }
}

/// One `GET /healthz` probe with a short budget.
fn probe_health(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
        return false;
    };
    matches!(
        http_request(&mut stream, "GET", "/healthz", None),
        Ok((200, _))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals_balance_and_absorb() {
        let mut a = LedgerTotals {
            accepted: 5,
            served: 3,
            errors: 2,
            ..LedgerTotals::default()
        };
        assert!(a.balanced());
        let b = LedgerTotals {
            accepted: 2,
            timeout: 1,
            dropped: 1,
            runs_executed: 4,
            ..LedgerTotals::default()
        };
        assert!(b.balanced());
        a.absorb(&b);
        assert!(a.balanced());
        assert_eq!(a.accepted, 7);
        assert_eq!(a.runs_executed, 4);
        let broken = LedgerTotals {
            accepted: 1,
            ..LedgerTotals::default()
        };
        assert!(!broken.balanced());
    }

    #[test]
    fn from_entries_survives_emptiness() {
        assert_eq!(LedgerTotals::from_entries(&[]), LedgerTotals::default());
    }
}
