//! `jvmsim-cluster`: fault-tolerant sharded serving over `jvmsim-serve`.
//!
//! One daemon memoizes; a fleet must also *agree* — on who owns each
//! row, on what a served byte means after a member dies, and on how much
//! work a failure is allowed to cost. This crate makes that agreement
//! concrete, one module each:
//!
//! * [`ring`] — consistent-hash routing of run identity: the existing
//!   result-cache digest is the shard key, members own virtual nodes on
//!   a 64-bit ring, and a death moves only the dead member's share.
//! * [`fleet`] — N in-process [`jvmsim_serve`] daemons behind one
//!   shared peer directory, with health-check-driven quarantine,
//!   kill/rejoin across member generations, and admission-ledger
//!   accounting that survives death (each life's final ledger is
//!   captured and must balance on its own).
//! * [`drill`] — the `jprof cluster` kill/rejoin drill: three passes
//!   over the workload × agent matrix asserting byte-identity against
//!   the batch driver, exactly-once compute under health, balanced
//!   ledgers on every life, and stores under the eviction bound.
//!
//! Everything is seeded: the kill schedule, the peer-transport fault
//! plans, and the retry jitter all derive from one `u64`, so a failing
//! drill replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drill;
pub mod fleet;
pub mod ring;

pub use drill::{cluster_drill, ClusterDrillConfig, ClusterDrillReport};
pub use fleet::{Cluster, ClusterConfig, LedgerTotals};
pub use ring::{key_of, HashRing, DEFAULT_VNODES};
