//! Consistent-hash routing of run identity onto fleet members.
//!
//! Each member owns [`points`](HashRing) on a 64-bit ring — `vnodes`
//! virtual nodes hashed from `(member, replica)` with [`splitmix64`] —
//! and a key routes to the owner of its successor point. Virtual nodes
//! smooth the key distribution; successor-walk failover means a dead
//! member's share spills onto the next live owners without moving any
//! other key (the property that keeps a kill from invalidating every
//! member's warm cache at once).
//!
//! The shard key is the existing run identity: the first eight bytes of
//! the [`SessionSpec`] result digest (see [`key_of`]), so routing is a
//! pure function of the same bytes that address the result cache.
//!
//! [`SessionSpec`]: jnativeprof::session::SessionSpec

use std::collections::BTreeMap;

use jvmsim_faults::splitmix64;

/// Virtual nodes per member when the caller has no opinion.
pub const DEFAULT_VNODES: usize = 64;

/// Per-operand salts so member and replica indices decorrelate.
const MEMBER_SALT: u64 = 0xA24B_AED4_963E_E407;
const REPLICA_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The ring: point → owning member, plus the member count.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: BTreeMap<u64, usize>,
    members: usize,
}

impl HashRing {
    /// A ring over `members` members with `vnodes` virtual nodes each
    /// (floored at 1). Construction is pure: the same `(members,
    /// vnodes)` always yields the same ring.
    #[must_use]
    pub fn new(members: usize, vnodes: usize) -> HashRing {
        let mut points = BTreeMap::new();
        for m in 0..members {
            for v in 0..vnodes.max(1) {
                let point = splitmix64(
                    splitmix64((m as u64 + 1).wrapping_mul(MEMBER_SALT))
                        ^ (v as u64 + 1).wrapping_mul(REPLICA_SALT),
                );
                points.insert(point, m);
            }
        }
        HashRing { points, members }
    }

    /// Member count the ring was built for.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// The home member for `key`: the owner of the first point at or
    /// after it, wrapping. `None` only for an empty ring.
    #[must_use]
    pub fn route(&self, key: u64) -> Option<usize> {
        self.points
            .range(key..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &m)| m)
    }

    /// The first *live* member in successor order from `key`'s home,
    /// with the number of distinct dead members skipped to reach it
    /// (the failover count). `None` when no member is live.
    #[must_use]
    pub fn route_live(&self, key: u64, is_live: impl Fn(usize) -> bool) -> Option<(usize, u64)> {
        let mut seen = vec![false; self.members];
        let mut failovers = 0u64;
        for (_, &m) in self.points.range(key..).chain(self.points.range(..key)) {
            if seen[m] {
                continue;
            }
            seen[m] = true;
            if is_live(m) {
                return Some((m, failovers));
            }
            failovers += 1;
        }
        None
    }
}

/// The shard key of a result digest: its first eight bytes, big-endian —
/// uniform because the digest is, and stable because the digest already
/// names the run identity.
#[must_use]
pub fn key_of(digest: &[u8; 32]) -> u64 {
    u64::from_be_bytes(digest[..8].try_into().unwrap_or([0; 8]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = HashRing::new(3, DEFAULT_VNODES);
        let b = HashRing::new(3, DEFAULT_VNODES);
        for k in (0..1000u64).map(splitmix64) {
            let m = a.route(k);
            assert_eq!(m, b.route(k));
            assert!(m.unwrap() < 3);
        }
        assert_eq!(HashRing::new(0, 8).route(1), None);
    }

    #[test]
    fn virtual_nodes_spread_the_keyspace() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for k in (0..3000u64).map(|i| splitmix64(i ^ 0xABCD)) {
            counts[ring.route(k).unwrap()] += 1;
        }
        for (m, &c) in counts.iter().enumerate() {
            assert!(
                c > 3000 / 10,
                "member {m} owns {c}/3000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn failover_skips_dead_members_and_counts_them() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        for k in (0..200u64).map(|i| splitmix64(i ^ 0x5A5A)) {
            let home = ring.route(k).unwrap();
            let (alive, failovers) = ring.route_live(k, |m| m != home).unwrap();
            assert_ne!(alive, home);
            assert_eq!(failovers, 1, "exactly the home member was skipped");
            // All dead: nowhere to go.
            assert_eq!(ring.route_live(k, |_| false), None);
            // None dead: home wins with zero failovers.
            assert_eq!(ring.route_live(k, |_| true), Some((home, 0)));
        }
    }

    #[test]
    fn only_the_dead_members_share_moves() {
        // Kill member 2: every key homed on 0 or 1 must route unchanged.
        let ring = HashRing::new(3, DEFAULT_VNODES);
        for k in (0..500u64).map(|i| splitmix64(i ^ 0x77)) {
            let home = ring.route(k).unwrap();
            let (rerouted, _) = ring.route_live(k, |m| m != 2).unwrap();
            if home != 2 {
                assert_eq!(rerouted, home, "live members' keys must not move");
            }
        }
    }

    #[test]
    fn key_of_uses_the_digest_prefix() {
        let mut digest = [0u8; 32];
        digest[0] = 0x12;
        digest[7] = 0x34;
        digest[8] = 0xFF; // beyond the prefix: ignored
        assert_eq!(key_of(&digest), 0x1200_0000_0000_0034);
    }
}
