//! `jprof cluster`: the kill/rejoin drill.
//!
//! Three passes over the workload × agent matrix against a live fleet,
//! asserting the robustness invariants on every cell:
//!
//! 1. **Healthy** — every cell routes to its ring home and is computed
//!    exactly once fleet-wide (`Σ serve_runs_executed == cells`), and
//!    every served row is byte-identical to the batch driver's (an
//!    independently computed reference, not the fleet's own output).
//! 2. **Kill** — a seeded `member-crash` schedule kills `kill` members
//!    mid-pass. The next failed request triggers a health sweep, the
//!    corpse is quarantined, routing fails over along the ring, and the
//!    successor recomputes only what the failure actually lost. Rows
//!    stay byte-identical; each death's final admission ledger must
//!    balance.
//! 3. **Rejoin** — the dead members come back *with wiped stores* (a
//!    replacement node). Their keys route home again, miss locally, and
//!    are refilled over the peer-fetch tier from the survivors — the
//!    pass that proves a rejoin costs peer traffic, not recomputes.
//!
//! After the passes the whole fleet drains; every member's all-lives
//! ledger must balance and every store must sit under the eviction
//! bound.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use jnativeprof::cell::{cell_row_json, CellQuantities};
use jnativeprof::session::SessionSpec;
use jvmsim_faults::{splitmix64, FaultInjector, FaultPlan, FaultSite};
use jvmsim_pcl::PAPER_CLOCK_HZ;
use jvmsim_serve::client::{connect_with_retry, http_request};
use jvmsim_serve::RunSpec;
use jvmsim_spans::{
    decode_spans, encode_spans, partition_violations, stitched_traces, StageLatencyTable,
};
use jvmsim_trace::{ChromeSpanExporter, SpanExporter};

use crate::fleet::{Cluster, ClusterConfig};
use crate::ring::key_of;

/// The full workload axis, JVM98 order plus the throughput analog.
const WORKLOADS: [&str; 8] = [
    "compress",
    "jess",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
    "jbb",
];

/// The agent axis, matrix order (request-body labels).
const AGENTS: [&str; 5] = ["original", "spa", "ipa", "alloc", "lock"];

/// Drill configuration.
#[derive(Debug, Clone)]
pub struct ClusterDrillConfig {
    /// Fleet size.
    pub peers: usize,
    /// Members to kill during pass 2 (clamped to `peers - 1`).
    pub kill: usize,
    /// Seed for the kill schedule, member fault plans, and retry jitter.
    pub seed: u64,
    /// Problem size for the JVM98-analog workloads (`jbb` runs at the
    /// conventional tenth, floored at 1).
    pub size: u32,
    /// Workload subset; `None` is the full eight-workload axis.
    pub workloads: Option<Vec<String>>,
    /// Per-plane store bound per member (bytes).
    pub eviction_limit: u64,
    /// Fleet store root; `None` uses a per-process temp dir that the
    /// drill removes afterwards.
    pub cache_root: Option<PathBuf>,
    /// When set, pass-1 rows are saved as
    /// `run-<workload>-<agent>-<size>.json` for external comparison
    /// against batch-driver rows.
    pub rows_dir: Option<PathBuf>,
    /// Injection rate (ppm) for the peer transport fault sites on every
    /// member.
    pub peer_fault_ppm: u32,
    /// Trace every request: per-member span planes, fleet-wide partition
    /// and stitching checks, the per-stage latency table, and the wire
    /// codec cross-check.
    pub spans: bool,
    /// When set (and `spans` is on), export the fleet's spans as Chrome
    /// `trace_event` JSON here after the drill.
    pub trace_out: Option<PathBuf>,
}

impl Default for ClusterDrillConfig {
    fn default() -> ClusterDrillConfig {
        ClusterDrillConfig {
            peers: 3,
            kill: 1,
            seed: 0,
            size: 1,
            workloads: None,
            eviction_limit: 256 * 1024,
            cache_root: None,
            rows_dir: None,
            peer_fault_ppm: 50_000,
            spans: false,
            trace_out: None,
        }
    }
}

/// What the drill observed and asserted.
#[derive(Debug, Clone, Default)]
pub struct ClusterDrillReport {
    /// Fleet size.
    pub peers: usize,
    /// Matrix size.
    pub cells: usize,
    /// Members killed (slot indices, kill order).
    pub killed: Vec<usize>,
    /// Fleet-wide rows computed by the end of each pass.
    pub runs_after_pass: [u64; 3],
    /// Served rows that differed from the batch reference (must be 0).
    pub byte_mismatches: usize,
    /// Peer-fetch hits / misses / retries across the fleet.
    pub peer_hits: u64,
    /// Peer walks that degraded to a recompute.
    pub peer_misses: u64,
    /// Extra peer-fetch attempts after the first.
    pub retries: u64,
    /// Routing failovers past quarantined members.
    pub failovers: u64,
    /// Store-compaction evictions across the fleet.
    pub evictions: u64,
    /// Final result-plane bytes per member.
    pub store_bytes: Vec<u64>,
    /// The configured store bound.
    pub eviction_limit: u64,
    /// Were span planes open? (The span fields below are meaningful only
    /// when they were.)
    pub spans_enabled: bool,
    /// Spans surviving in the fleet's rings (retired lives included).
    pub spans_total: u64,
    /// Spans the fleet dropped (ring eviction or injected saturation).
    pub spans_dropped: u64,
    /// Roots whose children failed to tile them exactly (must be 0).
    pub span_partition_violations: usize,
    /// Traces with spans on two or more members (peer-fetch hops
    /// stitched across the fleet).
    pub stitched_traces: usize,
    /// Fleet-wide per-stage latency table.
    pub stage_table: StageLatencyTable,
    /// Invariant breaks, each described (empty ⇔ clean).
    pub violations: Vec<String>,
}

impl ClusterDrillReport {
    /// Did every invariant hold?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic drill summary (stdout).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster peers {} cells {} killed {:?}\n",
            self.peers, self.cells, self.killed
        ));
        out.push_str(&format!(
            "cluster runs_executed pass1 {} pass2 {} pass3 {}\n",
            self.runs_after_pass[0], self.runs_after_pass[1], self.runs_after_pass[2]
        ));
        out.push_str(&format!(
            "cluster peer_hits {} peer_misses {} retries {} failovers {} evictions {}\n",
            self.peer_hits, self.peer_misses, self.retries, self.failovers, self.evictions
        ));
        out.push_str(&format!(
            "cluster byte_mismatches {}\n",
            self.byte_mismatches
        ));
        out.push_str(&format!(
            "cluster store_bytes {:?} limit {}\n",
            self.store_bytes, self.eviction_limit
        ));
        if self.spans_enabled {
            out.push_str(&format!(
                "cluster spans total {} dropped {} partition_violations {} stitched_traces {}\n",
                self.spans_total,
                self.spans_dropped,
                self.span_partition_violations,
                self.stitched_traces
            ));
            out.push_str(&self.stage_table.render("cluster"));
        }
        for violation in &self.violations {
            out.push_str(&format!("cluster VIOLATION {violation}\n"));
        }
        out.push_str(if self.is_clean() {
            "cluster verdict CLEAN\n"
        } else {
            "cluster verdict DEGRADED\n"
        });
        out
    }
}

/// One matrix cell: the request body and the spec whose digest shards it.
struct DrillCell {
    body: String,
    spec: SessionSpec,
    key: u64,
    file_name: String,
}

/// Run the drill.
///
/// # Errors
///
/// Setup failures only (store open, bind, reference-run failures);
/// invariant breaks are *reported* on the
/// [`violations`](ClusterDrillReport::violations) list, not errors.
pub fn cluster_drill(config: &ClusterDrillConfig) -> Result<ClusterDrillReport, String> {
    let cells = build_cells(config)?;
    let mut report = ClusterDrillReport {
        peers: config.peers.max(1),
        cells: cells.len(),
        eviction_limit: config.eviction_limit,
        ..ClusterDrillReport::default()
    };

    // The batch oracle: every cell's row computed independently of the
    // fleet (no cache, no HTTP) through the same Session API the suite
    // driver uses. Row bytes are a pure function of run identity, so
    // this is exactly what `jprof suite` would emit for the cell.
    let mut reference = Vec::with_capacity(cells.len());
    for cell in &cells {
        reference.push(reference_row(&cell.spec)?);
    }

    let (cache_root, ephemeral_root) = match &config.cache_root {
        Some(root) => (root.clone(), false),
        None => (
            std::env::temp_dir().join(format!(
                "jvmsim-cluster-{}-{:x}",
                std::process::id(),
                config.seed
            )),
            true,
        ),
    };
    if ephemeral_root && cache_root.exists() {
        let _ = std::fs::remove_dir_all(&cache_root);
    }
    let mut cluster = Cluster::start(ClusterConfig {
        peers: config.peers.max(1),
        seed: config.seed,
        cache_root: cache_root.clone(),
        eviction_limit: config.eviction_limit,
        peer_fault_ppm: config.peer_fault_ppm,
        spans: config.spans,
        ..ClusterConfig::default()
    })?;
    report.spans_enabled = config.spans;

    if let Some(dir) = &config.rows_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }

    // Pass 1: healthy fleet. Every row must match the oracle and the
    // fleet must compute each cell exactly once.
    run_pass(
        &mut cluster,
        &cells,
        &reference,
        &mut report,
        |row, cell| {
            if let Some(dir) = &config.rows_dir {
                let _ = std::fs::write(dir.join(&cell.file_name), row.as_bytes());
            }
        },
    );
    let after1 = cluster.fleet_totals().runs_executed;
    report.runs_after_pass[0] = after1;
    if after1 != cells.len() as u64 {
        report.violations.push(format!(
            "healthy pass computed {after1} rows for {} cells (double-compute or lost run)",
            cells.len()
        ));
    }
    if config.spans {
        // The wire-codec cross-check: what member 0 serves on
        // `GET /v1/spans/bin` must decode to exactly its in-process ring.
        // The driver is sequential, so nothing lands between the scrape
        // and the snapshot.
        check_span_codec(&cluster, &mut report);
    }

    // Pass 2: the seeded crash schedule. Before each request the drill
    // consults the member-crash site; an injection (or the midpoint
    // backstop, so `--kill N` always means N) kills the *home* member
    // of the cell about to be requested — the worst case for routing.
    let crash_injector = FaultInjector::new(
        FaultPlan::new(splitmix64(config.seed ^ 0xC4A5)).with_rate(FaultSite::MemberCrash, 150_000),
    );
    let kill_budget = config.kill.min(report.peers.saturating_sub(1));
    for (idx, cell) in cells.iter().enumerate() {
        let force = idx == cells.len() / 2;
        if report.killed.len() < kill_budget
            && (crash_injector.inject(FaultSite::MemberCrash).is_some() || force)
        {
            if let Some(victim) = cluster.route(cell.key) {
                match cluster.kill(victim) {
                    Ok(totals) => {
                        if !totals.balanced() {
                            report.violations.push(format!(
                                "member {victim} died with an unbalanced ledger: {totals:?}"
                            ));
                        }
                        report.killed.push(victim);
                    }
                    Err(e) => report.violations.push(format!("kill: {e}")),
                }
            }
        }
        request_and_check(&mut cluster, cell, &reference[idx], &mut report);
    }
    report.runs_after_pass[1] = cluster.fleet_totals().runs_executed;

    // Pass 3: rejoin with wiped stores, then the full matrix again. The
    // rejoined members' cells must come back over the peer-fetch tier.
    for &victim in &report.killed.clone() {
        if let Err(e) = cluster.rejoin(victim, true) {
            report.violations.push(format!("rejoin {victim}: {e}"));
        }
    }
    cluster.health_sweep();
    run_pass(&mut cluster, &cells, &reference, &mut report, |_, _| {});
    report.runs_after_pass[2] = cluster.fleet_totals().runs_executed;

    // Drain everything and audit the survivors and the rejoined alike.
    let final_totals = cluster.shutdown_all();
    for (i, totals) in final_totals.iter().enumerate() {
        if !totals.balanced() {
            report.violations.push(format!(
                "member {i} all-lives ledger unbalanced: {totals:?}"
            ));
        }
        if !cluster.death_ledgers_balanced(i) {
            report
                .violations
                .push(format!("member {i} had an unbalanced death ledger"));
        }
    }
    let fleet = cluster.fleet_totals();
    report.peer_hits = fleet.peer_hits;
    report.peer_misses = fleet.peer_misses;
    report.retries = fleet.retries;
    report.evictions = fleet.evictions;
    report.failovers = cluster.failovers();
    report.store_bytes = cluster.store_sizes();
    for (i, &bytes) in report.store_bytes.iter().enumerate() {
        if bytes > config.eviction_limit {
            report.violations.push(format!(
                "member {i} store {bytes} bytes exceeds the {} byte bound",
                config.eviction_limit
            ));
        }
    }
    if !report.killed.is_empty() && report.failovers == 0 {
        report
            .violations
            .push("members died but routing never failed over".to_owned());
    }

    if config.spans {
        // Every member is dead by now, so the fleet view is all retired
        // rings — the complete span record of the drill.
        let (appended, dropped, spans) = cluster.fleet_spans();
        report.spans_total = spans.len() as u64;
        report.spans_dropped = dropped;
        if appended != spans.len() as u64 + dropped {
            report.violations.push(format!(
                "span accounting leak: appended {appended} != surviving {} + dropped {dropped}",
                spans.len()
            ));
        }
        let partition = partition_violations(&spans);
        report.span_partition_violations = partition.len();
        for violation in partition {
            report
                .violations
                .push(format!("span partition: {violation}"));
        }
        report.stitched_traces = stitched_traces(&spans);
        if report.peers >= 2 && report.stitched_traces == 0 {
            report
                .violations
                .push("no trace stitched across members despite a multi-member fleet".to_owned());
        }
        report.stage_table.observe_all(&spans);
        if let Some(path) = &config.trace_out {
            let exporter = ChromeSpanExporter {
                clock_hz: PAPER_CLOCK_HZ,
            };
            let mut out = Vec::new();
            if let Err(e) = exporter.export(&spans, &mut out) {
                report.violations.push(format!("chrome span export: {e}"));
            } else if let Err(e) = std::fs::write(path, &out) {
                report
                    .violations
                    .push(format!("write {}: {e}", path.display()));
            }
        }
    }

    if ephemeral_root {
        let _ = std::fs::remove_dir_all(&cache_root);
    }
    Ok(report)
}

/// One full pass: route, request, byte-compare every cell.
fn run_pass(
    cluster: &mut Cluster,
    cells: &[DrillCell],
    reference: &[String],
    report: &mut ClusterDrillReport,
    mut on_row: impl FnMut(&str, &DrillCell),
) {
    for (idx, cell) in cells.iter().enumerate() {
        if let Some(row) = request_and_check(cluster, cell, &reference[idx], report) {
            on_row(&row, cell);
        }
    }
}

/// Route and serve one cell, with health-sweep-driven failover: a
/// transport failure quarantines whatever the sweep finds dead and
/// retries on the next live owner. Byte-compares the row against the
/// oracle. Returns the row when one was served.
fn request_and_check(
    cluster: &mut Cluster,
    cell: &DrillCell,
    reference: &str,
    report: &mut ClusterDrillReport,
) -> Option<String> {
    // Up to one attempt per member plus one: every retry follows a
    // sweep, so the loop shrinks the live set or succeeds.
    for _ in 0..=cluster.peers() {
        let Some(member) = cluster.route(cell.key) else {
            report
                .violations
                .push(format!("{}: whole fleet quarantined", cell.file_name));
            return None;
        };
        let Some(addr) = cluster.addr_of(member) else {
            cluster.health_sweep();
            continue;
        };
        match send_run(addr, &cell.body) {
            Ok((200, row)) => {
                if row != reference {
                    report.byte_mismatches += 1;
                    report.violations.push(format!(
                        "{}: served row differs from the batch row",
                        cell.file_name
                    ));
                }
                return Some(row);
            }
            Ok((status, body)) => {
                report.violations.push(format!(
                    "{}: member {member} answered {status}: {}",
                    cell.file_name,
                    body.trim()
                ));
                return None;
            }
            Err(_) => {
                // Dead or dying member: let the health sweep find out
                // and fail over on the next loop turn.
                cluster.health_sweep();
            }
        }
    }
    report.violations.push(format!(
        "{}: no member could serve the cell",
        cell.file_name
    ));
    None
}

/// POST one run spec to a member.
fn send_run(addr: SocketAddr, body: &str) -> Result<(u16, String), String> {
    let mut stream = connect_with_retry(&addr.to_string(), Duration::from_millis(500))?;
    http_request(&mut stream, "POST", "/v1/run", Some(body))
}

/// Scrape member 0's `GET /v1/spans/bin`, decode the wire codec, and
/// require byte-exact agreement with the in-process ring — the check
/// that keeps the binary format honest against a live producer.
fn check_span_codec(cluster: &Cluster, report: &mut ClusterDrillReport) {
    let fail = |report: &mut ClusterDrillReport, what: &str| {
        report.violations.push(format!("span codec: {what}"));
    };
    let Some(snap) = cluster.member_spans(0) else {
        return fail(report, "member 0 has no span plane");
    };
    let Some(addr) = cluster.addr_of(0) else {
        return fail(report, "member 0 has no published address");
    };
    let scraped = connect_with_retry(&addr.to_string(), Duration::from_millis(500))
        .and_then(|mut s| http_request(&mut s, "GET", "/v1/spans/bin", None));
    let bytes = match scraped {
        Ok((200, body)) => match decode_hex(body.trim()) {
            Some(bytes) => bytes,
            None => return fail(report, "scrape body is not hex"),
        },
        Ok((status, _)) => return fail(report, &format!("scrape answered {status}")),
        Err(e) => return fail(report, &format!("scrape failed: {e}")),
    };
    if bytes != encode_spans(&snap.records) {
        return fail(report, "wire bytes differ from the in-process encoding");
    }
    match decode_spans(&bytes) {
        Some(decoded) if decoded == snap.records => {}
        Some(_) => fail(report, "decoded records differ from the in-process ring"),
        None => fail(report, "wire bytes fail to decode"),
    }
}

/// Strict lowercase-hex decode (the spans endpoint emits lowercase).
fn decode_hex(s: &str) -> Option<Vec<u8>> {
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            _ => None,
        }
    }
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.chunks(2)
        .map(|pair| Some(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

/// The batch oracle for one cell (no cache, no transport).
fn reference_row(spec: &SessionSpec) -> Result<String, String> {
    let run = spec.run().map_err(|e| {
        format!(
            "reference run {}/{}: {e}",
            spec.workload,
            spec.agent.label()
        )
    })?;
    let cell = CellQuantities::from_run(&run);
    Ok(cell_row_json(
        &spec.workload,
        spec.agent.label(),
        spec.size.0,
        &cell,
    ))
}

/// Enumerate the matrix: selected workloads × the five agents, with the
/// conventional JBB size scaling, sharded by result-key digest.
fn build_cells(config: &ClusterDrillConfig) -> Result<Vec<DrillCell>, String> {
    let workloads: Vec<String> = match &config.workloads {
        Some(list) if !list.is_empty() => list.clone(),
        _ => WORKLOADS.iter().map(|w| (*w).to_owned()).collect(),
    };
    let mut cells = Vec::new();
    for workload in &workloads {
        let size = if workload == "jbb" {
            config.size.max(10) / 10
        } else {
            config.size
        };
        for agent in AGENTS {
            let run_spec = RunSpec {
                workload: workload.clone(),
                agent: agent.to_owned(),
                size,
                tiers: "full".to_owned(),
            };
            let body = run_spec.to_json();
            let spec = run_spec
                .to_session_spec()
                .map_err(|e| format!("cell {workload}/{agent}: {e}"))?;
            let key = spec
                .with_session(|s| s.result_key())
                .map_err(|e| format!("cell {workload}/{agent}: {e}"))
                .map(|k| key_of(&k.digest().0))?;
            cells.push(DrillCell {
                body,
                file_name: format!("run-{workload}-{agent}-{size}.json"),
                spec,
                key,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_forty_cells_with_jbb_scaling() {
        let cells = build_cells(&ClusterDrillConfig {
            size: 10,
            ..ClusterDrillConfig::default()
        })
        .unwrap();
        assert_eq!(cells.len(), 40);
        let jbb: Vec<_> = cells
            .iter()
            .filter(|c| c.file_name.starts_with("run-jbb-"))
            .collect();
        assert_eq!(jbb.len(), 5);
        assert!(jbb.iter().all(|c| c.file_name.ends_with("-1.json")));
        // Shard keys are distinct across the matrix (digest prefixes).
        let mut keys: Vec<u64> = cells.iter().map(|c| c.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 40, "shard keys must not collide");
    }

    #[test]
    fn report_renders_verdict_and_violations() {
        let mut report = ClusterDrillReport {
            peers: 3,
            cells: 40,
            ..ClusterDrillReport::default()
        };
        assert!(report.is_clean());
        assert!(report.render_summary().contains("cluster verdict CLEAN"));
        report.violations.push("something broke".to_owned());
        let summary = report.render_summary();
        assert!(summary.contains("cluster VIOLATION something broke"));
        assert!(summary.contains("cluster verdict DEGRADED"));
    }
}
