//! End-to-end kill/rejoin drill on a small matrix: a 2-member fleet,
//! one seeded kill, one wiped rejoin, every invariant checked.

use jvmsim_cluster::{cluster_drill, ClusterDrillConfig};

#[test]
fn small_fleet_survives_a_kill_and_a_wiped_rejoin() {
    let root = std::env::temp_dir().join(format!("jvmsim-cluster-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ClusterDrillConfig {
        peers: 2,
        kill: 1,
        seed: 7,
        size: 1,
        workloads: Some(vec!["db".to_owned(), "jess".to_owned()]),
        cache_root: Some(root.clone()),
        // Quiet peer transport: this test gates on the exactly-once and
        // byte-identity invariants, not on fault-site survival (the
        // seeded-chaos path is exercised by the `jprof cluster` drill).
        peer_fault_ppm: 0,
        ..ClusterDrillConfig::default()
    };
    let report = cluster_drill(&config).expect("drill setup");
    let _ = std::fs::remove_dir_all(&root);

    assert!(
        report.is_clean(),
        "drill violations: {:#?}\n{}",
        report.violations,
        report.render_summary()
    );
    assert_eq!(report.cells, 10, "2 workloads x 5 agents");
    assert_eq!(report.killed.len(), 1, "exactly one member must die");
    // Healthy pass: every cell computed exactly once fleet-wide.
    assert_eq!(report.runs_after_pass[0], 10);
    // A single kill plus a wiped rejoin can force at most one recompute
    // per cell: pass 2 recomputes what the death rerouted, pass 3
    // recomputes only entries whose sole copy died with the wiped disk
    // (cells the victim served from its own cache before the kill).
    let kill_recomputes = report.runs_after_pass[1] - report.runs_after_pass[0];
    let rejoin_recomputes = report.runs_after_pass[2] - report.runs_after_pass[1];
    assert!(
        kill_recomputes + rejoin_recomputes <= report.cells as u64,
        "one failure cost more than one recompute per cell: {report:#?}"
    );
    // Everything the survivor recomputed in pass 2 must come back to the
    // wiped rejoiner over the peer tier, not as fresh runs.
    assert_eq!(
        report.peer_hits, kill_recomputes,
        "rejoin must refill the survivor-held entries from peers"
    );
    assert!(report.peer_hits > 0, "rejoin never touched the peer tier");
    assert!(report.failovers > 0, "the kill never forced a failover");
    assert_eq!(report.byte_mismatches, 0);
    for (i, &bytes) in report.store_bytes.iter().enumerate() {
        assert!(
            bytes <= report.eviction_limit,
            "member {i} store {bytes} over bound {}",
            report.eviction_limit
        );
    }
}

#[test]
fn traced_drill_partitions_every_root_and_stitches_the_fleet() {
    let root = std::env::temp_dir().join(format!("jvmsim-cluster-spans-it-{}", std::process::id()));
    let trace_path = root.join("fleet-trace.json");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create drill root");
    let config = ClusterDrillConfig {
        peers: 2,
        kill: 1,
        seed: 11,
        size: 1,
        workloads: Some(vec!["db".to_owned(), "jess".to_owned()]),
        cache_root: Some(root.join("stores")),
        peer_fault_ppm: 0,
        spans: true,
        trace_out: Some(trace_path.clone()),
        ..ClusterDrillConfig::default()
    };
    let report = cluster_drill(&config).expect("drill setup");
    let trace = std::fs::read_to_string(&trace_path);
    let _ = std::fs::remove_dir_all(&root);

    assert!(
        report.is_clean(),
        "drill violations: {:#?}\n{}",
        report.violations,
        report.render_summary()
    );
    assert!(report.spans_enabled);
    assert!(report.spans_total > 0, "a traced drill must record spans");
    assert_eq!(report.span_partition_violations, 0);
    // Cold pass-1 misses walk the peer tier, and the peer's /v1/cell
    // answer is traced under the propagated context — so a 2-member
    // fleet must stitch at least one trace.
    assert!(
        report.stitched_traces >= 1,
        "no trace crossed the fleet: {}",
        report.render_summary()
    );
    let summary = report.render_summary();
    assert!(summary.contains("partition_violations 0"), "{summary}");
    assert!(summary.contains("cluster stage recompute"), "{summary}");
    let trace = trace.expect("chrome trace written");
    assert!(trace.contains("\"traceEvents\""), "not a chrome trace");
    assert!(
        trace.contains("\"name\":\"member-1\""),
        "missing fleet lane"
    );
}
