//! LOCK — the raw-monitor contention profiler.
//!
//! The simulated VM has no Java-level `monitorenter`; the synchronization
//! that exists — and that the paper's own agents lean on — is the JVMTI
//! raw-monitor plane. LOCK profiles exactly that plane: it enables the
//! monitor ledger (gated on `can_observe_raw_monitors`) and then, like
//! SPA/IPA, funnels its own per-thread bookkeeping through a raw monitor
//! of its own, so the agent's real synchronization traffic is what gets
//! measured. Contention is modeled deterministically: an entry by a
//! thread other than the monitor's previous owner is contended, and the
//! waiting thread is charged the previous owner's last hold duration —
//! cycles that land in the `lock_probe` attribution bucket and on the
//! waiter's PCL clock.

use std::fmt;
use std::sync::{Arc, OnceLock};

use jvmsim_jvmti::{
    Agent, AgentHost, Capabilities, EventType, JvmtiEnv, JvmtiError, LedgerSnapshot, MonitorRow,
    ProbeKind, RawMonitor,
};
use jvmsim_vm::ThreadId;

#[derive(Debug, Default)]
struct LockTotals {
    thread_starts: u64,
    thread_ends: u64,
}

/// The LOCK agent. Attach with [`jvmsim_jvmti::attach`]; read the
/// [`LockReport`] after the run.
#[derive(Default)]
pub struct LockAgent {
    env: OnceLock<JvmtiEnv>,
    totals: OnceLock<RawMonitor<LockTotals>>,
}

impl fmt::Debug for LockAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockAgent")
            .field("attached", &self.env.get().is_some())
            .finish()
    }
}

impl LockAgent {
    /// A fresh, unattached agent.
    pub fn new() -> Arc<LockAgent> {
        Arc::new(LockAgent::default())
    }

    /// The accumulated contention profile. Defaults (no monitors) if the
    /// agent was never attached.
    pub fn report(&self) -> LockReport {
        let snapshot = self
            .env
            .get()
            .map(|env| env.monitor_ledger().snapshot())
            .unwrap_or_default();
        LockReport { snapshot }
    }

    /// Update the global statistics under the agent's own raw monitor —
    /// the paper's "overall profiling statistics … updated upon thread
    /// termination" pattern, which is precisely the traffic the ledger
    /// observes.
    fn update_totals(&self, thread: ThreadId, start: bool) {
        let (Some(env), Some(totals)) = (self.env.get(), self.totals.get()) else {
            return;
        };
        let _span = env.probe_span(thread, ProbeKind::Lock);
        let mut g = totals.enter(thread);
        // The update itself costs cycles *while the monitor is held* —
        // this hold duration is what prices the next contended entry.
        env.charge(thread, env.costs().agent_logic);
        if start {
            g.thread_starts += 1;
        } else {
            g.thread_ends += 1;
        }
    }
}

impl Agent for LockAgent {
    fn on_load(&self, host: &mut AgentHost<'_>) -> Result<(), JvmtiError> {
        host.add_capabilities(Capabilities::lock());
        host.observe_raw_monitors()?;
        host.enable_event(EventType::ThreadStart)?;
        host.enable_event(EventType::ThreadEnd)?;
        host.enable_event(EventType::VmDeath)?;
        let env = host.env();
        if let Some(trace) = host.vm().trace_sink() {
            env.monitor_ledger().set_trace(trace);
        }
        let _ = self
            .totals
            .set(env.create_raw_monitor("LOCK totals", LockTotals::default()));
        let _ = self.env.set(env);
        Ok(())
    }

    fn thread_start(&self, thread: ThreadId) {
        self.update_totals(thread, true);
    }

    fn thread_end(&self, thread: ThreadId) {
        self.update_totals(thread, false);
    }
}

/// The LOCK agent's end-of-run profile: a snapshot of the monitor ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockReport {
    /// The ledger: every registered monitor plus the per-thread blocked
    /// cycle counts.
    pub snapshot: LedgerSnapshot,
}

impl LockReport {
    /// Per-monitor rows, in monitor-creation order.
    pub fn monitors(&self) -> &[MonitorRow] {
        &self.snapshot.monitors
    }

    /// Total acquisitions across all monitors.
    pub fn total_entries(&self) -> u64 {
        self.snapshot.total_entries()
    }

    /// Total contended (recorded) acquisitions.
    pub fn total_contended(&self) -> u64 {
        self.snapshot.total_contended()
    }

    /// Total blocked cycles (per-monitor side of the double ledger).
    pub fn total_blocked_cycles(&self) -> u64 {
        self.snapshot.total_blocked()
    }

    /// Total contention records diverted by the fault plane.
    pub fn total_discarded(&self) -> u64 {
        self.snapshot.total_discarded()
    }

    /// Verify the ledger invariants; each violation becomes one line.
    ///
    /// * `contended ≤ entries` per monitor (and discards never exceed the
    ///   contention they were diverted from);
    /// * the blocked-cycle ledger balances: cycles charged to waiting
    ///   threads equal cycles accounted against monitors.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for m in &self.snapshot.monitors {
            if m.contended + m.discarded > m.entries {
                violations.push(format!(
                    "monitor {:?}: contended {} + discarded {} exceed entries {}",
                    m.name, m.contended, m.discarded, m.entries
                ));
            }
        }
        let per_thread: u64 = self.snapshot.per_thread_blocked.iter().sum();
        if per_thread != self.total_blocked_cycles() {
            violations.push(format!(
                "blocked-cycle ledger unbalanced: {} charged to threads vs {} against monitors",
                per_thread,
                self.total_blocked_cycles()
            ));
        }
        violations
    }
}

impl fmt::Display for LockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LOCK: {} entries / {} contended / {} cycles blocked ({} records discarded)",
            self.total_entries(),
            self.total_contended(),
            self.total_blocked_cycles(),
            self.total_discarded()
        )?;
        writeln!(
            f,
            "{:<28} {:>8} {:>10} {:>16} {:>10}",
            "monitor", "entries", "contended", "blocked_cycles", "discarded"
        )?;
        for m in &self.snapshot.monitors {
            writeln!(
                f,
                "{:<28} {:>8} {:>10} {:>16} {:>10}",
                m.name, m.entries, m.contended, m.blocked_cycles, m.discarded
            )?;
        }
        Ok(())
    }
}
