//! # nativeprof-agents — the third axis of the profiling matrix
//!
//! The paper's SPA/IPA agents measure one resource dimension: native vs
//! bytecode *time*. Its portable-instrumentation methodology generalizes,
//! and this crate hosts the two highest-value next dimensions as
//! deterministic agents on the same JVMTI plane:
//!
//! * [`AllocAgent`] (**ALLOC**) — an object-centric allocation-site
//!   profiler in the style of DJXPerf: every object allocation is
//!   delivered through the `Allocation` event (the `SampledObjectAlloc`
//!   analog, undownsampled) and attributed to its interned
//!   `(class, method, bci)` allocation site, accumulating per-site object
//!   counts, modeled bytes, and lifetimes priced against the end-of-run
//!   PCL tick.
//! * [`LockAgent`] (**LOCK**) — a contention profiler over the raw-monitor
//!   plane: per-monitor acquisition counts, contended entries (entry by a
//!   thread other than the previous owner), and modeled blocked cycles
//!   charged to the waiting thread's PCL clock.
//!
//! Both agents follow the house rules the previous agents established:
//! every probe runs inside a self-timing [`ProbeKind`] span so its cost is
//! measured (not estimated) into the agent's own attribution bucket;
//! bookkeeping is charged honestly via the cost model; fault sites
//! (`alloc-site-overflow`, `monitor-ledger-corrupt`) divert records into
//! counted bins so the chaos invariants stay checkable; and every report
//! is a pure function of the deterministic run.
//!
//! [`ProbeKind`]: jvmsim_jvmti::ProbeKind

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod lock;

pub use alloc::{AllocAgent, AllocReport, AllocSiteRow, MAX_ALLOC_SITES};
pub use lock::{LockAgent, LockReport};
