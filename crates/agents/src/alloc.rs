//! ALLOC — the object-centric allocation-site profiler.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use jvmsim_faults::FaultSite;
use jvmsim_jvmti::{Agent, AgentHost, Capabilities, EventType, JvmtiEnv, JvmtiError, ProbeKind};
use jvmsim_vm::{AllocationView, ThreadId, TraceEventKind, TraceSink};

/// Capacity of the allocation-site table. A new site arriving at a full
/// table (or a firing of the `alloc-site-overflow` fault) routes the
/// record to the overflow bin instead of dropping it, so
/// `total == Σ sites + overflow` always balances.
pub const MAX_ALLOC_SITES: usize = 1024;

/// An interned allocation site: `(class, method, bytecode index)`.
type SiteKey = (String, String, u32);

#[derive(Debug, Default, Clone, Copy)]
struct SiteStats {
    objects: u64,
    bytes: u64,
    /// Sum of the per-object allocation ticks (the allocating thread's
    /// uncharged clock reading); lifetimes are priced at report time as
    /// `objects × death_tick − alloc_ticks`.
    alloc_ticks: u64,
}

#[derive(Debug, Default)]
struct SiteTable {
    sites: BTreeMap<SiteKey, SiteStats>,
    overflow_objects: u64,
    overflow_bytes: u64,
    total_objects: u64,
    total_bytes: u64,
}

/// The ALLOC agent. Attach with [`jvmsim_jvmti::attach`]; read the
/// [`AllocReport`] after the run.
#[derive(Default)]
pub struct AllocAgent {
    env: OnceLock<JvmtiEnv>,
    trace: OnceLock<Arc<dyn TraceSink>>,
    table: Mutex<SiteTable>,
    /// `PCL.total_cycles()` at `VMDeath` — the tick object lifetimes end
    /// at (nothing is ever collected; see DESIGN.md on the no-GC model).
    death_tick: AtomicU64,
}

impl fmt::Debug for AllocAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AllocAgent")
            .field("attached", &self.env.get().is_some())
            .finish()
    }
}

impl AllocAgent {
    /// A fresh, unattached agent.
    pub fn new() -> Arc<AllocAgent> {
        Arc::new(AllocAgent {
            env: OnceLock::new(),
            trace: OnceLock::new(),
            table: Mutex::new(SiteTable::default()),
            death_tick: AtomicU64::new(0),
        })
    }

    /// The accumulated allocation-site profile. Defaults (all zero) if the
    /// agent was never attached.
    pub fn report(&self) -> AllocReport {
        let t = self.table.lock();
        let death_tick = match self.death_tick.load(Ordering::Relaxed) {
            // No VMDeath seen (mid-run extraction): price against "now".
            0 => self.env.get().map_or(0, JvmtiEnv::total_cycles),
            tick => tick,
        };
        AllocReport {
            sites: t
                .sites
                .iter()
                .map(|((class, method, bci), s)| AllocSiteRow {
                    class: class.clone(),
                    method: method.clone(),
                    bci: *bci,
                    objects: s.objects,
                    bytes: s.bytes,
                    lifetime_cycles: (s.objects * death_tick).saturating_sub(s.alloc_ticks),
                })
                .collect(),
            overflow_objects: t.overflow_objects,
            overflow_bytes: t.overflow_bytes,
            total_objects: t.total_objects,
            total_bytes: t.total_bytes,
            death_tick,
        }
    }
}

impl Agent for AllocAgent {
    fn on_load(&self, host: &mut AgentHost<'_>) -> Result<(), JvmtiError> {
        host.add_capabilities(Capabilities::alloc());
        host.enable_event(EventType::Allocation)?;
        host.enable_event(EventType::VmDeath)?;
        if let Some(trace) = host.vm().trace_sink() {
            let _ = self.trace.set(trace);
        }
        let _ = self.env.set(host.env());
        Ok(())
    }

    fn allocation(&self, thread: ThreadId, alloc: AllocationView<'_>) {
        let Some(env) = self.env.get() else { return };
        // Self-timing span: every cycle below lands in the alloc_probe
        // bucket, and the span's measured cost feeds the probe histogram.
        let _span = env.probe_span(thread, ProbeKind::Alloc);
        env.charge(thread, env.costs().agent_logic);
        let tick = env.timestamp_unaccounted(thread).cycles();
        let mut t = self.table.lock();
        t.total_objects += 1;
        t.total_bytes += alloc.bytes;
        let key = (
            alloc.site_class.to_owned(),
            alloc.site_method.to_owned(),
            alloc.bci,
        );
        let table_full = t.sites.len() >= MAX_ALLOC_SITES && !t.sites.contains_key(&key);
        if table_full || env.fault(FaultSite::AllocSiteOverflow).is_some() {
            t.overflow_objects += 1;
            t.overflow_bytes += alloc.bytes;
            return;
        }
        let s = t.sites.entry(key).or_default();
        s.objects += 1;
        s.bytes += alloc.bytes;
        s.alloc_ticks += tick;
        drop(t);
        if let Some(trace) = self.trace.get() {
            trace.record(thread, TraceEventKind::AllocSite, tick, None);
        }
    }

    fn vm_death(&self) {
        if let Some(env) = self.env.get() {
            self.death_tick.store(env.total_cycles(), Ordering::Relaxed);
        }
    }
}

/// One allocation site's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSiteRow {
    /// Internal name of the class whose code allocated.
    pub class: String,
    /// Allocating method's name.
    pub method: String,
    /// Bytecode index of the allocating instruction (0 for native sites).
    pub bci: u32,
    /// Objects allocated at this site.
    pub objects: u64,
    /// Modeled bytes allocated at this site.
    pub bytes: u64,
    /// Summed object lifetimes in cycles (allocation tick to end-of-run;
    /// nothing is collected, so every object lives to `death_tick`).
    pub lifetime_cycles: u64,
}

/// The ALLOC agent's end-of-run profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocReport {
    /// Every recorded site, ordered by `(class, method, bci)`.
    pub sites: Vec<AllocSiteRow>,
    /// Objects routed to the overflow bin (table full or fault-diverted).
    pub overflow_objects: u64,
    /// Bytes routed to the overflow bin.
    pub overflow_bytes: u64,
    /// Every allocation observed, recorded or overflowed.
    pub total_objects: u64,
    /// Every allocated byte observed, recorded or overflowed.
    pub total_bytes: u64,
    /// The PCL tick lifetimes were priced against.
    pub death_tick: u64,
}

impl AllocReport {
    /// Bytes still live at the end of the run. The VM never collects, so
    /// this equals `total_bytes`; it exists so the chaos invariant
    /// `live_bytes ≤ allocated_bytes` is stated against the reported
    /// quantity, not against an assumption about the heap model.
    pub fn live_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Verify the ledger invariants; each violation becomes one line.
    ///
    /// * every observed object/byte is either at a site or in overflow;
    /// * `live_bytes ≤ allocated_bytes`;
    /// * per-site lifetime never exceeds `objects × death_tick`.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let site_objects: u64 = self.sites.iter().map(|s| s.objects).sum();
        let site_bytes: u64 = self.sites.iter().map(|s| s.bytes).sum();
        if site_objects + self.overflow_objects != self.total_objects {
            violations.push(format!(
                "alloc object ledger unbalanced: {site_objects} at sites + {} overflow != {} total",
                self.overflow_objects, self.total_objects
            ));
        }
        if site_bytes + self.overflow_bytes != self.total_bytes {
            violations.push(format!(
                "alloc byte ledger unbalanced: {site_bytes} at sites + {} overflow != {} total",
                self.overflow_bytes, self.total_bytes
            ));
        }
        if self.live_bytes() > self.total_bytes {
            violations.push(format!(
                "live bytes {} exceed allocated bytes {}",
                self.live_bytes(),
                self.total_bytes
            ));
        }
        for s in &self.sites {
            if s.lifetime_cycles > s.objects * self.death_tick {
                violations.push(format!(
                    "site {}.{}:{} lifetime {} exceeds objects x death tick {}",
                    s.class,
                    s.method,
                    s.bci,
                    s.lifetime_cycles,
                    s.objects * self.death_tick
                ));
            }
        }
        violations
    }
}

impl fmt::Display for AllocReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ALLOC: {} objects / {} bytes at {} sites ({} objects / {} bytes overflowed)",
            self.total_objects,
            self.total_bytes,
            self.sites.len(),
            self.overflow_objects,
            self.overflow_bytes
        )?;
        writeln!(
            f,
            "{:<44} {:>4} {:>10} {:>12} {:>16}",
            "site (class.method)", "bci", "objects", "bytes", "lifetime_cycles"
        )?;
        for s in &self.sites {
            writeln!(
                f,
                "{:<44} {:>4} {:>10} {:>12} {:>16}",
                format!("{}.{}", s.class, s.method),
                s.bci,
                s.objects,
                s.bytes,
                s.lifetime_cycles
            )?;
        }
        Ok(())
    }
}
