//! End-to-end tests for the ALLOC and LOCK agents against hand-built
//! workloads with hand-computed expected profiles.

use std::sync::Arc;

use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::{ArrayKind, FieldFlags, MethodFlags};
use jvmsim_faults::{FaultInjector, FaultPlan, FaultSite};
use jvmsim_jvmti::Agent;
use jvmsim_vm::{builtins, Vm};
use nativeprof_agents::{AllocAgent, LockAgent};

const ST: MethodFlags = MethodFlags::STATIC;

/// A fixed allocation workload with sites whose counts and bytes are
/// computable by hand from the 64-bit heap layout model:
///
/// * `t/Box` has two instance fields → each instance is 16 + 2×8 = 32 B;
/// * `make()V` allocates one `t/Box` at bci 0 and is called three times;
/// * `main()I` allocates a 4-element int array (16 + 4×8 = 48 B) at bci 1
///   and the string literal `"hi"` (24 + 2 = 26 B) at bci 3; the second
///   `ldc "hi"` hits the intern table and must NOT count.
fn alloc_workload() -> Vm {
    let mut boxc = ClassBuilder::new("t/Box");
    boxc.field("a", "I", FieldFlags::PUBLIC)
        .unwrap()
        .field("b", "I", FieldFlags::PUBLIC)
        .unwrap();

    let mut cb = ClassBuilder::new("t/Alloc");
    let mut m = cb.method("make", "()V", ST);
    m.new_obj("t/Box").pop().ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()I", ST);
    m.iconst(4)
        .newarray(ArrayKind::Int)
        .pop()
        .ldc_str("hi")
        .pop()
        .ldc_str("hi")
        .pop()
        .invokestatic("t/Alloc", "make", "()V")
        .invokestatic("t/Alloc", "make", "()V")
        .invokestatic("t/Alloc", "make", "()V")
        .iconst(0)
        .ireturn();
    m.finish().unwrap();

    let mut vm = Vm::new();
    vm.add_classfile(&boxc.finish().unwrap());
    vm.add_classfile(&cb.finish().unwrap());
    vm
}

#[test]
fn alloc_agent_attributes_sites_by_hand_computed_counts_and_bytes() {
    let mut vm = alloc_workload();
    let agent = AllocAgent::new();
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
    let outcome = vm.run("t/Alloc", "main", "()I", vec![]).unwrap();
    assert!(outcome.main.is_ok(), "{:?}", outcome.main);

    let report = agent.report();
    assert_eq!(report.check(), Vec::<String>::new());
    assert_eq!(report.total_objects, 5, "{report}");
    assert_eq!(report.total_bytes, 48 + 26 + 3 * 32, "{report}");
    assert_eq!(report.overflow_objects, 0);
    assert_eq!(report.overflow_bytes, 0);

    // BTreeMap order: (class, method, bci) — "main" sorts before "make".
    let rows: Vec<(&str, &str, u32, u64, u64)> = report
        .sites
        .iter()
        .map(|s| {
            (
                s.class.as_str(),
                s.method.as_str(),
                s.bci,
                s.objects,
                s.bytes,
            )
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            ("t/Alloc", "main", 1, 1, 48), // newarray int ×4
            ("t/Alloc", "main", 3, 1, 26), // ldc "hi" intern miss only
            ("t/Alloc", "make", 0, 3, 96), // 3 × new t/Box (32 B each)
        ],
        "{report}"
    );

    // Lifetimes are priced against the death tick; every object was
    // allocated strictly after tick 0, so each site's summed lifetime is
    // positive and below objects × death_tick.
    assert!(report.death_tick > 0);
    for s in &report.sites {
        assert!(s.lifetime_cycles > 0, "{report}");
        assert!(
            s.lifetime_cycles < s.objects * report.death_tick,
            "{report}"
        );
    }
}

#[test]
fn alloc_site_overflow_fault_routes_records_to_the_counted_bin() {
    let mut vm = alloc_workload();
    // Rate 1.0: every consultation of the overflow site injects, so every
    // record diverts to the overflow bin — and the ledger must still
    // balance (`total == Σ sites + overflow` with zero sites).
    let plan = FaultPlan::new(7).with_rate(FaultSite::AllocSiteOverflow, 1_000_000);
    vm.set_fault_injector(Arc::new(FaultInjector::new(plan)));
    let agent = AllocAgent::new();
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
    let outcome = vm.run("t/Alloc", "main", "()I", vec![]).unwrap();
    assert!(outcome.main.is_ok(), "{:?}", outcome.main);

    let report = agent.report();
    assert_eq!(report.check(), Vec::<String>::new());
    assert!(report.sites.is_empty(), "{report}");
    assert_eq!(report.overflow_objects, report.total_objects);
    assert_eq!(report.overflow_bytes, report.total_bytes);
    assert_eq!(report.total_objects, 5);
}

/// Two threads: main, plus one worker spawned via `java/lang/Threads`.
/// Run-to-completion scheduling makes the monitor traffic on the agent's
/// own totals monitor exactly `[main end][worker start][worker end]`.
fn spawn_workload() -> Vm {
    let mut cb = ClassBuilder::new("t/Spawn");
    let mut m = cb.method("work", "(I)V", ST);
    m.ret_void();
    m.finish().unwrap();
    let mut m = cb.method("main", "()V", ST);
    m.ldc_str("w").ldc_str("t/Spawn").ldc_str("work").iconst(0);
    m.invokestatic(
        "java/lang/Threads",
        "start",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;I)V",
    );
    m.ret_void();
    m.finish().unwrap();

    let mut vm = Vm::new();
    builtins::install(&mut vm);
    vm.add_classfile(&cb.finish().unwrap());
    vm
}

#[test]
fn lock_agent_charges_blocked_cycles_matching_the_pcl_oracle() {
    let mut vm = spawn_workload();
    let agent = LockAgent::new();
    let env = jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
    let outcome = vm.run("t/Spawn", "main", "()V", vec![]).unwrap();
    assert!(outcome.main.is_ok(), "{:?}", outcome.main);
    assert_eq!(outcome.threads.len(), 2);

    let report = agent.report();
    assert_eq!(report.check(), Vec::<String>::new());

    // The totals monitor is the only raw monitor in a LOCK run. Entries:
    // main's ThreadEnd (no ThreadStart for the primordial thread), then
    // the worker's ThreadStart and ThreadEnd.
    assert_eq!(report.monitors().len(), 1, "{report}");
    let m = &report.monitors()[0];
    assert_eq!(m.name, "LOCK totals");
    assert_eq!(m.entries, 3, "{report}");
    // One ownership handoff (main → worker); the worker's second entry
    // re-acquires its own monitor and is uncontended.
    assert_eq!(m.contended, 1, "{report}");
    assert_eq!(m.discarded, 0);

    // PCL oracle: the blocked time modeled for the contended entry is the
    // previous owner's hold duration. Main held the monitor exactly for
    // its totals update, which charges `agent_logic` cycles between the
    // post-acquire timestamp and the release — so the worker is charged
    // exactly that many cycles.
    let oracle = env.costs().agent_logic;
    assert_eq!(m.blocked_cycles, oracle, "{report}");

    // Double ledger: the same cycles appear on the waiting thread's side,
    // charged to the worker (thread index 1), none to main.
    assert_eq!(report.snapshot.per_thread_blocked, vec![0, oracle]);
    assert_eq!(report.total_blocked_cycles(), oracle);
}

#[test]
fn monitor_ledger_corrupt_fault_discards_but_keeps_the_ledger_balanced() {
    let mut vm = spawn_workload();
    let plan = FaultPlan::new(11).with_rate(FaultSite::MonitorLedgerCorrupt, 1_000_000);
    vm.set_fault_injector(Arc::new(FaultInjector::new(plan)));
    let agent = LockAgent::new();
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
    let outcome = vm.run("t/Spawn", "main", "()V", vec![]).unwrap();
    assert!(outcome.main.is_ok(), "{:?}", outcome.main);

    let report = agent.report();
    assert_eq!(report.check(), Vec::<String>::new());
    let m = &report.monitors()[0];
    // The one contended entry was diverted: recorded contention drops to
    // zero, the discard is counted, and no blocked cycles are charged.
    assert_eq!(m.entries, 3, "{report}");
    assert_eq!(m.contended, 0, "{report}");
    assert_eq!(m.discarded, 1, "{report}");
    assert_eq!(report.total_blocked_cycles(), 0);
}

#[test]
fn agent_reports_are_byte_identical_across_runs() {
    let run = |alloc: bool| -> String {
        if alloc {
            let mut vm = alloc_workload();
            let agent = AllocAgent::new();
            jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
            vm.run("t/Alloc", "main", "()I", vec![]).unwrap();
            agent.report().to_string()
        } else {
            let mut vm = spawn_workload();
            let agent = LockAgent::new();
            jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
            vm.run("t/Spawn", "main", "()V", vec![]).unwrap();
            agent.report().to_string()
        }
    };
    assert_eq!(run(true), run(true));
    assert_eq!(run(false), run(false));
}
