//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! The build container has no access to crates.io, so the real
//! `parking_lot` cannot be fetched. This shim wraps the standard library's
//! locks behind `parking_lot`'s non-poisoning API (`lock()` / `read()` /
//! `write()` returning guards directly). Poisoned locks are recovered
//! rather than propagated — `parking_lot` has no poisoning, and the
//! workspace relies on that (agent callbacks must not panic-cascade).
//!
//! Only the types and methods the workspace actually calls are provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock (non-poisoning `read()` / `write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicking holder.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
