//! Offline shim for the `criterion` API subset this workspace's benches
//! use. The build container cannot reach crates.io, so the real criterion
//! cannot be fetched; this crate keeps `cargo bench --features bench`
//! working with plain wall-clock timing loops and text output instead of
//! criterion's statistics and HTML reports.
//!
//! Supported surface: [`Criterion::benchmark_group`], group knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`), `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Names a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs the timing loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, warm-up first, then `sample_size` samples (stopping
    /// early once `measurement_time` is spent).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i > 0 && measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Soft cap on total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{id:<40} mean {mean:>12.3?}  median {median:>12.3?}  ({} samples)",
            self.name,
            samples.len(),
        );
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group with default timing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 3, "timed loop must run at least sample_size times");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter("only").to_string(), "only");
    }
}
