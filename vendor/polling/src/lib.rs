//! Offline shim for a readiness-polling API (the `polling` crate's
//! niche): level-triggered readiness events over raw `epoll(7)` /
//! `poll(2)` FFI, plus a cross-thread [`Notifier`].
//!
//! The build container has no access to crates.io, so the real `polling`
//! crate cannot be fetched. This shim exposes exactly the surface the
//! workspace's event loops need, with deliberate divergences:
//!
//! * **Level-triggered, not oneshot** — an interest set stays armed
//!   until [`Poller::modify`]/[`Poller::delete`] changes it, so callers
//!   never re-arm after every event.
//! * **Raw-fd API** — registration takes `RawFd` (callers pass
//!   `stream.as_raw_fd()`); the poller never owns registered fds and a
//!   caller must [`Poller::delete`] before closing one.
//! * **Explicit [`Notifier`]** — a cloneable cross-thread wakeup handle
//!   (pipe-backed) instead of the real crate's `Poller::notify`.
//! * **Unix only** — Linux uses `epoll`; other unixes fall back to
//!   `poll(2)` (also available on Linux via
//!   [`Poller::with_poll_backend`], which keeps the fallback tested).
//!
//! All `unsafe` FFI in the workspace lives in this crate; consumers
//! (`crates/serve`) keep `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Key reserved for the internal wakeup pipe; never surfaced from
/// [`Poller::wait`] and refused by [`Poller::add`].
const NOTIFY_KEY: usize = usize::MAX;

#[cfg(unix)]
mod ffi {
    #![allow(non_camel_case_types)]
    use std::os::raw::{c_int, c_ulong, c_void};

    #[repr(C)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o200_0000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        // x86-64 packs `epoll_event` (historic kernel ABI); other
        // architectures use natural alignment.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    }
    #[cfg(not(target_os = "linux"))]
    extern "C" {
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    // Generic-ABI flag values (x86-64 / aarch64 / riscv; the targets this
    // workspace builds for).
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o200_0000;
}

#[cfg(not(unix))]
compile_error!("the polling shim supports unix targets only");

/// One readiness event: which registration fired and how. Doubles as the
/// *interest* argument to [`Poller::add`]/[`Poller::modify`] (register
/// for the directions set `true`). Error/hangup conditions are reported
/// as both `readable` and `writable` so the caller's next I/O attempt
/// surfaces the actual error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: usize,
    /// Readable (or error/hangup) readiness.
    pub readable: bool,
    /// Writable (or error/hangup) readiness.
    pub writable: bool,
}

impl Event {
    /// Read-interest only.
    #[must_use]
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-interest only.
    #[must_use]
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Both directions.
    #[must_use]
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Neither direction (stay registered, report only errors/hangups —
    /// and on the poll(2) backend, nothing at all).
    #[must_use]
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The internal wakeup pipe: `notify()` writes a byte, the poller drains
/// it. Both ends are nonblocking — a full pipe means a wake is already
/// pending, which is all a notifier needs.
#[derive(Debug)]
struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        #[cfg(target_os = "linux")]
        let rc = unsafe { ffi::pipe2(fds.as_mut_ptr(), ffi::O_NONBLOCK | ffi::O_CLOEXEC) };
        #[cfg(not(target_os = "linux"))]
        let rc = unsafe {
            let rc = ffi::pipe(fds.as_mut_ptr());
            if rc == 0 {
                // Best-effort O_NONBLOCK on both ends (F_SETFL == 4).
                for fd in fds {
                    let _ = ffi::fcntl(fd, 4, ffi::O_NONBLOCK);
                }
            }
            rc
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn notify(&self) {
        let byte = 1u8;
        // EAGAIN (pipe full) is success: a wake is already pending.
        let _ = unsafe { ffi::write(self.write_fd, std::ptr::addr_of!(byte).cast(), 1) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { ffi::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

/// A cloneable cross-thread wakeup handle: [`Notifier::notify`] makes a
/// concurrent or future [`Poller::wait`] return promptly (possibly with
/// zero events). Wakes coalesce; they are never counted.
#[derive(Debug, Clone)]
pub struct Notifier {
    pipe: Arc<WakePipe>,
}

impl Notifier {
    /// Wake the poller this notifier came from.
    pub fn notify(&self) {
        self.pipe.notify();
    }
}

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollBackend {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        let epfd = unsafe { ffi::epoll::epoll_create1(ffi::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend { epfd })
    }

    fn mask(interest: Event) -> u32 {
        let mut events = ffi::epoll::EPOLLRDHUP;
        if interest.readable {
            events |= ffi::epoll::EPOLLIN;
        }
        if interest.writable {
            events |= ffi::epoll::EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, interest: Event) -> io::Result<()> {
        let mut ev = ffi::epoll::epoll_event {
            events: EpollBackend::mask(interest),
            data: interest.key as u64,
        };
        let rc = unsafe { ffi::epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let mut buf = [ffi::epoll::epoll_event { events: 0, data: 0 }; 256];
        let n = unsafe {
            ffi::epoll::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in buf.iter().take(n.max(0) as usize) {
            let ev = *ev; // copy out of the possibly-packed array slot
            let bad = ev.events & (ffi::epoll::EPOLLERR | ffi::epoll::EPOLLHUP) != 0;
            out.push(Event {
                key: ev.data as usize,
                readable: bad || ev.events & (ffi::epoll::EPOLLIN | ffi::epoll::EPOLLRDHUP) != 0,
                writable: bad || ev.events & ffi::epoll::EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.epfd);
        }
    }
}

/// The portable fallback: interests in a table, one `poll(2)` per wait.
#[derive(Debug, Default)]
struct PollBackend {
    fds: Mutex<HashMap<RawFd, Event>>,
}

impl PollBackend {
    fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let mut pollfds: Vec<ffi::pollfd> = {
            let fds = self.fds.lock().unwrap_or_else(|e| e.into_inner());
            fds.iter()
                .map(|(fd, interest)| {
                    let mut events = 0i16;
                    if interest.readable {
                        events |= ffi::POLLIN;
                    }
                    if interest.writable {
                        events |= ffi::POLLOUT;
                    }
                    ffi::pollfd {
                        fd: *fd,
                        events,
                        revents: 0,
                    }
                })
                .collect()
        };
        let n = unsafe {
            ffi::poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        let fds = self.fds.lock().unwrap_or_else(|e| e.into_inner());
        for p in &pollfds {
            if p.revents == 0 {
                continue;
            }
            let Some(interest) = fds.get(&p.fd) else {
                continue;
            };
            let bad = p.revents & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0;
            out.push(Event {
                key: interest.key,
                readable: bad || p.revents & ffi::POLLIN != 0,
                writable: bad || p.revents & ffi::POLLOUT != 0,
            });
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// A level-triggered readiness poller over a set of registered fds.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    wake: Arc<WakePipe>,
}

impl Poller {
    /// A poller on the platform's best backend (`epoll` on Linux,
    /// `poll(2)` elsewhere).
    ///
    /// # Errors
    ///
    /// Fd exhaustion creating the epoll instance or the wakeup pipe.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::from_backend(Backend::Epoll(EpollBackend::new()?))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_poll_backend()
        }
    }

    /// A poller on the portable `poll(2)` backend — the fallback every
    /// unix gets; constructible on Linux too so it stays tested.
    ///
    /// # Errors
    ///
    /// Fd exhaustion creating the wakeup pipe.
    pub fn with_poll_backend() -> io::Result<Poller> {
        Poller::from_backend(Backend::Poll(PollBackend::default()))
    }

    fn from_backend(backend: Backend) -> io::Result<Poller> {
        let wake = Arc::new(WakePipe::new()?);
        let poller = Poller { backend, wake };
        poller.register(poller.wake.read_fd, Event::readable(NOTIFY_KEY), false)?;
        Ok(poller)
    }

    /// A cloneable wakeup handle for other threads.
    #[must_use]
    pub fn notifier(&self) -> Notifier {
        Notifier {
            pipe: Arc::clone(&self.wake),
        }
    }

    /// Register `fd` under `interest.key` for the directions set in
    /// `interest`. The poller does not own `fd`; [`Poller::delete`] it
    /// before closing.
    ///
    /// # Errors
    ///
    /// A reserved or duplicate registration, or kernel refusal.
    pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.register(fd, interest, false)
    }

    /// Replace the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Unknown `fd` or kernel refusal.
    pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.register(fd, interest, true)
    }

    fn register(&self, fd: RawFd, interest: Event, replace: bool) -> io::Result<()> {
        if interest.key == NOTIFY_KEY && fd != self.wake.read_fd {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for the notifier",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => {
                let op = if replace {
                    ffi::epoll::EPOLL_CTL_MOD
                } else {
                    ffi::epoll::EPOLL_CTL_ADD
                };
                epoll.ctl(op, fd, interest)
            }
            Backend::Poll(table) => {
                let mut fds = table.fds.lock().unwrap_or_else(|e| e.into_inner());
                if !replace && fds.contains_key(&fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                fds.insert(fd, interest);
                Ok(())
            }
        }
    }

    /// Deregister `fd`. Call before closing the fd.
    ///
    /// # Errors
    ///
    /// Unknown `fd` or kernel refusal.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => {
                let mut ev = ffi::epoll::epoll_event { events: 0, data: 0 };
                let rc = unsafe {
                    ffi::epoll::epoll_ctl(epoll.epfd, ffi::epoll::EPOLL_CTL_DEL, fd, &mut ev)
                };
                if rc != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll(table) => {
                table
                    .fds
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready, the `timeout`
    /// elapses, or a [`Notifier`] fires, appending ready events to
    /// `events` (cleared first). A notifier wake can return `Ok(0)` with
    /// no events — that is the signal to check cross-thread state.
    ///
    /// # Errors
    ///
    /// Kernel-level poll failures (`EINTR` is swallowed and returns
    /// `Ok(0)`).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let micros = d.as_micros();
                let ms = micros.div_ceil(1000);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let mut raw: Vec<Event> = Vec::new();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.wait(&mut raw, timeout_ms)?,
            Backend::Poll(table) => table.wait(&mut raw, timeout_ms)?,
        }
        for ev in raw {
            if ev.key == NOTIFY_KEY {
                self.wake.drain();
            } else {
                events.push(ev);
            }
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        let mut all = vec![Poller::new().unwrap()];
        if cfg!(target_os = "linux") {
            all.push(Poller::with_poll_backend().unwrap());
        }
        all
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn timeout_elapses_with_no_events() {
        for poller in pollers() {
            let mut events = Vec::new();
            let started = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0);
            assert!(started.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn readable_event_fires_and_is_level_triggered() {
        for poller in pollers() {
            let (mut client, server) = pair();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), Event::readable(7)).unwrap();
            client.write_all(b"x").unwrap();
            let mut events = Vec::new();
            for _ in 0..2 {
                // Unconsumed input must re-report (level-triggered).
                poller
                    .wait(&mut events, Some(Duration::from_secs(2)))
                    .unwrap();
                assert!(
                    events.iter().any(|e| e.key == 7 && e.readable),
                    "expected readable key 7, got {events:?}"
                );
            }
            poller.delete(server.as_raw_fd()).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0, "deleted fd must not report");
            drop(client);
        }
    }

    #[test]
    fn writable_interest_and_modify() {
        for poller in pollers() {
            let (_client, server) = pair();
            poller.add(server.as_raw_fd(), Event::none(3)).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(
                events.iter().all(|e| !e.writable || e.key != 3),
                "no write interest yet: {events:?}"
            );
            poller
                .modify(server.as_raw_fd(), Event::writable(3))
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 3 && e.writable),
                "idle socket must be writable: {events:?}"
            );
            poller.delete(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn notifier_wakes_a_blocked_wait() {
        for poller in pollers() {
            let notifier = poller.notifier();
            let waker = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                notifier.notify();
                notifier.notify(); // coalesces, never double-reports
            });
            let mut events = Vec::new();
            let started = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert_eq!(n, 0, "a pure wake carries no events");
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "wait must return on notify, not the timeout"
            );
            waker.join().unwrap();
        }
    }

    #[test]
    fn hangup_reports_as_ready_for_io() {
        for poller in pollers() {
            let (client, server) = pair();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), Event::readable(9)).unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 9 && e.readable),
                "peer hangup must surface as readable (read -> Ok(0)): {events:?}"
            );
            let mut buf = [0u8; 8];
            let mut server = server;
            assert_eq!(server.read(&mut buf).unwrap(), 0);
            poller.delete(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn reserved_key_is_refused() {
        for poller in pollers() {
            let (_client, server) = pair();
            let err = poller
                .add(server.as_raw_fd(), Event::readable(NOTIFY_KEY))
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        }
    }
}
