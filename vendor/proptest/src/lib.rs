//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! The build container has no access to crates.io, so the real `proptest`
//! cannot be fetched. This crate re-implements the pieces the workspace's
//! property tests rely on — the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_recursive`, range/tuple/`Just`/`any` strategies, a
//! regex-subset string generator, `prop::collection::vec`,
//! `prop::option::of`, and the `proptest!`/`prop_oneof!`/`prop_assert*`
//! macros — on top of a small deterministic RNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of being minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible across machines; set
//!   `PROPTEST_SHIM_SEED` to explore a different sequence.
//! * Only the strategy combinators listed above exist.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod string;
pub mod test_runner;

pub mod strategy;

pub use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Types a value can be drawn from with [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric; NaN/inf would break PartialEq-based tests.
        rng.unit_f64() * 2.0e18 - 1.0e18
    }
}

/// Strategy producing unconstrained values of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary + std::fmt::Debug> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// What the prelude of real proptest exports (the subset used here).
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy::Just;
        pub use crate::string;
    }
}

/// Build a [`strategy::Union`] choosing uniformly between the listed
/// strategies (the weighted form of real proptest is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a proptest body (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 3u8..9, c in 1u8..=4) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((3..9).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn recursive_trees_are_bounded(
            t in prop_oneof![(-9i64..9).prop_map(Tree::Leaf)].prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into()))
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }

        #[test]
        fn regex_subset_generates_matching_shapes(
            name in "[a-z]{2,4}(/[A-Z][a-z]{0,3}){1,2}",
            desc in "\\(\\)V|\\(I\\)I",
        ) {
            let parts: Vec<&str> = name.split('/').collect();
            prop_assert!(parts.len() >= 2 && parts.len() <= 3, "{name}");
            prop_assert!((2..=4).contains(&parts[0].len()), "{name}");
            prop_assert!(desc == "()V" || desc == "(I)I", "{desc}");
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u8..200)) {
            if let Some(v) = o { prop_assert!(v < 200); }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_test("union");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
