//! `prop::option` — strategies over `Option<T>`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` half the time, `Some(inner)` otherwise.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let s = of(0u8..10);
        let mut rng = TestRng::from_seed(17);
        let (mut some, mut none) = (false, false);
        for _ in 0..100 {
            match s.sample(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some = true;
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
