//! Deterministic RNG for the shim (splitmix64 seeding + xorshift64*).

/// A small, fast, deterministic generator. Not cryptographic — it only has
//  to spread test inputs around.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestRng {
    /// Seed from raw state (zero is remapped; xorshift has a fixed point
    /// at zero).
    pub fn from_seed(seed: u64) -> Self {
        let s = splitmix64(seed);
        TestRng(if s == 0 { 0x9e37_79b9 } else { s })
    }

    /// Seed deterministically from a test name, honouring the
    /// `PROPTEST_SHIM_SEED` environment variable as an extra mix-in so a
    /// different universe of cases can be explored without code changes.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= splitmix64(n);
            }
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_bounds() {
        let mut r = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut r = TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut r = TestRng::from_seed(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
