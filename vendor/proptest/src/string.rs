//! Regex-subset string generation backing `impl Strategy for &'static str`.
//!
//! Supported syntax: literal characters, `\x` escapes (the escaped character
//! becomes a literal), character classes `[a-z0-9_]` / `[ -~]` with ranges,
//! groups `(...)`, alternation `|`, and the quantifiers `{m}`, `{m,n}`, `?`,
//! `*`, `+` (`*`/`+` are capped at 4 repetitions to keep outputs bounded).
//! Anything else — anchors, `.`, negated classes, backreferences — is
//! rejected with a panic so a test using an unsupported pattern fails
//! loudly rather than generating non-matching strings.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// One concatenated alternative chosen uniformly.
    Alt(Vec<Vec<(Node, u32, u32)>>),
    Lit(char),
    /// Closed unicode-scalar ranges; one is picked weighted by width.
    Class(Vec<(char, char)>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn fail(&self, why: &str) -> ! {
        panic!("proptest shim: unsupported regex {:?}: {why}", self.pattern)
    }

    fn parse_alt(&mut self) -> Node {
        let mut alts = vec![self.parse_concat()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alts.push(self.parse_concat());
        }
        Node::Alt(alts)
    }

    fn parse_concat(&mut self) -> Vec<(Node, u32, u32)> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            self.chars.next();
            let atom = match c {
                '(' => {
                    let inner = self.parse_alt();
                    if self.chars.next() != Some(')') {
                        self.fail("unclosed group");
                    }
                    inner
                }
                '[' => self.parse_class(),
                '\\' => match self.chars.next() {
                    Some(esc) => Node::Lit(esc),
                    None => self.fail("dangling backslash"),
                },
                '.' | '^' | '$' | '*' | '+' | '?' | '{' => {
                    self.fail("metacharacter outside supported subset")
                }
                lit => Node::Lit(lit),
            };
            let (lo, hi) = self.parse_quantifier();
            out.push((atom, lo, hi));
        }
        out
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.fail("dangling backslash in class")),
                Some('^') if ranges.is_empty() => self.fail("negated class"),
                Some(c) => c,
                None => self.fail("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.next() {
                    Some(']') => {
                        // Trailing `-` is a literal, as in `[a-z-]`.
                        ranges.push((c, c));
                        ranges.push(('-', '-'));
                        break;
                    }
                    Some(hi) if hi >= c => ranges.push((c, hi)),
                    Some(_) => self.fail("descending class range"),
                    None => self.fail("unclosed character class"),
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, 4)
            }
            Some('+') => {
                self.chars.next();
                (1, 4)
            }
            Some('{') => {
                self.chars.next();
                let mut lo = String::new();
                let mut hi = String::new();
                let mut cur = &mut lo;
                let mut saw_comma = false;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') if !saw_comma => {
                            saw_comma = true;
                            cur = &mut hi;
                        }
                        Some(d) if d.is_ascii_digit() => cur.push(d),
                        _ => self.fail("malformed {m,n} quantifier"),
                    }
                }
                let lo: u32 = lo.parse().unwrap_or_else(|_| self.fail("bad repeat count"));
                let hi = if !saw_comma {
                    lo
                } else {
                    hi.parse().unwrap_or_else(|_| self.fail("bad repeat count"))
                };
                if hi < lo {
                    self.fail("inverted {m,n} quantifier");
                }
                (lo, hi)
            }
            _ => (1, 1),
        }
    }
}

fn parse(pattern: &str) -> Node {
    let mut p = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let node = p.parse_alt();
    if p.chars.next().is_some() {
        p.fail("unbalanced ')'");
    }
    node
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let seq = &alts[rng.below(alts.len() as u64) as usize];
            for (atom, lo, hi) in seq {
                let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..n {
                    emit(atom, rng, out);
                }
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(a, b)| u64::from(b as u32 - a as u32) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(a, b) in ranges {
                let width = u64::from(b as u32 - a as u32) + 1;
                if pick < width {
                    let cp = a as u32 + pick as u32;
                    out.push(char::from_u32(cp).unwrap_or(a));
                    return;
                }
                pick -= width;
            }
            unreachable!("class pick out of range");
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let ast = parse(pattern);
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_n(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::for_test(pattern);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_quantifier_bounds() {
        for s in gen_n("[a-z]{1,8}", 200) {
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        for s in gen_n("[ -~]{0,30}", 200) {
            assert!(s.len() <= 30, "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn grouped_repeats_and_mixed_classes() {
        for s in gen_n("[a-z]{1,8}(/[A-Za-z][A-Za-z0-9_]{0,10}){1,3}", 200) {
            let parts: Vec<&str> = s.split('/').collect();
            assert!((2..=4).contains(&parts.len()), "{s:?}");
            for part in &parts[1..] {
                assert!(part.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
                assert!(part.len() <= 11, "{s:?}");
            }
        }
    }

    #[test]
    fn alternation_of_escaped_literals() {
        let alts = ["()V", "(I)I", "(IF)F"];
        let mut seen = [false; 3];
        for s in gen_n("\\(\\)V|\\(I\\)I|\\(IF\\)F", 100) {
            let i = alts.iter().position(|a| *a == s).expect("unexpected alt");
            seen[i] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn optional_star_plus() {
        for s in gen_n("ab?c*d+", 200) {
            assert!(s.starts_with('a'), "{s:?}");
            assert!(s.ends_with('d'), "{s:?}");
            assert!(s.len() <= 1 + 1 + 4 + 4, "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_dot_rejected() {
        let mut rng = TestRng::from_seed(1);
        generate("a.c", &mut rng);
    }
}
