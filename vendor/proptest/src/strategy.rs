//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.sample(rng)))
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.sample(rng))
    }

    /// Build recursive structures: `f` receives a strategy for the inner
    /// (smaller) structure and returns the strategy for one more level.
    /// At each of the up-to-`depth` levels the generator flips between
    /// recursing and falling back to the base case, so generated values
    /// stay bounded (`desired_size`/`expected_branch_size` are accepted
    /// for signature compatibility and ignored).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let branch = f(strat).boxed();
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    leaf.sample(rng)
                } else {
                    branch.sample(rng)
                }
            });
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a generator closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (what `prop_oneof!`
/// builds).
pub struct Union<T> {
    arms: Rc<[BoxedStrategy<T>]>,
}

impl<T> Union<T> {
    /// Build from the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms: arms.into() }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: Rc::clone(&self.arms),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ----------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = rng.below(span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                let off = rng.below(span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// String literals act as regex-subset strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::from_seed(3);
        let s = 0u8..=1;
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let v = (-100i64..-50).sample(&mut rng);
            assert!((-100..-50).contains(&v));
        }
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn tuple_combines_components() {
        let mut rng = TestRng::from_seed(1);
        let (a, b, c) = (0u8..4, Just(9i32), -2i64..2).sample(&mut rng);
        assert!(a < 4);
        assert_eq!(b, 9);
        assert!((-2..2).contains(&c));
    }

    #[test]
    #[should_panic(expected = "empty range strategy")]
    fn empty_range_is_rejected() {
        let mut rng = TestRng::from_seed(2);
        let _ = (5u16..5).sample(&mut rng);
    }
}
