//! `prop::collection` — collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_distribution_covers_range() {
        let s = vec(0u8..5, 0..3);
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng).len()] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
