//! One row of the paper's Table I, live: run a workload three times —
//! uninstrumented, under SPA, and under IPA — and compare.
//!
//! ```sh
//! cargo run --release --example overhead_comparison [workload] [size]
//! ```
//!
//! Demonstrates the paper's central contrast: SPA's `MethodEntry`/
//! `MethodExit` events disable the JIT and cost thousands of percent, while
//! IPA's transition-only measurement costs a few percent.

use jnativeprof::harness::{overhead_percent, AgentChoice};
use jnativeprof::session::Session;
use workloads::{by_name, ProblemSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("mtrt", String::as_str);
    let size = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .map_or(ProblemSize::S100, ProblemSize);

    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    };

    println!("benchmark `{name}`, problem size {}:", size.0);
    let run = |agent: AgentChoice| {
        Session::new(workload.as_ref(), size)
            .agent(agent)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    };
    let base = run(AgentChoice::None);
    println!("  original: {:.4} s", base.seconds);

    let spa = run(AgentChoice::Spa);
    assert_eq!(base.checksum, spa.checksum, "SPA must not change behaviour");
    println!(
        "  SPA:      {:.4} s  ({:+.2}% — events disabled the JIT)",
        spa.seconds,
        overhead_percent(&base, &spa)
    );

    let ipa = run(AgentChoice::ipa());
    assert_eq!(base.checksum, ipa.checksum, "IPA must not change behaviour");
    println!(
        "  IPA:      {:.4} s  ({:+.2}% — measurement only at transitions)",
        ipa.seconds,
        overhead_percent(&base, &ipa)
    );

    let profile = ipa.profile.unwrap();
    println!(
        "\nIPA profile: {:.2}% native, {} native method calls, {} JNI calls",
        profile.percent_native(),
        profile.native_method_calls,
        profile.jni_calls
    );
}
