//! Quickstart: measure how much of a Java workload's CPU time is spent in
//! native code.
//!
//! ```sh
//! cargo run --release --example quickstart [workload] [size]
//! ```
//!
//! Builds the chosen benchmark (default: `javac` at size 100), statically
//! instruments every class — application and "JDK" alike — with the IPA
//! wrapper transform, attaches the IPA agent, runs the program, and prints
//! the paper's Table II quantities: % native execution, intercepted JNI
//! calls, and native method invocations.

use jnativeprof::harness::AgentChoice;
use jnativeprof::session::Session;
use workloads::{by_name, ProblemSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("javac", String::as_str);
    let size = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .map_or(ProblemSize::S100, ProblemSize);

    let Some(workload) = by_name(name) else {
        eprintln!(
            "unknown workload {name:?}; try compress, jess, db, javac, mpegaudio, mtrt, jack, jbb"
        );
        std::process::exit(1);
    };

    println!("profiling `{name}` at problem size {} with IPA …\n", size.0);
    let result = Session::new(workload.as_ref(), size)
        .agent(AgentChoice::ipa())
        .run()
        .expect("profiled run");
    let profile = result.profile.expect("IPA attached");

    println!("{profile}");
    println!(
        "virtual execution time: {:.4} s (at 2.66 GHz)",
        result.seconds
    );
    println!("checksum: {}", result.checksum);
    println!(
        "\nground truth (VM oracle): {} native calls, {} JNI upcalls",
        result.outcome.stats.native_calls, result.outcome.stats.jni_upcalls
    );
}
