//! Record a transition trace for one workload and export all three
//! artifact formats.
//!
//! ```text
//! cargo run --example trace_export [WORKLOAD] [SIZE]
//! ```
//!
//! Writes `trace.json` (open in Perfetto / `chrome://tracing`),
//! `trace.folded` (pipe to `flamegraph.pl`), and `events.csv` into the
//! current directory, then prints the per-kind event counts next to the
//! IPA profile aggregates they must match.

use std::sync::Arc;

use jnativeprof::harness::{self, AgentChoice};
use jvmsim_trace::{chrome, csv, flame, TraceRecorder};
use jvmsim_vm::{TraceEventKind, TraceSink};
use workloads::{by_name, ProblemSize};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let size = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .map(ProblemSize)
        .unwrap_or(ProblemSize::S10);
    let workload = by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"));

    let recorder = TraceRecorder::new(1 << 20);
    let run = harness::run_traced(
        workload.as_ref(),
        size,
        AgentChoice::ipa(),
        Some(Arc::clone(&recorder) as Arc<dyn TraceSink>),
    );
    let profile = run.profile.as_ref().expect("IPA attached");
    let snapshot = recorder.snapshot();

    std::fs::write(
        "trace.json",
        chrome::chrome_trace_json(&snapshot, run.pcl.clock_hz()).expect("clock rate"),
    )
    .expect("write trace.json");
    std::fs::write("trace.folded", flame::collapsed_stacks(&snapshot)).expect("write trace.folded");
    std::fs::write("events.csv", csv::events_csv(&snapshot)).expect("write events.csv");

    println!(
        "{name} at size {}: {:.4} virtual seconds",
        size.0, run.seconds
    );
    println!(
        "  events: {} recorded, {} dropped",
        snapshot.recorded(),
        snapshot.dropped()
    );
    println!(
        "  J2N transitions: {} (profile native method calls: {})",
        snapshot.count(TraceEventKind::J2nBegin),
        profile.native_method_calls
    );
    println!(
        "  N2J transitions: {} (profile JNI calls: {})",
        snapshot.count(TraceEventKind::N2jBegin),
        profile.jni_calls
    );
    println!(
        "  method compiles: {}, threads: {}",
        snapshot.count(TraceEventKind::MethodCompile),
        snapshot.count(TraceEventKind::ThreadStart)
    );
    println!("wrote trace.json, trace.folded, events.csv");
}
