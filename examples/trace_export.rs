//! Record a transition trace for one workload and export all three
//! artifact formats.
//!
//! ```text
//! cargo run --example trace_export [WORKLOAD] [SIZE]
//! ```
//!
//! Writes `trace.json` (open in Perfetto / `chrome://tracing`),
//! `trace.folded` (pipe to `flamegraph.pl`), and `events.csv` into the
//! current directory, then prints the per-kind event counts next to the
//! IPA profile aggregates they must match.

use std::sync::Arc;

use jnativeprof::harness::AgentChoice;
use jnativeprof::session::Session;
use jvmsim_trace::{export, TraceRecorder};
use jvmsim_vm::{TraceEventKind, TraceSink};
use workloads::{by_name, ProblemSize};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let size = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .map(ProblemSize)
        .unwrap_or(ProblemSize::S10);
    let workload = by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"));

    let recorder = TraceRecorder::new(1 << 20);
    let run = Session::new(workload.as_ref(), size)
        .agent(AgentChoice::ipa())
        .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .run()
        .expect("traced run");
    let profile = run.profile.as_ref().expect("IPA attached");
    let snapshot = recorder.snapshot();

    // One pass over the exporter registry writes every artifact format.
    for exporter in export::registry(run.pcl.clock_hz()) {
        let path = match exporter.name() {
            "chrome" => "trace.json".to_owned(),
            "events-csv" => "events.csv".to_owned(),
            _ => format!("trace.{}", exporter.extension()),
        };
        let mut out = Vec::new();
        exporter.export(&snapshot, &mut out).expect("render");
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }

    println!(
        "{name} at size {}: {:.4} virtual seconds",
        size.0, run.seconds
    );
    println!(
        "  events: {} recorded, {} dropped",
        snapshot.recorded(),
        snapshot.dropped()
    );
    println!(
        "  J2N transitions: {} (profile native method calls: {})",
        snapshot.count(TraceEventKind::J2nBegin),
        profile.native_method_calls
    );
    println!(
        "  N2J transitions: {} (profile JNI calls: {})",
        snapshot.count(TraceEventKind::N2jBegin),
        profile.jni_calls
    );
    println!(
        "  method compiles: {}, threads: {}",
        snapshot.count(TraceEventKind::MethodCompile),
        snapshot.count(TraceEventKind::ThreadStart)
    );
    println!("wrote trace.json, trace.folded, events.csv");
}
