//! Mixed Java/native call chains — the extension §VII of the paper
//! announces as work in progress: "tracking complete call chains including
//! a mix of Java and native methods … not possible with current profilers,
//! since they are either Java-only or system-specific."
//!
//! ```sh
//! cargo run --release --example mixed_callchains
//! ```
//!
//! Builds a program whose control flow bounces bytecode → native → bytecode
//! (a native codec calling a Java callback through the JNI), attaches the
//! [`ChainProfiler`], and prints the captured mixed stacks.

use std::sync::Arc;

use jnativeprof::classfile::builder::ClassBuilder;
use jnativeprof::classfile::MethodFlags;
use jnativeprof::vm::jni::{JniRetType, ParamStyle};
use jnativeprof::vm::{NativeLibrary, Value, Vm};
use jvmsim_jvmti::Agent;
use nativeprof::ChainProfiler;

const ST: MethodFlags = MethodFlags::PUBLIC.with(MethodFlags::STATIC);

fn build_program() -> (jnativeprof::classfile::ClassFile, NativeLibrary) {
    let mut cb = ClassBuilder::new("demo/Codec");
    cb.native_method("encode", "(I)I", ST).unwrap();
    // quantize: the Java callback the native encoder consults per block.
    {
        let mut m = cb.method("quantize", "(I)I", ST);
        m.iload(0).iconst(16).idiv().iconst(16).imul().ireturn();
        m.finish().unwrap();
    }
    // transform -> encode (native) -> quantize (Java): a three-deep chain
    // alternating implementation types.
    {
        let mut m = cb.method("transform", "(I)I", ST);
        m.iload(0)
            .iconst(3)
            .imul()
            .invokestatic("demo/Codec", "encode", "(I)I");
        m.ireturn();
        m.finish().unwrap();
    }
    {
        let mut m = cb.method("main", "(I)I", ST);
        m.iload(0)
            .invokestatic("demo/Codec", "transform", "(I)I")
            .ireturn();
        m.finish().unwrap();
    }
    let mut lib = NativeLibrary::new("codec");
    lib.register_method("demo/Codec", "encode", |env, args| {
        env.work(2_000); // entropy coding
        env.call_static(
            JniRetType::Int,
            ParamStyle::Varargs,
            "demo/Codec",
            "quantize",
            "(I)I",
            &[args[0]],
        )
    });
    (cb.finish().unwrap(), lib)
}

fn main() {
    let (class, lib) = build_program();
    let profiler = ChainProfiler::new(vec![("demo/Codec".to_owned(), "quantize".to_owned())], 8);

    let mut vm = Vm::new();
    vm.add_classfile(&class);
    vm.register_native_library(lib, true);
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&profiler) as Arc<dyn Agent>).expect("attach");
    let outcome = vm
        .run("demo/Codec", "main", "(I)I", vec![Value::Int(100)])
        .expect("run");
    println!("result: {:?}\n", outcome.main);

    println!("chains captured at demo/Codec.quantize:");
    for chain in profiler.watched_chains() {
        println!(
            "-- depth {}, {} bytecode↔native transitions, mixed: {}",
            chain.depth(),
            chain.transitions(),
            chain.is_mixed()
        );
        print!("{chain}");
    }
    println!("\ndeepest chain overall:");
    print!("{}", profiler.deepest_chain());
    println!("\n(A Java-only profiler would not see the [native] frame; a system");
    println!("profiler would not see the bytecode frames around it.)");
}
