//! Writing your own JVMTI agent against the `jvmsim-jvmti` API.
//!
//! ```sh
//! cargo run --release --example custom_agent
//! ```
//!
//! The agent below is a small "hot method" profiler: it counts entries per
//! method (the classic bytecode-counting profiler family the paper cites as
//! related work [1], [4]) and prints the top methods at `VMDeath`. Note
//! what this costs: requesting `MethodEntry` events disables the JIT, so
//! the program runs ~10× slower even before the agent does any work —
//! exactly the trap the paper's SPA falls into.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use jnativeprof::vm::{builtins, MethodView, ThreadId, Value, Vm};
use jvmsim_jvmti::{attach, Agent, AgentHost, Capabilities, EventType, JvmtiError};
use workloads::by_name;

#[derive(Default)]
struct HotMethodAgent {
    counts: Mutex<HashMap<String, u64>>,
    done: OnceLock<()>,
}

impl Agent for HotMethodAgent {
    fn on_load(&self, host: &mut AgentHost<'_>) -> Result<(), JvmtiError> {
        host.add_capabilities(Capabilities::spa());
        host.enable_event(EventType::MethodEntry)?;
        host.enable_event(EventType::VmDeath)?;
        Ok(())
    }

    fn method_entry(&self, _thread: ThreadId, method: MethodView<'_>) {
        let key = format!("{}.{}{}", method.class_name, method.name, method.descriptor);
        *self.counts.lock().unwrap().entry(key).or_insert(0) += 1;
    }

    fn vm_death(&self) {
        let counts = self.counts.lock().unwrap();
        let mut rows: Vec<_> = counts.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        println!("hottest methods:");
        for (sig, n) in rows.iter().take(10) {
            println!("  {n:>9}  {sig}");
        }
        self.done.set(()).ok();
    }
}

fn main() {
    let workload = by_name("mtrt").expect("mtrt exists");
    let program = workload.program();

    let mut vm = Vm::new();
    builtins::install(&mut vm);
    for class in &program.classes {
        vm.add_classfile(class);
    }
    for lib in &program.libraries {
        vm.register_native_library(lib.clone(), true);
    }

    let agent = Arc::new(HotMethodAgent::default());
    attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>).expect("attach");

    let outcome = vm
        .run(&program.entry_class, "main", "(I)I", vec![Value::Int(10)])
        .expect("run");
    assert!(agent.done.get().is_some(), "VMDeath must have fired");
    println!(
        "\n{} method invocations, {} virtual cycles (JIT was disabled by the agent)",
        outcome.stats.invocations, outcome.total_cycles
    );
}
