//! The SPEC JBB2005-analog evaluation: run the warehouse sequence 1, 2, 3,
//! 4 and report throughput (transactions per virtual second) for the
//! uninstrumented VM, SPA and IPA — the paper's Table I bottom row.
//!
//! ```sh
//! cargo run --release --example jbb_throughput [size]
//! ```

use jnativeprof::harness::{throughput_overhead_percent, AgentChoice};
use jnativeprof::session::{RunOutcome, Session};
use workloads::{by_name, jbb, ProblemSize, Workload};

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map_or(ProblemSize::S10, ProblemSize);
    let workload = by_name("jbb").unwrap();
    println!(
        "JBB2005 analog: warehouse sequence {:?} ({} threads), {} transactions per warehouse\n",
        jbb::WAREHOUSE_SEQUENCE,
        jbb::TOTAL_WAREHOUSES,
        size.0 * 20,
    );

    let tx = |r: &RunOutcome| r.checksum.max(0) as u64;
    let run = |w: &dyn Workload, agent: AgentChoice| {
        Session::new(w, size).agent(agent).run().expect("jbb run")
    };

    let base = run(workload.as_ref(), AgentChoice::None);
    let base_thr = base.throughput(tx(&base));
    println!("  original: {base_thr:>12.1} tx/s");

    let spa = run(workload.as_ref(), AgentChoice::Spa);
    let spa_thr = spa.throughput(tx(&spa));
    println!(
        "  SPA:      {spa_thr:>12.1} tx/s  (overhead {:.2}%)",
        throughput_overhead_percent(base_thr, spa_thr)
    );

    let ipa = run(workload.as_ref(), AgentChoice::ipa());
    let ipa_thr = ipa.throughput(tx(&ipa));
    println!(
        "  IPA:      {ipa_thr:>12.1} tx/s  (overhead {:.2}%)",
        throughput_overhead_percent(base_thr, ipa_thr)
    );

    let profile = ipa.profile.unwrap();
    println!(
        "\nIPA profile: {:.2}% native — {} JNI calls vs {} native method calls",
        profile.percent_native(),
        profile.jni_calls,
        profile.native_method_calls
    );
    println!("(JBB is the one workload where JNI upcalls rival native calls: every");
    println!(" committed transaction is logged natively, and the logger audits and");
    println!(" validates back through the JNI invocation interface.)");
    for t in &ipa.outcome.threads {
        println!(
            "  thread {:<10} {:>12} cycles  {:?}",
            t.name,
            t.cycles,
            t.result.as_ref().map(|_| "ok").map_err(ToString::to_string)
        );
    }
}
