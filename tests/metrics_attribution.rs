//! Overhead-attribution oracle: hand-computed probe costs for tiny
//! programs whose every JVMTI event is enumerable, pinning the metrics
//! plane's central claims:
//!
//! 1. **Exactness** — the per-bucket cycle ledger sums to the PCL total
//!    with zero tolerance: every charged cycle lands in exactly one
//!    bucket, under SPA, IPA, and an arbitrary chaos fault schedule.
//! 2. **Attribution** — the probe buckets equal a formula derived from
//!    the cost model and the agents' probe bodies (TLS accesses,
//!    timestamp reads, agent logic, event dispatch), computed
//!    programmatically rather than hard-coded.
//! 3. **Perturbation-freedom** — a metered run produces the same cycle
//!    totals and checksum as an unmetered one.

use std::sync::Arc;

use jnativeprof::metrics::{
    Bucket, CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot,
};
use jvmsim_classfile::builder::ClassBuilder;
use jvmsim_classfile::MethodFlags;
use jvmsim_faults::{FaultInjector, FaultPlan};
use jvmsim_instr::Archive;
use jvmsim_jvmti::Agent;
use jvmsim_vm::cost::CostModel;
use jvmsim_vm::{NativeLibrary, Value, Vm};
use nativeprof::{IpaAgent, IpaConfig, SpaAgent};

/// Sum over every attribution bucket.
fn bucket_total(s: &MetricsSnapshot) -> u64 {
    Bucket::ALL.iter().map(|&b| s.bucket_cycles(b)).sum()
}

/// A pure-bytecode program with an enumerable event schedule: `main(I)I`
/// calls `helper(I)I` exactly three times straight-line, so an SPA run
/// sees precisely 4 MethodEntry + 4 MethodExit events on one thread.
fn spa_oracle_class() -> jvmsim_classfile::ClassFile {
    let mut cb = ClassBuilder::new("o/Oracle");
    let mut m = cb.method("helper", "(I)I", MethodFlags::STATIC);
    m.iload(0).iconst(1).iadd().ireturn();
    m.finish().unwrap();
    let mut m = cb.method("main", "(I)I", MethodFlags::STATIC);
    m.iload(0)
        .invokestatic("o/Oracle", "helper", "(I)I")
        .invokestatic("o/Oracle", "helper", "(I)I")
        .invokestatic("o/Oracle", "helper", "(I)I")
        .ireturn();
    m.finish().unwrap();
    cb.finish().unwrap()
}

fn run_spa_oracle(
    metrics: Option<MetricsRegistry>,
    faults: Option<Arc<FaultInjector>>,
) -> (
    jvmsim_pcl::Pcl,
    Result<jvmsim_vm::RunOutcome, jvmsim_vm::VmError>,
) {
    let spa = SpaAgent::new();
    let mut vm = Vm::new();
    if let Some(metrics) = metrics {
        metrics.set_agent_bucket(Bucket::SpaProbe);
        vm.set_metrics(metrics);
    }
    if let Some(faults) = faults {
        vm.set_fault_injector(faults);
    }
    vm.add_classfile(&spa_oracle_class());
    let pcl = vm.pcl();
    jvmsim_jvmti::attach(&mut vm, spa as Arc<dyn Agent>).unwrap();
    let outcome = vm.run("o/Oracle", "main", "(I)I", vec![Value::Int(7)]);
    (pcl, outcome)
}

#[test]
fn spa_probe_bucket_matches_the_hand_computed_oracle() {
    let cost = CostModel::default();
    let metrics = MetricsRegistry::new();
    let (pcl, outcome) = run_spa_oracle(Some(metrics.clone()), None);
    assert_eq!(outcome.unwrap().main.unwrap(), Value::Int(10));
    let s = metrics.snapshot();

    // Exactness: every charged cycle is in exactly one bucket.
    assert_eq!(bucket_total(&s), pcl.total_cycles());
    assert_eq!(s.total_cycles(), pcl.total_cycles());

    // Event schedule: 4 entries + 4 exits + ThreadEnd are dispatch-charged
    // (the primordial thread gets no JVMTI ThreadStart, as on a real JVM);
    // VMDeath is delivered but charges nothing.
    assert_eq!(s.counter(CounterId::SpaProbes), 8);
    assert_eq!(s.counter(CounterId::JvmtiEvents), 10);
    assert_eq!(s.counter(CounterId::Invocations), 4);
    assert_eq!(s.counter(CounterId::NativeCalls), 0);
    assert_eq!(s.counter(CounterId::JniUpcalls), 1);
    assert_eq!(s.gauge(GaugeId::Threads), 1);

    // The probe bodies, itemized from the agent source against the cost
    // model: every body is one TLS access plus the agent-logic charge;
    // only main's entry/exit cross a bytecode↔native boundary, so exactly
    // two bodies pay a transition timestamp; and the very first probe
    // lazily creates the thread context (an extra TLS write plus the
    // meter's anchor timestamp).
    let probe_bodies = 8 * (cost.tls_access + cost.agent_logic)
        + 2 * cost.timestamp_read
        + (cost.tls_access + cost.timestamp_read);
    let hist = s.histogram(HistogramId::SpaProbeCycles);
    assert_eq!(hist.count, 8);
    assert_eq!(hist.sum, probe_bodies, "self-timed probe spans");

    // The full SPA bucket: 9 dispatched events, the probe bodies, plus the
    // ThreadEnd flush (TLS remove + final timestamp + totals monitor entry).
    let thread_end = cost.tls_access + cost.timestamp_read + cost.raw_monitor;
    let expected = 9 * cost.event_dispatch + probe_bodies + thread_end;
    assert_eq!(s.bucket_cycles(Bucket::SpaProbe), expected);

    // Nothing leaked into the other overhead buckets; the launcher's JNI
    // entry charge is the whole harness bucket, and the workload bucket
    // is exactly the remainder.
    assert_eq!(s.bucket_cycles(Bucket::IpaProbe), 0);
    assert_eq!(s.bucket_cycles(Bucket::Trace), 0);
    assert_eq!(s.bucket_cycles(Bucket::Harness), cost.jni_invoke);
    assert_eq!(
        s.bucket_cycles(Bucket::Workload),
        pcl.total_cycles() - expected - cost.jni_invoke
    );
}

#[test]
fn ipa_probe_bucket_matches_the_hand_computed_oracle() {
    // One native call through the Fig. 2 wrapper: J2N_Begin/J2N_End fire
    // once each, and the launcher's entry call is the single intercepted
    // N2J pair — four IPA probes in total.
    let mut cb = ClassBuilder::new("o/Nat");
    cb.native_method("spin", "()V", MethodFlags::STATIC)
        .unwrap();
    let mut m = cb.method("main", "(I)I", MethodFlags::STATIC);
    m.invokestatic("o/Nat", "spin", "()V");
    m.iload(0).ireturn();
    m.finish().unwrap();
    let mut lib = NativeLibrary::new("nat");
    lib.register_method("o/Nat", "spin", |env, _args| {
        env.work(5_000);
        Ok(Value::Null)
    });
    let mut archive = Archive::new();
    archive.insert_class(&cb.finish().unwrap()).unwrap();

    let cost = CostModel::default();
    let ipa = IpaAgent::with_config(IpaConfig::default());
    ipa.instrument_archive(&mut archive).unwrap();
    let metrics = MetricsRegistry::new();
    metrics.set_agent_bucket(Bucket::IpaProbe);
    let mut vm = Vm::new();
    vm.set_metrics(metrics.clone());
    vm.add_archive(archive);
    vm.register_native_library(lib, true);
    let pcl = vm.pcl();
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).unwrap();
    let outcome = vm
        .run("o/Nat", "main", "(I)I", vec![Value::Int(7)])
        .unwrap();
    assert_eq!(outcome.main.unwrap(), Value::Int(7));
    let report = ipa.report();
    assert_eq!(report.native_method_calls, 1);
    assert_eq!(report.jni_calls, 1);

    let s = metrics.snapshot();
    assert_eq!(bucket_total(&s), pcl.total_cycles());

    // Four probes, each body = TLS hit + timestamp read + agent logic;
    // the first (the launcher's intercepted N2J_Begin) additionally pays
    // the lazy context create, since the primordial thread never gets a
    // JVMTI ThreadStart.
    let probe_body = cost.tls_access + cost.timestamp_read + cost.agent_logic;
    let probe_bodies = 4 * probe_body + (cost.tls_access + cost.timestamp_read);
    assert_eq!(s.counter(CounterId::IpaProbes), 4);
    let hist = s.histogram(HistogramId::IpaProbeCycles);
    assert_eq!(hist.count, 4);
    assert_eq!(hist.sum, probe_bodies, "self-timed probe spans");

    // The full IPA bucket: the ThreadEnd dispatch (the only delivered
    // event that charges — VMDeath is free), the four probe bodies, the
    // two bridge-native dispatches (J2N_Begin/J2N_End are agent machinery,
    // so their dispatch cost is attributed to the probe), and the
    // ThreadEnd flush (TLS remove + timestamp + monitor).
    let thread_end = cost.tls_access + cost.timestamp_read + cost.raw_monitor;
    let expected = cost.event_dispatch + probe_bodies + 2 * cost.native_dispatch + thread_end;
    assert_eq!(s.bucket_cycles(Bucket::IpaProbe), expected);

    // Bridge natives count as native calls (begin + renamed spin + end).
    assert_eq!(s.counter(CounterId::NativeCalls), 3);
    assert_eq!(s.counter(CounterId::JniUpcalls), 1);
    assert_eq!(s.counter(CounterId::JvmtiEvents), 2);
    assert_eq!(s.bucket_cycles(Bucket::SpaProbe), 0);
    assert_eq!(s.bucket_cycles(Bucket::Trace), 0);
    assert_eq!(s.bucket_cycles(Bucket::Harness), cost.jni_invoke);
    assert_eq!(
        s.bucket_cycles(Bucket::Workload),
        pcl.total_cycles() - expected - cost.jni_invoke
    );
}

#[test]
fn attribution_stays_exact_under_a_chaos_fault_schedule() {
    // Under an arbitrary deterministic fault schedule the hand formulas
    // no longer apply (faults perturb control flow), but the ledger must
    // stay exact: buckets partition the PCL total with zero tolerance,
    // whether or not the run survived.
    let metrics = MetricsRegistry::new();
    let faults = Arc::new(FaultInjector::new(FaultPlan::chaos(0xC4A0_5EED)));
    let (pcl, outcome) = run_spa_oracle(Some(metrics.clone()), Some(faults));
    let s = metrics.snapshot();
    assert_eq!(
        bucket_total(&s),
        pcl.total_cycles(),
        "ledger out of balance under chaos (run outcome: {outcome:?})"
    );
    assert_eq!(s.bucket_cycles(Bucket::Trace), 0);
}

#[test]
fn metering_does_not_perturb_the_run() {
    let (pcl_plain, outcome_plain) = run_spa_oracle(None, None);
    let (pcl_metered, outcome_metered) = run_spa_oracle(Some(MetricsRegistry::new()), None);
    assert_eq!(pcl_plain.total_cycles(), pcl_metered.total_cycles());
    assert_eq!(
        outcome_plain.unwrap().main.unwrap(),
        outcome_metered.unwrap().main.unwrap()
    );
}
