//! Failure-injection integration tests: exceptions crossing instrumented
//! boundaries, broken linkage, misconfigured prefixes, and re-running
//! instrumentation.

use std::sync::Arc;

use jnativeprof::classfile::builder::ClassBuilder;
use jnativeprof::classfile::MethodFlags;
use jnativeprof::instr::{Archive, NativeWrapperTransform};
use jnativeprof::vm::{NativeLibrary, Value, Vm};
use jvmsim_jvmti::Agent;
use nativeprof::IpaAgent;

const ST: MethodFlags = MethodFlags::PUBLIC.with(MethodFlags::STATIC);

fn throwing_program() -> (jnativeprof::classfile::ClassFile, NativeLibrary) {
    let mut cb = ClassBuilder::new("fi/App");
    cb.native_method("risky", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "(I)I", ST);
    // try { return risky(x); } catch (RuntimeException) { return -1; }
    let start = m.new_label();
    let end = m.new_label();
    let handler = m.new_label();
    m.bind(start);
    m.iload(0).invokestatic("fi/App", "risky", "(I)I").ireturn();
    m.bind(end);
    m.bind(handler);
    m.pop().iconst(-1).ireturn();
    m.try_region(start, end, handler, Some("java/lang/RuntimeException"));
    m.finish().unwrap();
    let mut lib = NativeLibrary::new("fi");
    lib.register_method("fi/App", "risky", |env, args| {
        let x = args[0].as_int();
        env.work(500);
        if x < 0 {
            Err(env.throw_new("java/lang/IllegalArgumentException", "negative"))
        } else {
            Ok(Value::Int(x * 2))
        }
    });
    (cb.finish().unwrap(), lib)
}

fn instrumented_vm_with_ipa() -> (Vm, Arc<IpaAgent>, NativeLibrary) {
    let (class, lib) = throwing_program();
    let mut archive = Archive::new();
    archive.insert_class(&class).unwrap();
    let ipa = IpaAgent::new();
    ipa.instrument_archive(&mut archive).unwrap();
    let mut vm = Vm::new();
    vm.add_archive(archive);
    (vm, ipa, lib)
}

#[test]
fn exception_crosses_instrumented_wrapper_into_java_handler() {
    let (mut vm, ipa, lib) = instrumented_vm_with_ipa();
    vm.register_native_library(lib, true);
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).unwrap();
    // Normal path first, then the throwing path.
    let ok = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(21)])
        .unwrap()
        .unwrap();
    assert_eq!(ok, Value::Int(42));
    let caught = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(-7)])
        .unwrap()
        .unwrap();
    assert_eq!(caught, Value::Int(-1), "handler must see the native throw");
    // Both calls were metered: two J2N transitions, no stuck in_native
    // state (the finally-encoded J2N_End ran on the exceptional path too).
    let report = ipa.report();
    assert_eq!(report.native_method_calls, 2);
}

#[test]
fn missing_native_library_is_a_java_linkage_error_even_when_instrumented() {
    let (mut vm, ipa, _lib) = instrumented_vm_with_ipa();
    // Do NOT register the app library: the prefixed native cannot bind.
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).unwrap();
    let err = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(1)])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/UnsatisfiedLinkError");
    // The symbol list must show the prefix retry was attempted.
    assert!(err.message.unwrap().contains("Java_fi_App_risky"));
}

#[test]
fn unregistered_prefix_breaks_resolution() {
    // Instrument, but attach no agent (so no prefix is registered): the
    // renamed native cannot resolve — the failure mode native method
    // prefixing exists to prevent.
    let (class, lib) = throwing_program();
    let mut archive = Archive::new();
    archive.insert_class(&class).unwrap();
    archive.instrument(&NativeWrapperTransform::new()).unwrap();
    // The wrappers also need the bridge class + library; provide stubs so
    // resolution proceeds to the renamed native itself.
    archive
        .insert_class(&jnativeprof::instr::bridge_class(
            jnativeprof::instr::DEFAULT_BRIDGE,
        ))
        .unwrap();
    let mut bridge_lib = NativeLibrary::new("stub-bridge");
    for m in jnativeprof::instr::bridge::TRANSITION_METHODS {
        bridge_lib.register_method(jnativeprof::instr::DEFAULT_BRIDGE, m, |_e, _a| {
            Ok(Value::Null)
        });
    }
    let mut vm = Vm::new();
    vm.add_archive(archive);
    vm.register_native_library(lib, true);
    vm.register_native_library(bridge_lib, true);
    let err = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(1)])
        .unwrap()
        .unwrap_err();
    assert_eq!(err.class_name, "java/lang/UnsatisfiedLinkError");

    // Registering the right prefix fixes it.
    let (class, lib) = throwing_program();
    let mut archive = Archive::new();
    archive.insert_class(&class).unwrap();
    archive.instrument(&NativeWrapperTransform::new()).unwrap();
    archive
        .insert_class(&jnativeprof::instr::bridge_class(
            jnativeprof::instr::DEFAULT_BRIDGE,
        ))
        .unwrap();
    let mut bridge_lib = NativeLibrary::new("stub-bridge");
    for m in jnativeprof::instr::bridge::TRANSITION_METHODS {
        bridge_lib.register_method(jnativeprof::instr::DEFAULT_BRIDGE, m, |_e, _a| {
            Ok(Value::Null)
        });
    }
    let mut vm = Vm::new();
    vm.add_archive(archive);
    vm.register_native_library(lib, true);
    vm.register_native_library(bridge_lib, true);
    vm.register_native_prefix(jnativeprof::instr::DEFAULT_PREFIX);
    let ok = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(21)])
        .unwrap()
        .unwrap();
    assert_eq!(ok, Value::Int(42));
}

#[test]
fn double_instrumentation_is_idempotent_end_to_end() {
    let (class, lib) = throwing_program();
    let mut archive = Archive::new();
    archive.insert_class(&class).unwrap();
    let t = NativeWrapperTransform::new();
    let first = archive.instrument(&t).unwrap();
    assert_eq!(first.classes_instrumented, 1);
    let second = archive.instrument(&t).unwrap();
    assert_eq!(
        second.classes_instrumented, 0,
        "second pass must be a no-op"
    );

    let ipa = IpaAgent::new();
    let mut vm = Vm::new();
    vm.add_archive(archive);
    vm.register_native_library(lib, true);
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).unwrap();
    let ok = vm
        .call_static("fi/App", "main", "(I)I", vec![Value::Int(4)])
        .unwrap()
        .unwrap();
    assert_eq!(ok, Value::Int(8));
    assert_eq!(
        ipa.report().native_method_calls,
        1,
        "exactly one wrapper layer"
    );
}

#[test]
fn uncaught_native_exception_terminates_thread_and_unwinds_agent_state() {
    let (class, lib) = throwing_program();
    // Strip the handler: rebuild main without a try region.
    let mut cb = ClassBuilder::new("fi/Bare");
    cb.native_method("risky", "(I)I", ST).unwrap();
    let mut m = cb.method("main", "(I)I", ST);
    m.iload(0)
        .invokestatic("fi/Bare", "risky", "(I)I")
        .ireturn();
    m.finish().unwrap();
    let bare = cb.finish().unwrap();
    let mut bare_lib = NativeLibrary::new("fibare");
    bare_lib.register_method("fi/Bare", "risky", |env, _| {
        Err(env.throw_new("java/lang/IllegalArgumentException", "always"))
    });
    let _ = (class, lib);

    let mut archive = Archive::new();
    archive.insert_class(&bare).unwrap();
    let ipa = IpaAgent::new();
    ipa.instrument_archive(&mut archive).unwrap();
    let mut vm = Vm::new();
    vm.add_archive(archive);
    vm.register_native_library(bare_lib, true);
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).unwrap();
    let outcome = vm
        .run("fi/Bare", "main", "(I)I", vec![Value::Int(1)])
        .unwrap();
    let err = outcome.main.unwrap_err();
    assert_eq!(err.class_name, "java/lang/IllegalArgumentException");
    // ThreadEnd still fired and the profile is coherent.
    let report = ipa.report();
    assert_eq!(report.native_method_calls, 1);
    assert_eq!(report.threads.len(), 1);
    assert!(report.total.total() > 0);
}
