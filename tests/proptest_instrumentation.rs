//! Property test: IPA's instrumentation is behaviourally transparent for
//! arbitrary native-method signatures and call patterns.
//!
//! Random programs are generated with a native method of random arity and
//! return type; each run compares the uninstrumented result against the
//! fully profiled (instrument + prefix + attach) result, and checks the
//! agent's transition count and the accounting identity
//! `timeBytecode + timeNative > 0` with both sides consistent.

use std::sync::Arc;

use jnativeprof::classfile::builder::ClassBuilder;
use jnativeprof::classfile::MethodFlags;
use jnativeprof::instr::Archive;
use jnativeprof::vm::{NativeLibrary, Value, Vm};
use jvmsim_jvmti::Agent;
use nativeprof::IpaAgent;
use proptest::prelude::*;

const ST: MethodFlags = MethodFlags::PUBLIC.with(MethodFlags::STATIC);

#[derive(Debug, Clone, Copy, PartialEq)]
enum PTy {
    Int,
    Float,
}

impl PTy {
    fn descriptor_char(self) -> char {
        match self {
            PTy::Int => 'I',
            PTy::Float => 'F',
        }
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    params: Vec<PTy>,
    returns_float: bool,
    calls: u8,
    native_throws_on: Option<u8>,
    work: u16,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(prop_oneof![Just(PTy::Int), Just(PTy::Float)], 0..5),
        any::<bool>(),
        1u8..12,
        prop::option::of(0u8..12),
        0u16..2_000,
    )
        .prop_map(
            |(params, returns_float, calls, native_throws_on, work)| Scenario {
                params,
                returns_float,
                calls,
                native_throws_on,
                work,
            },
        )
}

fn descriptor(s: &Scenario) -> String {
    let mut d = String::from("(");
    for p in &s.params {
        d.push(p.descriptor_char());
    }
    d.push(')');
    d.push(if s.returns_float { 'F' } else { 'I' });
    d
}

fn build(s: &Scenario) -> (jnativeprof::classfile::ClassFile, NativeLibrary) {
    let desc = descriptor(s);
    let mut cb = ClassBuilder::new("pt/App");
    cb.native_method("nat", &desc, ST).unwrap();
    let mut m = cb.method("main", "(I)I", ST);
    // acc = 0; loop `calls` times: try { acc += (int) nat(args...) }
    // catch (any) { acc += 7 }
    let loop_top = m.new_label();
    let loop_done = m.new_label();
    let after = m.new_label();
    let start = m.new_label();
    let end = m.new_label();
    let handler = m.new_label();
    m.iconst(0).istore(1); // acc
    m.iconst(0).istore(2); // i
    m.bind(loop_top);
    m.iload(2)
        .iconst(i64::from(s.calls))
        .if_icmp(jnativeprof::classfile::Cond::Ge, loop_done);
    m.bind(start);
    for (k, p) in s.params.iter().enumerate() {
        match p {
            PTy::Int => {
                m.iload(2).iconst(k as i64 + 1).imul();
            }
            PTy::Float => {
                m.iload(2).i2f().fconst(0.5).fadd();
            }
        }
    }
    m.invokestatic("pt/App", "nat", &desc);
    if s.returns_float {
        m.f2i();
    }
    m.iload(1).iadd().istore(1);
    m.goto(after);
    m.bind(end);
    m.bind(handler);
    m.pop();
    m.iload(1).iconst(7).iadd().istore(1);
    m.bind(after);
    m.iinc(2, 1);
    m.goto(loop_top);
    m.bind(loop_done);
    m.iload(1).ireturn();
    m.try_region(start, end, handler, None);
    m.finish().unwrap();
    let class = cb.finish().unwrap();

    let throws_on = s.native_throws_on;
    let work = u64::from(s.work);
    let returns_float = s.returns_float;
    let mut lib = NativeLibrary::new("pt");
    let counter = std::sync::atomic::AtomicU8::new(0);
    lib.register_method("pt/App", "nat", move |env, args| {
        env.work(work);
        let call_index = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if Some(call_index) == throws_on {
            return Err(env.throw_new("java/lang/RuntimeException", "injected"));
        }
        // Deterministic function of the arguments.
        let mut acc = 0i64;
        let mut facc = 0.0f64;
        for v in args {
            match v {
                Value::Int(x) => acc = acc.wrapping_mul(31).wrapping_add(*x),
                Value::Float(x) => facc += *x,
                _ => {}
            }
        }
        if returns_float {
            Ok(Value::Float(facc + acc as f64))
        } else {
            Ok(Value::Int(acc.wrapping_add(facc as i64)))
        }
    });
    (class, lib)
}

fn run_plain(s: &Scenario) -> Result<Value, String> {
    let (class, lib) = build(s);
    let mut vm = Vm::new();
    vm.add_classfile(&class);
    vm.register_native_library(lib, true);
    vm.call_static("pt/App", "main", "(I)I", vec![Value::Int(0)])
        .map_err(|e| e.to_string())?
        .map_err(|e| e.class_name)
}

fn run_profiled(s: &Scenario) -> Result<(Value, u64), String> {
    let (class, lib) = build(s);
    let mut archive = Archive::new();
    archive.insert_class(&class).unwrap();
    let ipa = IpaAgent::new();
    ipa.instrument_archive(&mut archive).unwrap();
    let mut vm = Vm::new();
    vm.add_archive(archive);
    vm.register_native_library(lib, true);
    jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>).map_err(|e| e.to_string())?;
    let result = vm
        .call_static("pt/App", "main", "(I)I", vec![Value::Int(0)])
        .map_err(|e| e.to_string())?
        .map_err(|e| e.class_name)?;
    let report = ipa.report();
    Ok((result, report.native_method_calls))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn instrumentation_is_behaviourally_transparent(s in arb_scenario()) {
        let plain = run_plain(&s);
        let profiled = run_profiled(&s);
        match (plain, profiled) {
            (Ok(a), Ok((b, transitions))) => {
                prop_assert_eq!(a, b, "results diverge for {:?}", s);
                prop_assert_eq!(
                    transitions,
                    u64::from(s.calls),
                    "every native call is one J2N transition"
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (p, q) => prop_assert!(false, "divergence: plain {:?} vs profiled {:?}", p, q),
        }
    }
}
