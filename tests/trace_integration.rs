//! End-to-end trace pipeline test: harness → VM + IPA probes → recorder →
//! exporters. Pins the acceptance property that the event stream and the
//! `NativeProfile` aggregates agree exactly, and that tracing perturbs
//! nothing.

use std::sync::Arc;

use jnativeprof::harness::AgentChoice;
use jnativeprof::session::{RunOutcome, Session};
use jvmsim_trace::{chrome, csv, flame, TraceRecorder};
use jvmsim_vm::{TraceEventKind, TraceSink};
use workloads::{by_name, ProblemSize};

fn traced_run(name: &str, size: ProblemSize) -> (RunOutcome, jvmsim_trace::TraceSnapshot) {
    let workload = by_name(name).expect("workload exists");
    let recorder = TraceRecorder::new(1 << 20);
    let run = Session::new(workload.as_ref(), size)
        .agent(AgentChoice::ipa())
        .trace(Arc::clone(&recorder) as Arc<dyn TraceSink>)
        .run()
        .expect("traced run");
    let snapshot = recorder.snapshot();
    (run, snapshot)
}

#[test]
fn trace_counts_match_the_native_profile_exactly() {
    let (run, snapshot) = traced_run("compress", ProblemSize::S10);
    let profile = run.profile.as_ref().expect("IPA attached");
    // The trace stream and the Table II counters are two views of the
    // same IPA probes — they must agree to the event.
    assert_eq!(
        snapshot.count(TraceEventKind::J2nBegin),
        profile.native_method_calls,
        "J2N events vs native method calls"
    );
    assert_eq!(
        snapshot.count(TraceEventKind::N2jBegin),
        profile.jni_calls,
        "N2J events vs JNI calls"
    );
    // Balanced transitions: every begin has its end.
    assert_eq!(
        snapshot.count(TraceEventKind::J2nBegin),
        snapshot.count(TraceEventKind::J2nEnd)
    );
    assert_eq!(
        snapshot.count(TraceEventKind::N2jBegin),
        snapshot.count(TraceEventKind::N2jEnd)
    );
    // The VM contributes lifecycle events; JIT at default threshold fires
    // on a real workload.
    assert!(snapshot.count(TraceEventKind::ThreadStart) >= 1);
    assert_eq!(
        snapshot.count(TraceEventKind::ThreadStart),
        snapshot.count(TraceEventKind::ThreadEnd)
    );
    assert!(snapshot.count(TraceEventKind::MethodCompile) > 0);
    assert_eq!(snapshot.dropped(), 0, "buffer deep enough for this size");
}

#[test]
fn tracing_does_not_perturb_the_measurement() {
    let workload = by_name("db").expect("workload exists");
    let untraced = Session::new(workload.as_ref(), ProblemSize::S10)
        .agent(AgentChoice::ipa())
        .run()
        .expect("untraced run");
    let (traced, _) = traced_run("db", ProblemSize::S10);
    // Virtual time and every profile aggregate are bit-identical: trace
    // emission charges zero cycles by design.
    assert_eq!(untraced.seconds, traced.seconds);
    assert_eq!(untraced.checksum, traced.checksum);
    let (u, t) = (
        untraced.profile.expect("IPA"),
        traced.profile.as_ref().expect("IPA"),
    );
    assert_eq!(u.jni_calls, t.jni_calls);
    assert_eq!(u.native_method_calls, t.native_method_calls);
    assert_eq!(u.percent_native(), t.percent_native());
}

#[test]
fn exporters_reflect_the_run() {
    let (run, snapshot) = traced_run("jess", ProblemSize::S1);
    let profile = run.profile.as_ref().expect("IPA attached");

    let json = chrome::chrome_trace_json(&snapshot, run.pcl.clock_hz()).expect("clock rate");
    assert!(json.contains("\"traceEvents\""));
    // The per-kind counts ride along in otherData and match the profile.
    assert!(json.contains(&format!("\"j2n_begin\":{}", profile.native_method_calls)));
    assert!(json.contains(&format!("\"n2j_begin\":{}", profile.jni_calls)));

    let folded = flame::collapsed_stacks(&snapshot);
    assert!(folded.lines().count() > 0);
    assert!(folded.lines().all(|l| l.rsplit_once(' ').is_some()));

    let events = csv::events_csv(&snapshot);
    let lines = events.lines().count();
    assert_eq!(
        lines as u64,
        snapshot.recorded() + 1,
        "header + one line per event"
    );
}
