//! Full-pipeline integration tests: workload → (instrumentation) → agent →
//! report, with the paper's Table I / Table II *shape* as acceptance bands
//! (see DESIGN.md §5).
//!
//! Run at reduced problem sizes so `cargo test` stays fast; the `table1` /
//! `table2` binaries run the full S100 evaluation.

use jnativeprof::harness::{overhead_percent, AgentChoice};
use jnativeprof::session::{RunOutcome, Session};
use workloads::{by_name, jvm98_suite, ProblemSize, Workload};

fn run(w: &dyn Workload, size: ProblemSize, agent: AgentChoice) -> RunOutcome {
    Session::new(w, size)
        .agent(agent)
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", w.name()))
}

const SIZE: ProblemSize = ProblemSize(20);

#[test]
fn spa_overhead_is_catastrophic_on_every_workload() {
    for w in jvm98_suite() {
        let base = run(w.as_ref(), ProblemSize(5), AgentChoice::None);
        let spa = run(w.as_ref(), ProblemSize(5), AgentChoice::Spa);
        let ovh = overhead_percent(&base, &spa);
        // db's one-time bulk sort dilutes its overhead at this reduced
        // size; at S100 it measures ~1200% (see the `table1` binary).
        let floor = if w.name() == "db" { 250.0 } else { 1_000.0 };
        assert!(
            ovh > floor,
            "{}: SPA overhead must exceed {floor}%, got {ovh:.0}%",
            w.name()
        );
        assert_eq!(base.checksum, spa.checksum, "{}", w.name());
    }
}

#[test]
fn ipa_overhead_is_moderate_on_every_workload() {
    for w in jvm98_suite() {
        let base = run(w.as_ref(), SIZE, AgentChoice::None);
        let ipa = run(w.as_ref(), SIZE, AgentChoice::ipa());
        let ovh = overhead_percent(&base, &ipa);
        assert!(
            ovh < 30.0,
            "{}: IPA overhead must stay moderate, got {ovh:.2}%",
            w.name()
        );
        assert!(
            ovh > -5.0,
            "{}: negative overhead is nonsense: {ovh:.2}%",
            w.name()
        );
        assert_eq!(base.checksum, ipa.checksum, "{}", w.name());
    }
}

#[test]
fn mtrt_has_the_worst_spa_overhead() {
    // "mtrt … is the most object-oriented benchmark in the SPEC JVM98
    // suite" — the paper's Table I shows it suffering most under SPA.
    let mut worst: Option<(String, f64)> = None;
    let mut mtrt_ovh = 0.0;
    for w in jvm98_suite() {
        let base = run(w.as_ref(), ProblemSize(5), AgentChoice::None);
        let spa = run(w.as_ref(), ProblemSize(5), AgentChoice::Spa);
        let ovh = overhead_percent(&base, &spa);
        if w.name() == "mtrt" {
            mtrt_ovh = ovh;
        }
        if worst.as_ref().is_none_or(|(_, o)| ovh > *o) {
            worst = Some((w.name().to_owned(), ovh));
        }
    }
    let (name, ovh) = worst.unwrap();
    assert_eq!(
        name, "mtrt",
        "worst SPA overhead must be mtrt ({ovh:.0}% vs mtrt {mtrt_ovh:.0}%)"
    );
}

#[test]
fn db_has_the_mildest_spa_overhead() {
    let mut best: Option<(String, f64)> = None;
    for w in jvm98_suite() {
        let base = run(w.as_ref(), ProblemSize(5), AgentChoice::None);
        let spa = run(w.as_ref(), ProblemSize(5), AgentChoice::Spa);
        let ovh = overhead_percent(&base, &spa);
        if best.as_ref().is_none_or(|(_, o)| ovh < *o) {
            best = Some((w.name().to_owned(), ovh));
        }
    }
    let (name, _) = best.unwrap();
    assert!(
        name == "db" || name == "jack",
        "the coarsest-method workloads (db/jack) must suffer least, got {name}"
    );
}

#[test]
fn native_share_bands_match_table2() {
    // < 21% everywhere; the jack/javac group high, the compress/db/
    // mpegaudio/mtrt group below ~6%.
    let expectations = [
        ("compress", 1.0, 9.0),
        ("jess", 1.0, 9.0),
        ("db", 0.1, 3.0),
        ("javac", 8.0, 25.0),
        ("mpegaudio", 0.3, 4.0),
        ("mtrt", 0.3, 5.0),
        ("jack", 12.0, 30.0),
    ];
    for (name, lo, hi) in expectations {
        let w = by_name(name).unwrap();
        let result = run(w.as_ref(), SIZE, AgentChoice::ipa());
        let pct = result.profile.unwrap().percent_native();
        assert!(
            pct > lo && pct < hi,
            "{name}: native share {pct:.2}% outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn all_measured_native_shares_stay_under_the_paper_ceiling() {
    // The paper's headline conclusion: "the execution time spent in native
    // code is within 20% for all benchmarks" (we allow a small margin for
    // the scaled workloads).
    for w in jvm98_suite() {
        let result = run(w.as_ref(), SIZE, AgentChoice::ipa());
        let pct = result.profile.unwrap().percent_native();
        assert!(pct < 25.0, "{}: {pct:.2}%", w.name());
    }
}

#[test]
fn ipa_counts_match_the_vm_oracle_exactly() {
    // Instrumentation must preserve the program's transition structure:
    // IPA's counted J2N/N2J transitions equal the *uninstrumented* VM's
    // ground-truth counters.
    for name in ["compress", "jess", "javac", "jack", "mtrt"] {
        let w = by_name(name).unwrap();
        let base = run(w.as_ref(), SIZE, AgentChoice::None);
        let ipa = run(w.as_ref(), SIZE, AgentChoice::ipa());
        let profile = ipa.profile.unwrap();
        assert_eq!(
            profile.native_method_calls, base.outcome.stats.native_calls,
            "{name}: native-call count drift"
        );
        assert_eq!(
            profile.jni_calls, base.outcome.stats.jni_upcalls,
            "{name}: JNI-call count drift"
        );
    }
}

#[test]
fn ipa_native_share_tracks_the_vm_oracle() {
    for name in ["javac", "jack", "compress"] {
        let w = by_name(name).unwrap();
        let base = run(w.as_ref(), SIZE, AgentChoice::None);
        let oracle_pct =
            100.0 * base.outcome.stats.native_cycles as f64 / base.outcome.total_cycles as f64;
        let ipa = run(w.as_ref(), SIZE, AgentChoice::ipa());
        let measured = ipa.profile.unwrap().percent_native();
        let diff = (measured - oracle_pct).abs();
        assert!(
            diff < 6.0,
            "{name}: IPA measured {measured:.2}% vs oracle {oracle_pct:.2}% (Δ{diff:.2})"
        );
    }
}

#[test]
fn spa_perturbation_deflates_native_share() {
    // SPA's interpreted-only run inflates bytecode time ~8×, so its
    // native-share estimate is systematically *below* IPA's — the
    // "serious measurement perturbation" of §V-A.
    let w = by_name("jack").unwrap();
    let spa = run(w.as_ref(), ProblemSize(5), AgentChoice::Spa);
    let ipa = run(w.as_ref(), ProblemSize(5), AgentChoice::ipa());
    let spa_pct = spa.profile.unwrap().percent_native();
    let ipa_pct = ipa.profile.unwrap().percent_native();
    assert!(
        spa_pct < ipa_pct / 2.0,
        "SPA {spa_pct:.2}% should be far below IPA {ipa_pct:.2}%"
    );
}

#[test]
fn jbb_jni_calls_rival_native_calls() {
    // Unique to JBB2005 in Table II: its JNI-call count dwarfs the other
    // workloads'.
    let w = by_name("jbb").unwrap();
    let result = run(w.as_ref(), ProblemSize(5), AgentChoice::ipa());
    let profile = result.profile.unwrap();
    assert!(
        profile.jni_calls > profile.native_method_calls,
        "jbb: {} JNI vs {} native",
        profile.jni_calls,
        profile.native_method_calls
    );
    // And every other workload has far fewer JNI calls than jbb.
    for name in [
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "mtrt",
        "jack",
    ] {
        let other = run(
            by_name(name).unwrap().as_ref(),
            ProblemSize(5),
            AgentChoice::ipa(),
        );
        assert!(
            other.profile.unwrap().jni_calls < profile.jni_calls,
            "{name} must have fewer JNI calls than jbb"
        );
    }
}

#[test]
fn native_call_count_ordering_matches_table2() {
    // jack > javac > db > mpegaudio > mtrt, compress lowest band.
    let count = |name: &str| {
        run(by_name(name).unwrap().as_ref(), SIZE, AgentChoice::ipa())
            .profile
            .unwrap()
            .native_method_calls
    };
    let jack = count("jack");
    let javac = count("javac");
    let db = count("db");
    let mpeg = count("mpegaudio");
    let mtrt = count("mtrt");
    let compress = count("compress");
    assert!(jack > javac, "jack {jack} > javac {javac}");
    assert!(javac > db, "javac {javac} > db {db}");
    assert!(db > mpeg, "db {db} > mpegaudio {mpeg}");
    assert!(mpeg > mtrt, "mpegaudio {mpeg} > mtrt {mtrt}");
    assert!(compress < db, "compress {compress} in the low band");
}

#[test]
fn per_thread_breakdown_covers_all_jbb_threads() {
    let w = by_name("jbb").unwrap();
    let result = run(w.as_ref(), ProblemSize(2), AgentChoice::ipa());
    let profile = result.profile.unwrap();
    // main + 10 warehouse threads, each with a recorded split.
    assert_eq!(profile.threads.len(), 11);
    let total: u64 = profile.threads.iter().map(|(_, s)| s.total()).sum();
    assert_eq!(
        total,
        profile.total.total(),
        "per-thread splits sum to total"
    );
}
