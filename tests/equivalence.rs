//! Behavioural-equivalence tests: profiling must not change what programs
//! compute. Every workload's checksum must be identical uninstrumented,
//! under SPA, under statically instrumented IPA, and under dynamically
//! instrumented IPA — and deterministic across repeated runs.

use jnativeprof::harness::AgentChoice;
use jnativeprof::session::{RunOutcome, Session};
use nativeprof::{InstrumentationMode, IpaConfig};
use workloads::{by_name, ProblemSize, Workload};

fn run(w: &dyn Workload, size: ProblemSize, agent: AgentChoice) -> RunOutcome {
    Session::new(w, size)
        .agent(agent)
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", w.name()))
}

const ALL: [&str; 8] = [
    "compress",
    "jess",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
    "jbb",
];

#[test]
fn checksums_identical_across_all_agent_configurations() {
    for name in ALL {
        let w = by_name(name).unwrap();
        let size = ProblemSize(3);
        let base = run(w.as_ref(), size, AgentChoice::None).checksum;
        let spa = run(w.as_ref(), size, AgentChoice::Spa).checksum;
        let ipa_static = run(w.as_ref(), size, AgentChoice::ipa()).checksum;
        let ipa_dynamic = run(
            w.as_ref(),
            size,
            AgentChoice::Ipa(IpaConfig {
                mode: InstrumentationMode::Dynamic,
                ..IpaConfig::default()
            }),
        )
        .checksum;
        let ipa_uncompensated = run(
            w.as_ref(),
            size,
            AgentChoice::Ipa(IpaConfig {
                compensate: false,
                ..IpaConfig::default()
            }),
        )
        .checksum;
        assert_eq!(base, spa, "{name}: SPA changed behaviour");
        assert_eq!(base, ipa_static, "{name}: static IPA changed behaviour");
        assert_eq!(base, ipa_dynamic, "{name}: dynamic IPA changed behaviour");
        assert_eq!(
            base, ipa_uncompensated,
            "{name}: compensation is stats-only"
        );
    }
}

#[test]
fn runs_are_fully_deterministic() {
    for name in ALL {
        let w = by_name(name).unwrap();
        let a = run(w.as_ref(), ProblemSize(3), AgentChoice::ipa());
        let b = run(w.as_ref(), ProblemSize(3), AgentChoice::ipa());
        assert_eq!(a.checksum, b.checksum, "{name}");
        assert_eq!(
            a.outcome.total_cycles, b.outcome.total_cycles,
            "{name}: cycle counts must be exactly reproducible"
        );
        let (pa, pb) = (a.profile.unwrap(), b.profile.unwrap());
        assert_eq!(pa, pb, "{name}: profiles must be identical");
    }
}

#[test]
fn static_and_dynamic_instrumentation_agree_on_counts() {
    for name in ["compress", "javac", "jbb"] {
        let w = by_name(name).unwrap();
        let s = run(w.as_ref(), ProblemSize(3), AgentChoice::ipa());
        let d = run(
            w.as_ref(),
            ProblemSize(3),
            AgentChoice::Ipa(IpaConfig {
                mode: InstrumentationMode::Dynamic,
                ..IpaConfig::default()
            }),
        );
        let (ps, pd) = (s.profile.unwrap(), d.profile.unwrap());
        assert_eq!(ps.native_method_calls, pd.native_method_calls, "{name}");
        assert_eq!(ps.jni_calls, pd.jni_calls, "{name}");
    }
}

#[test]
fn compensation_changes_statistics_not_behaviour() {
    let w = by_name("jack").unwrap();
    let on = run(w.as_ref(), ProblemSize(5), AgentChoice::ipa());
    let off = run(
        w.as_ref(),
        ProblemSize(5),
        AgentChoice::Ipa(IpaConfig {
            compensate: false,
            ..IpaConfig::default()
        }),
    );
    let (pon, poff) = (on.profile.unwrap(), off.profile.unwrap());
    assert_eq!(pon.native_method_calls, poff.native_method_calls);
    // Without compensation the measured spans absorb the wrapper overhead,
    // so the uncompensated split accounts strictly more cycles.
    assert!(
        poff.total.total() > pon.total.total(),
        "uncompensated {} must exceed compensated {}",
        poff.total.total(),
        pon.total.total()
    );
}
