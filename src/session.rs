//! The unified run API: one [`Session`] builder instead of four stacked
//! free functions.
//!
//! The harness historically grew `run` → `run_traced` → `try_run_traced`
//! → `try_run_metered`, each adding one optional plane as a positional
//! argument. A [`Session`] names every plane instead:
//!
//! ```
//! use jnativeprof::harness::AgentChoice;
//! use jnativeprof::session::Session;
//! use jnativeprof::workloads::{by_name, ProblemSize};
//!
//! let workload = by_name("mtrt").unwrap();
//! let run = Session::new(workload.as_ref(), ProblemSize::S1)
//!     .agent(AgentChoice::ipa())
//!     .run()
//!     .unwrap();
//! assert!(run.profile.unwrap().percent_native() < 30.0);
//! ```
//!
//! A session can also carry a content-addressed [`CacheStore`]: static IPA
//! instrumentation is then memoized on the cache's instrumentation plane
//! (keyed by input archive bytes + wrapper configuration, so every cell
//! and every chaos seed shares one entry), and [`Session::result_key`]
//! derives the cell-result-plane identity the suite driver memoizes
//! completed rows under. Every cache hit re-verifies the stored digest;
//! a poisoned entry is quarantined and the work recomputed, so a cached
//! session can never differ from an uncached one by a single byte.

use std::sync::Arc;

use jvmsim_cache::{CacheKey, CacheStore, KeyHasher, Plane};
use jvmsim_faults::FaultInjector;
use jvmsim_instr::{instrumentation_cache_key, Archive};
use jvmsim_jvmti::Agent;
use jvmsim_metrics::MetricsRegistry;
use jvmsim_pcl::Pcl;
use jvmsim_vm::cost::CostModel;
use jvmsim_vm::{builtins, DispatchMode, TiersMode, TraceSink, Value, Vm};
use nativeprof::{InstrumentationMode, IpaAgent, NativeProfile, SpaAgent};
use nativeprof_agents::{AllocAgent, AllocReport, LockAgent, LockReport};
use workloads::{by_name, ProblemSize, Workload, WorkloadProgram};

use crate::harness::{AgentChoice, HarnessError};

/// An owned, `Send` description of one run: workload name, agent, size.
///
/// A [`Session`] borrows its `&dyn Workload`, so it cannot cross a thread
/// boundary — but a serve-plane request or a queued batch job must. A
/// `SessionSpec` is the owned form that travels: validate it once with
/// [`SessionSpec::parse`], hand it to a worker, and let the worker
/// materialize a borrowing `Session` via [`SessionSpec::with_session`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Workload name (resolvable via `workloads::by_name`).
    pub workload: String,
    /// Agent to attach.
    pub agent: AgentChoice,
    /// Problem size.
    pub size: ProblemSize,
    /// Tier pipeline ceiling (the `--tiers` axis).
    pub tiers: TiersMode,
}

impl SessionSpec {
    /// A spec from already-validated parts, at the default (full) tier
    /// pipeline.
    #[must_use]
    pub fn new(workload: impl Into<String>, agent: AgentChoice, size: ProblemSize) -> SessionSpec {
        SessionSpec {
            workload: workload.into(),
            agent,
            size,
            tiers: TiersMode::default(),
        }
    }

    /// The same spec with `tiers` selected.
    #[must_use]
    pub fn with_tiers(mut self, tiers: TiersMode) -> SessionSpec {
        self.tiers = tiers;
        self
    }

    /// Parse and validate textual fields — the single place run requests
    /// (CLI flags, HTTP bodies) become a runnable identity.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Usage`] naming the offending field: unknown
    /// workload, unknown agent label, a zero size, or an unknown tiers
    /// mode.
    pub fn parse(
        workload: &str,
        agent: &str,
        size: u32,
        tiers: &str,
    ) -> Result<SessionSpec, HarnessError> {
        if by_name(workload).is_none() {
            return Err(HarnessError::Usage(format!(
                "unknown workload '{workload}'"
            )));
        }
        let agent: AgentChoice = agent
            .parse()
            .map_err(|e: crate::harness::ParseAgentError| HarnessError::Usage(e.to_string()))?;
        if size == 0 {
            return Err(HarnessError::Usage("size must be >= 1".to_owned()));
        }
        let tiers: TiersMode = tiers
            .parse()
            .map_err(|e: jvmsim_vm::ParseTiersModeError| HarnessError::Usage(e.to_string()))?;
        Ok(SessionSpec::new(workload, agent, ProblemSize(size)).with_tiers(tiers))
    }

    /// Resolve the workload and hand a configured [`Session`] (agent and
    /// size applied, optional planes untouched) to `f`. The workload box
    /// lives for the duration of the call, which is what lets an owned
    /// spec drive the borrowing builder.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Vm`] if the workload name no longer resolves (a
    /// spec constructed via [`SessionSpec::parse`] cannot hit this).
    pub fn with_session<R>(&self, f: impl FnOnce(Session<'_>) -> R) -> Result<R, HarnessError> {
        let workload = by_name(&self.workload)
            .ok_or_else(|| HarnessError::Vm(format!("unknown workload {}", self.workload)))?;
        let session = Session::new(workload.as_ref(), self.size)
            .agent(self.agent.clone())
            .tiers(self.tiers);
        Ok(f(session))
    }

    /// Execute the spec with no optional planes.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run(&self) -> Result<RunOutcome, HarnessError> {
        self.with_session(|session| session.run())?
    }
}

/// Result of one [`Session`] run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Workload name.
    pub workload: String,
    /// Agent label (`original` / `SPA` / `IPA`).
    pub agent: &'static str,
    /// Raw VM outcome (per-thread cycles, ground-truth stats).
    pub outcome: jvmsim_vm::RunOutcome,
    /// The agent's native/bytecode time profile, if SPA or IPA ran.
    pub profile: Option<NativeProfile>,
    /// The allocation-site profile, if the ALLOC agent ran.
    pub alloc: Option<AllocReport>,
    /// The monitor-contention profile, if the LOCK agent ran.
    pub lock: Option<LockReport>,
    /// Virtual wall-clock seconds (total cycles at the PCL clock rate).
    pub seconds: f64,
    /// The workload checksum (for behavioural-equivalence checks).
    pub checksum: i64,
    /// The PCL registry of the run (for cycle→second conversions).
    pub pcl: Pcl,
    /// Whether static instrumentation was served from the session's cache:
    /// `None` when no cache was consulted (no cache configured, or the
    /// agent performs no static instrumentation), `Some(true)` on a
    /// verified hit, `Some(false)` on a miss (instrumented fresh, entry
    /// stored for the next run).
    pub instr_cache_hit: Option<bool>,
}

impl RunOutcome {
    /// JBB-style throughput: `units` completed per virtual second.
    pub fn throughput(&self, units: u64) -> f64 {
        if self.seconds > 0.0 {
            units as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Builder for one harness run. See the [module docs][self] for the
/// shape; every plane (agent, trace, faults, metrics, cache) is optional
/// and named.
#[derive(Clone)]
pub struct Session<'w> {
    workload: &'w dyn Workload,
    size: ProblemSize,
    agent: AgentChoice,
    tiers: TiersMode,
    dispatch: DispatchMode,
    trace: Option<Arc<dyn TraceSink>>,
    faults: Option<Arc<FaultInjector>>,
    metrics: Option<MetricsRegistry>,
    cache: Option<CacheStore>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("workload", &self.workload.name())
            .field("size", &self.size)
            .field("agent", &self.agent.label())
            .field("tiers", &self.tiers.label())
            .field("dispatch", &self.dispatch.label())
            .field("trace", &self.trace.is_some())
            .field("faults", &self.faults.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

impl<'w> Session<'w> {
    /// A session for `workload` at `size`, with no agent and no optional
    /// planes — the "time original" baseline of Table I.
    #[must_use]
    pub fn new(workload: &'w dyn Workload, size: ProblemSize) -> Session<'w> {
        Session {
            workload,
            size,
            agent: AgentChoice::None,
            tiers: TiersMode::default(),
            dispatch: DispatchMode::default(),
            trace: None,
            faults: None,
            metrics: None,
            cache: None,
        }
    }

    /// Attach a profiling agent.
    #[must_use]
    pub fn agent(mut self, agent: AgentChoice) -> Self {
        self.agent = agent;
        self
    }

    /// Cap the tier pipeline (the `--tiers` axis): interpreter only,
    /// interp→C1, or the full interp→C1→C2 pipeline.
    #[must_use]
    pub fn tiers(mut self, tiers: TiersMode) -> Self {
        self.tiers = tiers;
        self
    }

    /// Select the interpreter dispatch engine. Identity-neutral — the
    /// switch and threaded engines produce byte-identical runs — so it is
    /// excluded from [`Session::result_key`], like trace sinks.
    #[must_use]
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Install a transition-trace sink before the agent attaches (so
    /// IPA's probes adopt it and J2N/N2J events land in the same recorder
    /// as the VM's thread/compile events). Tracing charges no cycles: a
    /// traced run's Table I/II quantities are identical to an untraced
    /// one's.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Install a deterministic fault injector on the VM **before** the
    /// JVMTI shim attaches, so the VM, the shim's virtual clock, and the
    /// agents all share one fault schedule.
    #[must_use]
    pub fn faults(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Install a [`MetricsRegistry`] on the VM **before any thread
    /// exists** (so every PCL clock mirrors its charges into a per-thread
    /// shard from cycle zero). Recording never charges cycles; the caller
    /// snapshots the registry after the run.
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Consult `store` for memoized static instrumentation. Pass a handle
    /// scoped with [`CacheStore::with_metrics`]/[`CacheStore::with_faults`]
    /// to route hit/miss accounting and chaos corruption per cell.
    #[must_use]
    pub fn cache(mut self, store: CacheStore) -> Self {
        self.cache = Some(store);
        self
    }

    /// The cell-result-plane cache key identifying this session's
    /// deterministic outcome: a digest over the workload (name, size, and
    /// the exact program + boot archive bytes), the agent and its full
    /// configuration, the VM cost model, and the fault plan. Trace sinks
    /// and metrics registries are deliberately excluded — they never
    /// change a run's Table I/II quantities. Two sessions with equal keys
    /// produce bit-identical [`RunOutcome`] quantities; the suite driver
    /// memoizes completed rows under this key.
    #[must_use]
    pub fn result_key(&self) -> CacheKey {
        let program = self.workload.program();
        let archive = encode_program_archive(&program);
        let mut k = KeyHasher::new("cell-result");
        k.field_str("workload", self.workload.name());
        k.field_u64("size", self.size.0 as u64);
        k.field_str("agent", self.agent.label());
        k.field_str("tiers", self.tiers.label());
        if let AgentChoice::Ipa(config) = &self.agent {
            k.field_u64(
                "ipa_mode",
                match config.mode {
                    InstrumentationMode::Static => 0,
                    InstrumentationMode::Dynamic => 1,
                },
            );
            k.field_u64("ipa_compensate", u64::from(config.compensate));
            k.field_digest("wrapper", config.wrapper.digest());
        }
        absorb_cost_model(&mut k, &CostModel::default());
        match &self.faults {
            Some(injector) => {
                let plan = injector.plan();
                k.field_u64("fault_seed", plan.seed);
                for (i, &rate) in plan.rates_ppm.iter().enumerate() {
                    k.field_u64(&format!("fault_rate_{i}"), u64::from(rate));
                }
            }
            None => k.field_str("faults", "none"),
        }
        k.field_digest("archive", archive.digest());
        k.finish()
    }

    /// Execute the session.
    ///
    /// For [`AgentChoice::Ipa`] in static mode this performs the paper's
    /// full pipeline: the application archive **and** the bootstrap
    /// library (the `rt.jar` analog) are rewritten by the native-wrapper
    /// transform before the VM starts, and the wrapper prefix is announced
    /// via JVMTI. With a cache attached, the rewritten archive is served
    /// from (or stored to) the instrumentation plane.
    ///
    /// # Errors
    ///
    /// Every failure mode — instrumentation, attach, VM-level errors,
    /// escaped exceptions, bad checksums — comes back as a typed
    /// [`HarnessError`].
    pub fn run(self) -> Result<RunOutcome, HarnessError> {
        let program = self.workload.program();
        let mut vm = Vm::new();
        vm.set_tiers_mode(self.tiers);
        vm.set_dispatch(self.dispatch);
        if let Some(metrics) = &self.metrics {
            metrics.set_agent_bucket(self.agent.bucket());
            vm.set_metrics(metrics.clone());
        }
        if let Some(trace) = self.trace {
            vm.set_trace_sink(trace);
        }
        if let Some(faults) = &self.faults {
            vm.set_fault_injector(Arc::clone(faults));
        }
        let label = self.agent.label();
        let mut instr_cache_hit = None;

        let profile_source: Option<ProfileSource> = match self.agent {
            AgentChoice::None => {
                vm.add_archive(encode_program_archive(&program));
                None
            }
            AgentChoice::Spa => {
                vm.add_archive(encode_program_archive(&program));
                let spa = SpaAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&spa) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(format!("SPA: {e}")))?;
                Some(ProfileSource::Spa(spa))
            }
            AgentChoice::Ipa(config) => {
                let ipa = IpaAgent::with_config(config.clone());
                let mut archive = encode_program_archive(&program);
                if config.mode == InstrumentationMode::Static {
                    match &self.cache {
                        Some(cache) => {
                            let key = instrumentation_cache_key(&archive, &config.wrapper);
                            let mut served = false;
                            if let Some(bytes) = cache.lookup(Plane::Instrumentation, &key) {
                                // The entry's digest verified, so these are
                                // exactly the bytes a fresh instrumentation
                                // run stored; a decode failure can only mean
                                // a foreign/stale payload under this key —
                                // quarantine it and recompute.
                                match Archive::from_bytes(&bytes) {
                                    Ok(cached) => {
                                        archive = cached;
                                        served = true;
                                    }
                                    Err(_) => cache.quarantine(Plane::Instrumentation, &key),
                                }
                            }
                            if !served {
                                ipa.instrument_archive(&mut archive)
                                    .map_err(|e| HarnessError::Instrument(e.to_string()))?;
                                // A failed store only means the next run
                                // pays instrumentation again.
                                let _ =
                                    cache.store(Plane::Instrumentation, &key, &archive.to_bytes());
                            }
                            instr_cache_hit = Some(served);
                        }
                        None => {
                            ipa.instrument_archive(&mut archive)
                                .map_err(|e| HarnessError::Instrument(e.to_string()))?;
                        }
                    }
                }
                vm.add_archive(archive);
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(format!("IPA: {e}")))?;
                Some(ProfileSource::Ipa(ipa))
            }
            AgentChoice::Alloc => {
                vm.add_archive(encode_program_archive(&program));
                let agent = AllocAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(format!("ALLOC: {e}")))?;
                Some(ProfileSource::Alloc(agent))
            }
            AgentChoice::Lock => {
                vm.add_archive(encode_program_archive(&program));
                let agent = LockAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&agent) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(format!("LOCK: {e}")))?;
                Some(ProfileSource::Lock(agent))
            }
        };
        // Native libraries: the JDK's plus the workload's.
        vm.register_native_library(builtins::libjava(), true);
        for lib in &program.libraries {
            vm.register_native_library(lib.clone(), true);
        }

        let pcl = vm.pcl();
        let outcome = vm
            .run(
                &program.entry_class,
                &program.entry_method,
                "(I)I",
                vec![Value::Int(i64::from(self.size.0))],
            )
            .map_err(|e| HarnessError::Vm(e.to_string()))?;
        let checksum = match &outcome.main {
            Ok(Value::Int(v)) => *v,
            Err(escaped) => return Err(HarnessError::Escaped(escaped.to_string())),
            other => return Err(HarnessError::BadChecksum(format!("{other:?}"))),
        };
        let seconds = pcl.cycles_to_seconds(outcome.total_cycles);
        let (mut profile, mut alloc, mut lock) = (None, None, None);
        match profile_source {
            Some(ProfileSource::Spa(a)) => profile = Some(a.report()),
            Some(ProfileSource::Ipa(a)) => profile = Some(a.report()),
            Some(ProfileSource::Alloc(a)) => alloc = Some(a.report()),
            Some(ProfileSource::Lock(a)) => lock = Some(a.report()),
            None => {}
        }
        Ok(RunOutcome {
            workload: self.workload.name().to_owned(),
            agent: label,
            outcome,
            profile,
            alloc,
            lock,
            seconds,
            checksum,
            pcl,
            instr_cache_hit,
        })
    }
}

enum ProfileSource {
    Spa(Arc<SpaAgent>),
    Ipa(Arc<IpaAgent>),
    Alloc(Arc<AllocAgent>),
    Lock(Arc<LockAgent>),
}

/// Encode a workload program (plus the boot library) into one archive —
/// the input to both instrumentation and the cache-key derivations.
pub(crate) fn encode_program_archive(program: &WorkloadProgram) -> Archive {
    let mut archive = Archive::new();
    for (name, bytes) in builtins::boot_archive() {
        archive
            .insert_bytes(name, bytes)
            .expect("unique boot class");
    }
    for class in &program.classes {
        archive.insert_class(class).expect("unique app class");
    }
    archive
}

/// Absorb every cost-model field, in declaration order, into a key. The
/// cost model is part of a run's identity: a recalibrated model must never
/// serve results cached under the old one.
fn absorb_cost_model(k: &mut KeyHasher, c: &CostModel) {
    for (name, v) in [
        ("interp_insn", c.tiers.interp_insn),
        ("c1_insn", c.tiers.c1_insn),
        ("c2_insn", c.tiers.c2_insn),
        ("call_overhead_interp", c.tiers.call_overhead_interp),
        ("call_overhead_c1", c.tiers.call_overhead_c1),
        ("call_overhead_c2", c.tiers.call_overhead_c2),
        (
            "c1_invocation_threshold",
            u64::from(c.tiers.c1_invocation_threshold),
        ),
        (
            "c2_invocation_threshold",
            u64::from(c.tiers.c2_invocation_threshold),
        ),
        (
            "osr_backedge_threshold",
            u64::from(c.tiers.osr_backedge_threshold),
        ),
        ("c1_compile_per_insn", c.tiers.c1_compile_per_insn),
        ("c2_compile_per_insn", c.tiers.c2_compile_per_insn),
        ("alloc_object", c.alloc_object),
        ("alloc_array_base", c.alloc_array_base),
        ("alloc_array_per_8", c.alloc_array_per_8),
        ("native_dispatch", c.native_dispatch),
        ("jni_invoke", c.jni_invoke),
        ("event_dispatch", c.event_dispatch),
        ("tls_access", c.tls_access),
        ("timestamp_read", c.timestamp_read),
        ("raw_monitor", c.raw_monitor),
        ("agent_logic", c.agent_logic),
        ("sample_dispatch", c.sample_dispatch),
    ] {
        k.field_u64(name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim_faults::FaultPlan;
    use std::sync::atomic::{AtomicU64, Ordering};
    use workloads::by_name;

    fn scratch(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "jnativeprof-session-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn session_runs_are_deterministic() {
        let w = by_name("compress").unwrap();
        let run = || {
            Session::new(w.as_ref(), ProblemSize::S1)
                .agent(AgentChoice::ipa())
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        assert_eq!(a.outcome.total_cycles, b.outcome.total_cycles);
        assert_eq!(a.agent, "IPA");
        assert_eq!(a.instr_cache_hit, None, "no cache configured");
    }

    #[test]
    fn instrumentation_cache_round_trip_is_invisible() {
        let store = CacheStore::open(scratch("instr")).unwrap();
        let w = by_name("compress").unwrap();
        let run = |expect_hit: Option<bool>| {
            let r = Session::new(w.as_ref(), ProblemSize::S1)
                .agent(AgentChoice::ipa())
                .cache(store.clone())
                .run()
                .unwrap();
            assert_eq!(r.instr_cache_hit, expect_hit);
            (r.checksum, r.seconds.to_bits(), r.outcome.total_cycles)
        };
        let cold = run(Some(false));
        let warm = run(Some(true));
        assert_eq!(cold, warm, "cached instrumentation changed the run");
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().quarantined, 0);
    }

    #[test]
    fn corrupted_instrumentation_entry_recomputes() {
        let store = CacheStore::open(scratch("poison")).unwrap();
        let w = by_name("compress").unwrap();
        let session = || {
            Session::new(w.as_ref(), ProblemSize::S1)
                .agent(AgentChoice::ipa())
                .cache(store.clone())
        };
        let cold = session().run().unwrap();
        // Poison the single instrumentation entry on disk.
        let dir = store.root().join("instr");
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let path = entries[0].as_ref().unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let warm = session().run().unwrap();
        assert_eq!(warm.instr_cache_hit, Some(false), "poison must not serve");
        assert_eq!(warm.checksum, cold.checksum);
        assert_eq!(warm.seconds.to_bits(), cold.seconds.to_bits());
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.quarantined_files(), 1);
        // The recomputed entry serves the third run.
        assert_eq!(session().run().unwrap().instr_cache_hit, Some(true));
    }

    #[test]
    fn session_spec_validates_and_matches_direct_runs() {
        assert!(matches!(
            SessionSpec::parse("nope", "ipa", 1, "full"),
            Err(HarnessError::Usage(_))
        ));
        assert!(matches!(
            SessionSpec::parse("compress", "jit", 1, "full"),
            Err(HarnessError::Usage(_))
        ));
        assert!(matches!(
            SessionSpec::parse("compress", "ipa", 0, "full"),
            Err(HarnessError::Usage(_))
        ));
        assert!(matches!(
            SessionSpec::parse("compress", "ipa", 1, "c9"),
            Err(HarnessError::Usage(_))
        ));
        let spec = SessionSpec::parse("compress", "IPA", 1, "full").unwrap();
        assert_eq!(spec.agent.label(), "IPA");
        let via_spec = spec.run().unwrap();
        let w = by_name("compress").unwrap();
        let direct = Session::new(w.as_ref(), ProblemSize::S1)
            .agent(AgentChoice::ipa())
            .run()
            .unwrap();
        assert_eq!(via_spec.checksum, direct.checksum);
        assert_eq!(via_spec.seconds.to_bits(), direct.seconds.to_bits());
        // The spec's key equals the borrowing session's key: a served
        // request and a batch cell share one cache identity.
        let spec_key = spec.with_session(|s| s.result_key()).unwrap();
        let direct_key = Session::new(w.as_ref(), ProblemSize::S1)
            .agent(AgentChoice::ipa())
            .result_key();
        assert_eq!(spec_key, direct_key);
    }

    #[test]
    fn result_key_separates_every_identity_component() {
        let w = by_name("compress").unwrap();
        let base = Session::new(w.as_ref(), ProblemSize::S1).agent(AgentChoice::ipa());
        let k = |s: &Session<'_>| s.result_key();
        assert_eq!(k(&base), k(&base.clone()), "key is deterministic");
        assert_ne!(
            k(&base),
            k(&Session::new(w.as_ref(), ProblemSize::S10).agent(AgentChoice::ipa())),
            "size"
        );
        assert_ne!(k(&base), k(&base.clone().agent(AgentChoice::Spa)), "agent");
        let other = by_name("db").unwrap();
        assert_ne!(
            k(&base),
            k(&Session::new(other.as_ref(), ProblemSize::S1).agent(AgentChoice::ipa())),
            "workload"
        );
        let inj = Arc::new(FaultInjector::new(FaultPlan::chaos(7)));
        assert_ne!(k(&base), k(&base.clone().faults(inj)), "fault plan");
        // Trace sinks and metrics never change quantities: same key.
        let recorder = jvmsim_trace::TraceRecorder::new(64);
        assert_eq!(
            k(&base),
            k(&base.clone().trace(recorder as Arc<dyn TraceSink>)),
            "trace sink is identity-neutral"
        );
    }
}
