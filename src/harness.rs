//! The experiment harness: run any workload under no agent, SPA, or IPA,
//! and collect the quantities the paper's Tables I and II report.
//!
//! The run entry points live in [`crate::session`]: build a
//! [`Session`](crate::session::Session), name the planes you want (agent,
//! trace, faults, metrics, cache), and call `run()`. The historical
//! positional free functions (`run` → `run_traced` → `try_run_traced` →
//! `try_run_metered`) lived here as deprecated shims for one release and
//! are gone; this module keeps the shared vocabulary — [`AgentChoice`],
//! [`HarnessError`] with its stable exit codes, and the paper's overhead
//! formulas.

use jvmsim_metrics::Bucket;
use nativeprof::IpaConfig;

/// Typed failure taxonomy for a harness run — used by the suite driver to
/// quarantine failing cells instead of dying, by the serve daemon to map
/// run failures onto HTTP statuses, and by `jprof` as its single
/// exit-code path (see [`HarnessError::exit_code`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum HarnessError {
    /// Static instrumentation of the archive failed.
    Instrument(String),
    /// The agent could not be attached.
    Attach(String),
    /// The VM reported a machine-level error from `run`.
    Vm(String),
    /// An exception escaped the workload's entry method.
    Escaped(String),
    /// The entry method completed but did not return an `int` checksum.
    BadChecksum(String),
    /// The command line could not be understood (unknown subcommand, bad
    /// flag, bad value). The message includes usage text.
    Usage(String),
    /// An artifact could not be written or rendered.
    Artifact(String),
    /// A daemon could not bind its listen socket (address in use, bad
    /// address, no permission). Distinct from [`HarnessError::Artifact`]
    /// so supervisors can tell "port taken, back off and retry" from
    /// "disk problem" without parsing stderr.
    Bind(String),
    /// The run completed but degraded: cells were quarantined, invariants
    /// broke, or two views of the same data disagreed.
    Degraded(String),
}

impl HarnessError {
    /// Stable process exit code for this failure class — the one `jprof`
    /// exits with, so scripts can distinguish "you typed it wrong" (2)
    /// from "the run degraded" (9) without parsing stderr. `0` is success
    /// and `1` is reserved for untyped/unexpected exits, so every variant
    /// maps to a distinct code ≥ 2.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            HarnessError::Usage(_) => 2,
            HarnessError::Instrument(_) => 3,
            HarnessError::Attach(_) => 4,
            HarnessError::Vm(_) => 5,
            HarnessError::Escaped(_) => 6,
            HarnessError::BadChecksum(_) => 7,
            HarnessError::Artifact(_) => 8,
            HarnessError::Degraded(_) => 9,
            HarnessError::Bind(_) => 10,
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            HarnessError::Attach(e) => write!(f, "agent attach failed: {e}"),
            HarnessError::Vm(e) => write!(f, "vm error: {e}"),
            HarnessError::Escaped(e) => write!(f, "exception escaped entry method: {e}"),
            HarnessError::BadChecksum(e) => write!(f, "entry method returned {e}, expected int"),
            HarnessError::Usage(e) => write!(f, "{e}"),
            HarnessError::Artifact(e) => write!(f, "artifact error: {e}"),
            HarnessError::Bind(e) => write!(f, "bind failed: {e}"),
            HarnessError::Degraded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Which profiling agent (if any) to attach.
#[derive(Debug, Clone, Default)]
pub enum AgentChoice {
    /// No profiling — the "time original" baseline of Table I.
    #[default]
    None,
    /// The Simple Profiling Agent (§III).
    Spa,
    /// The Improved Profiling Agent (§IV) with the given configuration.
    Ipa(IpaConfig),
    /// The object-centric allocation-site profiler.
    Alloc,
    /// The raw-monitor contention profiler.
    Lock,
}

/// The label did not name a known agent. Displays the offending label and
/// the full valid set, so every front end (CLI flags, suite specs, HTTP
/// bodies) reports the same actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAgentError {
    got: String,
}

impl std::fmt::Display for ParseAgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown agent '{}' (valid: original, spa, ipa, alloc, lock)",
            self.got
        )
    }
}

impl std::error::Error for ParseAgentError {}

impl std::str::FromStr for AgentChoice {
    type Err = ParseAgentError;

    /// ASCII-case-insensitive, so run specs can say `ipa` or `IPA`; the
    /// one parser every front end shares.
    fn from_str(label: &str) -> Result<AgentChoice, ParseAgentError> {
        match label.to_ascii_lowercase().as_str() {
            "original" | "none" => Ok(AgentChoice::None),
            "spa" => Ok(AgentChoice::Spa),
            "ipa" => Ok(AgentChoice::ipa()),
            "alloc" => Ok(AgentChoice::Alloc),
            "lock" => Ok(AgentChoice::Lock),
            _ => Err(ParseAgentError {
                got: label.to_owned(),
            }),
        }
    }
}

impl AgentChoice {
    /// Default IPA (static instrumentation, compensation on).
    pub fn ipa() -> Self {
        AgentChoice::Ipa(IpaConfig::default())
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AgentChoice::None => "original",
            AgentChoice::Spa => "SPA",
            AgentChoice::Ipa(_) => "IPA",
            AgentChoice::Alloc => "ALLOC",
            AgentChoice::Lock => "LOCK",
        }
    }

    /// Parse a label back into a choice. `None` for anything unknown —
    /// callers that want the typed message use [`str::parse`] directly.
    #[must_use]
    pub fn parse(label: &str) -> Option<AgentChoice> {
        label.parse().ok()
    }

    /// The attribution bucket this agent's machinery charges into.
    pub fn bucket(&self) -> Bucket {
        match self {
            AgentChoice::None => Bucket::Workload,
            AgentChoice::Spa => Bucket::SpaProbe,
            AgentChoice::Ipa(_) => Bucket::IpaProbe,
            AgentChoice::Alloc => Bucket::AllocProbe,
            AgentChoice::Lock => Bucket::LockProbe,
        }
    }
}

/// Overhead of `with` relative to `baseline`, as the paper computes it:
/// `(time_with / time_without − 1) × 100`.
pub fn overhead_percent(
    baseline: &crate::session::RunOutcome,
    with: &crate::session::RunOutcome,
) -> f64 {
    if baseline.seconds == 0.0 {
        return 0.0;
    }
    (with.seconds / baseline.seconds - 1.0) * 100.0
}

/// Throughput overhead for JBB: `(ops_without / ops_with − 1) × 100`.
/// A zero profiled throughput is a total collapse: reported as infinite
/// overhead, not zero.
pub fn throughput_overhead_percent(baseline: f64, with: f64) -> f64 {
    if with == 0.0 {
        return f64::INFINITY;
    }
    (baseline / with - 1.0) * 100.0
}

/// Geometric mean of a slice (used for the JVM98 summary row).
///
/// Inputs must be positive (they are times or overhead factors); a
/// non-positive value is a caller bug and yields `NaN` rather than a
/// silently collapsed mean.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if values.iter().any(|&v| v <= 0.0) {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::RunOutcome;
    use workloads::by_name;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        // Non-positive input is a caller bug: surfaced as NaN.
        assert!(geometric_mean(&[0.0, 1.0]).is_nan());
    }

    #[test]
    fn overhead_math_matches_the_paper_formulas() {
        // (time_with / time_without − 1) × 100
        let mk = |seconds: f64| RunOutcome {
            workload: "x".into(),
            agent: "original",
            outcome: {
                let mut vm = jvmsim_vm::Vm::new();
                vm.add_classfile(
                    &jvmsim_classfile::builder::single_method_class("h/T", "f", "()I", |m| {
                        m.iconst(0).ireturn();
                    })
                    .unwrap(),
                );
                vm.run("h/T", "f", "()I", vec![]).unwrap()
            },
            profile: None,
            alloc: None,
            lock: None,
            seconds,
            checksum: 0,
            pcl: jvmsim_pcl::Pcl::new(),
            instr_cache_hit: None,
        };
        let base = mk(2.0);
        let with = mk(3.0);
        assert!((overhead_percent(&base, &with) - 50.0).abs() < 1e-9);
        // Throughput overhead: (ops_without / ops_with − 1) × 100.
        assert!((throughput_overhead_percent(7251.0, 66.4) - 10_820.18).abs() < 1.0);
        assert_eq!(throughput_overhead_percent(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn agent_choice_labels() {
        assert_eq!(AgentChoice::None.label(), "original");
        assert_eq!(AgentChoice::Spa.label(), "SPA");
        assert_eq!(AgentChoice::ipa().label(), "IPA");
        assert_eq!(AgentChoice::Alloc.label(), "ALLOC");
        assert_eq!(AgentChoice::Lock.label(), "LOCK");
        assert_eq!(AgentChoice::None.bucket(), Bucket::Workload);
        assert_eq!(AgentChoice::Spa.bucket(), Bucket::SpaProbe);
        assert_eq!(AgentChoice::ipa().bucket(), Bucket::IpaProbe);
        assert_eq!(AgentChoice::Alloc.bucket(), Bucket::AllocProbe);
        assert_eq!(AgentChoice::Lock.bucket(), Bucket::LockProbe);
    }

    #[test]
    fn error_exit_codes_are_distinct_and_reserved() {
        let variants = [
            HarnessError::Instrument(String::new()),
            HarnessError::Attach(String::new()),
            HarnessError::Vm(String::new()),
            HarnessError::Escaped(String::new()),
            HarnessError::BadChecksum(String::new()),
            HarnessError::Usage(String::new()),
            HarnessError::Artifact(String::new()),
            HarnessError::Degraded(String::new()),
            HarnessError::Bind(String::new()),
        ];
        let mut codes: Vec<u8> = variants.iter().map(HarnessError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "exit codes must be distinct");
        // 0 = success, 1 = untyped exit: both reserved.
        assert!(codes.iter().all(|&c| c >= 2));
        assert_eq!(HarnessError::Usage(String::new()).exit_code(), 2);
    }

    #[test]
    fn agent_choice_parse_round_trips() {
        assert!(matches!(
            AgentChoice::parse("original"),
            Some(AgentChoice::None)
        ));
        assert!(matches!(
            AgentChoice::parse("none"),
            Some(AgentChoice::None)
        ));
        assert!(matches!(AgentChoice::parse("spa"), Some(AgentChoice::Spa)));
        assert!(matches!(AgentChoice::parse("SPA"), Some(AgentChoice::Spa)));
        assert!(matches!(
            AgentChoice::parse("IPA"),
            Some(AgentChoice::Ipa(_))
        ));
        assert!(matches!(
            AgentChoice::parse("alloc"),
            Some(AgentChoice::Alloc)
        ));
        assert!(matches!(
            AgentChoice::parse("LOCK"),
            Some(AgentChoice::Lock)
        ));
        assert!(AgentChoice::parse("jit").is_none());
        // The typed error names the bad label and the full valid set.
        let err = "jit".parse::<AgentChoice>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown agent 'jit' (valid: original, spa, ipa, alloc, lock)"
        );
        for choice in [
            AgentChoice::None,
            AgentChoice::Spa,
            AgentChoice::ipa(),
            AgentChoice::Alloc,
            AgentChoice::Lock,
        ] {
            let back = AgentChoice::parse(choice.label()).unwrap();
            assert_eq!(back.label(), choice.label());
        }
    }

    #[test]
    fn run_outcome_throughput() {
        let w = by_name("jbb").unwrap();
        let r = crate::session::Session::new(w.as_ref(), workloads::ProblemSize(1))
            .run()
            .unwrap();
        let tx = r.checksum.max(0) as u64;
        assert!(tx > 0);
        let thr = r.throughput(tx);
        assert!(thr > 0.0);
        assert!((thr - tx as f64 / r.seconds).abs() < 1e-6);
    }
}
