//! The experiment harness: run any workload under no agent, SPA, or IPA,
//! and collect the quantities the paper's Tables I and II report.

use std::sync::Arc;

use jvmsim_faults::FaultInjector;
use jvmsim_instr::Archive;
use jvmsim_jvmti::Agent;
use jvmsim_metrics::{Bucket, MetricsRegistry};
use jvmsim_pcl::Pcl;
use jvmsim_vm::{builtins, RunOutcome, TraceSink, Value, Vm};
use nativeprof::{IpaAgent, IpaConfig, NativeProfile, SpaAgent};
use workloads::{ProblemSize, Workload, WorkloadProgram};

/// Typed failure taxonomy for a harness run — the graceful-degradation
/// alternative to the panicking [`run`]/[`run_traced`] entry points, used
/// by the suite driver to quarantine failing cells instead of dying.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum HarnessError {
    /// Static instrumentation of the archive failed.
    Instrument(String),
    /// The agent could not be attached.
    Attach(String),
    /// The VM reported a machine-level error from `run`.
    Vm(String),
    /// An exception escaped the workload's entry method.
    Escaped(String),
    /// The entry method completed but did not return an `int` checksum.
    BadChecksum(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            HarnessError::Attach(e) => write!(f, "agent attach failed: {e}"),
            HarnessError::Vm(e) => write!(f, "vm error: {e}"),
            HarnessError::Escaped(e) => write!(f, "exception escaped entry method: {e}"),
            HarnessError::BadChecksum(e) => write!(f, "entry method returned {e}, expected int"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Which profiling agent (if any) to attach.
#[derive(Debug, Clone, Default)]
pub enum AgentChoice {
    /// No profiling — the "time original" baseline of Table I.
    #[default]
    None,
    /// The Simple Profiling Agent (§III).
    Spa,
    /// The Improved Profiling Agent (§IV) with the given configuration.
    Ipa(IpaConfig),
}

impl AgentChoice {
    /// Default IPA (static instrumentation, compensation on).
    pub fn ipa() -> Self {
        AgentChoice::Ipa(IpaConfig::default())
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AgentChoice::None => "original",
            AgentChoice::Spa => "SPA",
            AgentChoice::Ipa(_) => "IPA",
        }
    }

    /// The attribution bucket this agent's machinery charges into.
    pub fn bucket(&self) -> Bucket {
        match self {
            AgentChoice::None => Bucket::Workload,
            AgentChoice::Spa => Bucket::SpaProbe,
            AgentChoice::Ipa(_) => Bucket::IpaProbe,
        }
    }
}

/// Result of one harness run.
#[derive(Debug)]
pub struct HarnessRun {
    /// Workload name.
    pub workload: String,
    /// Agent label (`original` / `SPA` / `IPA`).
    pub agent: &'static str,
    /// Raw VM outcome (per-thread cycles, ground-truth stats).
    pub outcome: RunOutcome,
    /// The agent's profile, if one was attached.
    pub profile: Option<NativeProfile>,
    /// Virtual wall-clock seconds (total cycles at the PCL clock rate).
    pub seconds: f64,
    /// The workload checksum (for behavioural-equivalence checks).
    pub checksum: i64,
    /// The PCL registry of the run (for cycle→second conversions).
    pub pcl: Pcl,
}

impl HarnessRun {
    /// JBB-style throughput: `units` completed per virtual second.
    pub fn throughput(&self, units: u64) -> f64 {
        if self.seconds > 0.0 {
            units as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn encode_program_archive(program: &WorkloadProgram) -> Archive {
    let mut archive = Archive::new();
    for (name, bytes) in builtins::boot_archive() {
        archive
            .insert_bytes(name, bytes)
            .expect("unique boot class");
    }
    for class in &program.classes {
        archive.insert_class(class).expect("unique app class");
    }
    archive
}

/// Run `workload` at `size` under `agent`.
///
/// For [`AgentChoice::Ipa`] in static mode this performs the paper's full
/// pipeline: the application archive **and** the bootstrap library (the
/// `rt.jar` analog) are rewritten by the native-wrapper transform before
/// the VM starts, and the wrapper prefix is announced via JVMTI.
///
/// # Panics
///
/// Panics on linkage errors or escaped exceptions — harness programs are
/// expected to be self-contained (failure injection is tested at the VM
/// layer).
pub fn run(workload: &dyn Workload, size: ProblemSize, agent: AgentChoice) -> HarnessRun {
    run_traced(workload, size, agent, None)
}

/// [`run`], with an optional transition-trace sink installed before the
/// agent attaches (so IPA's probes adopt it and J2N/N2J events land in the
/// same recorder as the VM's thread/compile events). Tracing charges no
/// cycles: a traced run's Table I/II quantities are identical to an
/// untraced one's.
///
/// # Panics
///
/// As [`run`].
pub fn run_traced(
    workload: &dyn Workload,
    size: ProblemSize,
    agent: AgentChoice,
    trace: Option<Arc<dyn TraceSink>>,
) -> HarnessRun {
    match try_run_traced(workload, size, agent, trace, None) {
        Ok(run) => run,
        Err(e) => panic!("{}: {e}", workload.name()),
    }
}

/// Fallible [`run_traced`]: every failure mode — instrumentation, attach,
/// VM-level errors, escaped exceptions, bad checksums — comes back as a
/// typed [`HarnessError`] instead of a panic, and an optional
/// [`FaultInjector`] is installed on the VM **before** the JVMTI shim
/// attaches so the VM, the shim's virtual clock, and the agents all share
/// one deterministic fault schedule.
pub fn try_run_traced(
    workload: &dyn Workload,
    size: ProblemSize,
    agent: AgentChoice,
    trace: Option<Arc<dyn TraceSink>>,
    faults: Option<Arc<FaultInjector>>,
) -> Result<HarnessRun, HarnessError> {
    try_run_metered(workload, size, agent, trace, faults, None)
}

/// Fallible [`run_traced`] with an optional [`MetricsRegistry`]: when one
/// is supplied it is installed on the VM **before any thread exists** (so
/// every PCL clock mirrors its charges into a per-thread shard from cycle
/// zero) and its agent bucket is declared from the [`AgentChoice`] before
/// the agent attaches. Recording never charges cycles, so a metered run's
/// Table I/II quantities are identical to an unmetered one's; the caller
/// snapshots the registry after the run.
pub fn try_run_metered(
    workload: &dyn Workload,
    size: ProblemSize,
    agent: AgentChoice,
    trace: Option<Arc<dyn TraceSink>>,
    faults: Option<Arc<FaultInjector>>,
    metrics: Option<MetricsRegistry>,
) -> Result<HarnessRun, HarnessError> {
    let program = workload.program();
    let mut vm = Vm::new();
    if let Some(metrics) = metrics {
        metrics.set_agent_bucket(agent.bucket());
        vm.set_metrics(metrics);
    }
    if let Some(trace) = trace {
        vm.set_trace_sink(trace);
    }
    if let Some(faults) = faults {
        vm.set_fault_injector(faults);
    }
    let label = agent.label();

    let profile_source: Option<ProfileSource> = match agent {
        AgentChoice::None => {
            vm.add_archive(encode_program_archive(&program));
            None
        }
        AgentChoice::Spa => {
            vm.add_archive(encode_program_archive(&program));
            let spa = SpaAgent::new();
            jvmsim_jvmti::attach(&mut vm, Arc::clone(&spa) as Arc<dyn Agent>)
                .map_err(|e| HarnessError::Attach(format!("SPA: {e}")))?;
            Some(ProfileSource::Spa(spa))
        }
        AgentChoice::Ipa(config) => {
            let ipa = IpaAgent::with_config(config.clone());
            let mut archive = encode_program_archive(&program);
            if config.mode == nativeprof::InstrumentationMode::Static {
                ipa.instrument_archive(&mut archive)
                    .map_err(|e| HarnessError::Instrument(e.to_string()))?;
            }
            vm.add_archive(archive);
            jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>)
                .map_err(|e| HarnessError::Attach(format!("IPA: {e}")))?;
            Some(ProfileSource::Ipa(ipa))
        }
    };
    // Native libraries: the JDK's plus the workload's.
    vm.register_native_library(builtins::libjava(), true);
    for lib in &program.libraries {
        vm.register_native_library(lib.clone(), true);
    }

    let pcl = vm.pcl();
    let outcome = vm
        .run(
            &program.entry_class,
            &program.entry_method,
            "(I)I",
            vec![Value::Int(i64::from(size.0))],
        )
        .map_err(|e| HarnessError::Vm(e.to_string()))?;
    let checksum = match &outcome.main {
        Ok(Value::Int(v)) => *v,
        Err(escaped) => return Err(HarnessError::Escaped(escaped.to_string())),
        other => return Err(HarnessError::BadChecksum(format!("{other:?}"))),
    };
    let seconds = pcl.cycles_to_seconds(outcome.total_cycles);
    let profile = profile_source.map(|p| match p {
        ProfileSource::Spa(a) => a.report(),
        ProfileSource::Ipa(a) => a.report(),
    });
    Ok(HarnessRun {
        workload: workload.name().to_owned(),
        agent: label,
        outcome,
        profile,
        seconds,
        checksum,
        pcl,
    })
}

enum ProfileSource {
    Spa(Arc<SpaAgent>),
    Ipa(Arc<IpaAgent>),
}

/// Overhead of `with` relative to `baseline`, as the paper computes it:
/// `(time_with / time_without − 1) × 100`.
pub fn overhead_percent(baseline: &HarnessRun, with: &HarnessRun) -> f64 {
    if baseline.seconds == 0.0 {
        return 0.0;
    }
    (with.seconds / baseline.seconds - 1.0) * 100.0
}

/// Throughput overhead for JBB: `(ops_without / ops_with − 1) × 100`.
/// A zero profiled throughput is a total collapse: reported as infinite
/// overhead, not zero.
pub fn throughput_overhead_percent(baseline: f64, with: f64) -> f64 {
    if with == 0.0 {
        return f64::INFINITY;
    }
    (baseline / with - 1.0) * 100.0
}

/// Geometric mean of a slice (used for the JVM98 summary row).
///
/// Inputs must be positive (they are times or overhead factors); a
/// non-positive value is a caller bug and yields `NaN` rather than a
/// silently collapsed mean.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if values.iter().any(|&v| v <= 0.0) {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::by_name;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        // Non-positive input is a caller bug: surfaced as NaN.
        assert!(geometric_mean(&[0.0, 1.0]).is_nan());
    }

    #[test]
    fn overhead_math_matches_the_paper_formulas() {
        // (time_with / time_without − 1) × 100
        let mk = |seconds: f64| HarnessRun {
            workload: "x".into(),
            agent: "original",
            outcome: {
                let mut vm = jvmsim_vm::Vm::new();
                vm.add_classfile(
                    &jvmsim_classfile::builder::single_method_class("h/T", "f", "()I", |m| {
                        m.iconst(0).ireturn();
                    })
                    .unwrap(),
                );
                vm.run("h/T", "f", "()I", vec![]).unwrap()
            },
            profile: None,
            seconds,
            checksum: 0,
            pcl: jvmsim_pcl::Pcl::new(),
        };
        let base = mk(2.0);
        let with = mk(3.0);
        assert!((overhead_percent(&base, &with) - 50.0).abs() < 1e-9);
        // Throughput overhead: (ops_without / ops_with − 1) × 100.
        assert!((throughput_overhead_percent(7251.0, 66.4) - 10_820.18).abs() < 1.0);
        assert_eq!(throughput_overhead_percent(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn agent_choice_labels() {
        assert_eq!(AgentChoice::None.label(), "original");
        assert_eq!(AgentChoice::Spa.label(), "SPA");
        assert_eq!(AgentChoice::ipa().label(), "IPA");
        assert_eq!(AgentChoice::None.bucket(), Bucket::Workload);
        assert_eq!(AgentChoice::Spa.bucket(), Bucket::SpaProbe);
        assert_eq!(AgentChoice::ipa().bucket(), Bucket::IpaProbe);
    }

    #[test]
    fn jbb_throughput_computation() {
        let w = by_name("jbb").unwrap();
        let r = run(w.as_ref(), workloads::ProblemSize(1), AgentChoice::None);
        let tx = r.checksum.max(0) as u64;
        assert!(tx > 0);
        let thr = r.throughput(tx);
        assert!(thr > 0.0);
        assert!((thr - tx as f64 / r.seconds).abs() < 1e-6);
    }
}
