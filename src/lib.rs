//! # jnativeprof — native-code contribution profiling for Java workloads
//!
//! A full reproduction of *"A Quantitative Evaluation of the Contribution
//! of Native Code to Java Workloads"* (Binder, Hulaas, Moret; IISWC 2006)
//! as a Rust workspace. This umbrella crate re-exports every layer and adds
//! the [experiment harness][harness]:
//!
//! * [`classfile`] — bytecode ISA, class model, assembler, validator, codec
//! * [`instr`] — ASM-analog instrumentation (the Fig. 2 wrapper transform)
//! * [`vm`] — the simulated JVM (interpreter, JIT model, JNI, green threads)
//! * [`pcl`] — per-thread cycle counters (the PCL analog)
//! * [`metrics`] — deterministic internal metrics with cycle attribution
//! * [`jvmti`] — the tool interface (events, capabilities, TLS, monitors)
//! * [`nativeprof`] — the paper's SPA and IPA agents
//! * [`workloads`] — the JVM98/JBB2005-like benchmark suite
//!
//! ```
//! use jnativeprof::harness::AgentChoice;
//! use jnativeprof::session::Session;
//! use jnativeprof::workloads::{by_name, ProblemSize};
//!
//! let workload = by_name("mtrt").unwrap();
//! let result = Session::new(workload.as_ref(), ProblemSize::S1)
//!     .agent(AgentChoice::ipa())
//!     .run()
//!     .unwrap();
//! let profile = result.profile.unwrap();
//! assert!(profile.percent_native() < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod harness;
pub mod session;

pub use jvmsim_classfile as classfile;
pub use jvmsim_instr as instr;
pub use jvmsim_jvmti as jvmti;
pub use jvmsim_metrics as metrics;
pub use jvmsim_pcl as pcl;
pub use jvmsim_vm as vm;
pub use nativeprof;
pub use workloads;
