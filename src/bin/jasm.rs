//! `jasm` — assemble and run jvmsim assembly files.
//!
//! ```sh
//! jasm build <in.jasm> <out.jvma>            # assemble to an archive
//! jasm run <in.jasm> <class> <method> [int…] # assemble + execute
//! jasm profile [--agent LABEL] <in.jasm> <class> <method> [int…]
//! ```
//!
//! `run`/`profile` load the bootstrap library (`java/lang/*`, `java/io/*`)
//! so assembly programs can call the native JDK analogs; the entry method
//! must be static and take only integer parameters. `profile` defaults to
//! IPA; `--agent` accepts any label the shared [`AgentChoice`] parser
//! knows (`original`, `spa`, `ipa`, `alloc`, `lock`) and prints that
//! agent's report after the run.
//!
//! Exit codes follow the shared failure classes
//! ([`HarnessError::exit_code`]), so scripts distinguish a typo'd command
//! line (`2`) from a failed assembly (`2`), a broken archive (`3`), a VM
//! error (`5`), or an escaped exception (`6`) without parsing stderr —
//! the same contract `jprof` honours.

use std::process::ExitCode;
use std::sync::Arc;

use jnativeprof::classfile::jasm;
use jnativeprof::harness::{AgentChoice, HarnessError};
use jnativeprof::instr::Archive;
use jnativeprof::vm::{builtins, Value, Vm};
use jvmsim_jvmti::Agent;
use nativeprof::IpaAgent;
use nativeprof::SpaAgent;
use nativeprof_agents::{AllocAgent, LockAgent};

const USAGE: &str = "\
usage:
  jasm build <in.jasm> <out.jvma>
  jasm run <in.jasm> <class> <method> [int args…]
  jasm profile [--agent LABEL] <in.jasm> <class> <method> [int args…]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("run") => execute(&args[1..], false),
        Some("profile") => execute(&args[1..], true),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(HarnessError::Usage(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
        None => Err(HarnessError::Usage(format!("no subcommand\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("jasm: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn assemble(path: &str) -> Result<Vec<jnativeprof::classfile::ClassFile>, HarnessError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| HarnessError::Artifact(format!("{path}: {e}")))?;
    // A source that does not assemble is bad input, not a harness fault.
    jasm::parse(&source).map_err(|e| HarnessError::Usage(format!("{path}: {e}")))
}

fn build(args: &[String]) -> Result<(), HarnessError> {
    let [input, output] = args else {
        return Err(HarnessError::Usage(format!(
            "build needs <in.jasm> <out.jvma>\n{USAGE}"
        )));
    };
    let classes = assemble(input)?;
    let mut archive = Archive::new();
    for class in &classes {
        archive
            .insert_class(class)
            .map_err(|e| HarnessError::Instrument(e.to_string()))?;
    }
    std::fs::write(output, archive.to_bytes())
        .map_err(|e| HarnessError::Artifact(format!("{output}: {e}")))?;
    println!("{output}: {} classes assembled", classes.len());
    Ok(())
}

/// Which agent `profile` attached, kept alive until the report prints.
enum Attached {
    None,
    Spa(Arc<SpaAgent>),
    Ipa(Arc<IpaAgent>),
    Alloc(Arc<AllocAgent>),
    Lock(Arc<LockAgent>),
}

fn execute(args: &[String], profile: bool) -> Result<(), HarnessError> {
    // `profile` accepts an optional leading `--agent LABEL`; parsing goes
    // through the shared `FromStr` so jasm, jprof, and the serve spec all
    // reject unknown labels with the same typed message.
    let (agent, args) = match args {
        [flag, label, rest @ ..] if profile && flag == "--agent" => {
            let choice: AgentChoice =
                label
                    .parse()
                    .map_err(|e: jnativeprof::harness::ParseAgentError| {
                        HarnessError::Usage(e.to_string())
                    })?;
            (choice, rest)
        }
        _ if profile => (AgentChoice::ipa(), args),
        _ => (AgentChoice::None, args),
    };
    let [input, class, method, int_args @ ..] = args else {
        return Err(HarnessError::Usage(format!(
            "run needs <in.jasm> <class> <method> [int args…]\n{USAGE}"
        )));
    };
    let classes = assemble(input)?;
    let values: Vec<Value> = int_args
        .iter()
        .map(|a| {
            a.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| HarnessError::Usage(format!("{a}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let descriptor = format!("({})I", "I".repeat(values.len()));

    let mut vm = Vm::new();
    let attached = if let AgentChoice::Ipa(_) = &agent {
        // IPA rewrites the archive, so the boot library rides in it too.
        let mut archive = Archive::new();
        for (name, bytes) in builtins::boot_archive() {
            archive
                .insert_bytes(name, bytes)
                .map_err(|e| HarnessError::Instrument(e.to_string()))?;
        }
        for c in &classes {
            archive
                .insert_class(c)
                .map_err(|e| HarnessError::Instrument(e.to_string()))?;
        }
        let ipa = IpaAgent::new();
        ipa.instrument_archive(&mut archive)
            .map_err(|e| HarnessError::Instrument(e.to_string()))?;
        vm.add_archive(archive);
        vm.register_native_library(builtins::libjava(), true);
        jvmsim_jvmti::attach(&mut vm, Arc::clone(&ipa) as Arc<dyn Agent>)
            .map_err(|e| HarnessError::Attach(e.to_string()))?;
        Attached::Ipa(ipa)
    } else {
        builtins::install(&mut vm);
        for c in &classes {
            vm.add_classfile(c);
        }
        match &agent {
            AgentChoice::None => Attached::None,
            AgentChoice::Spa => {
                let spa = SpaAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&spa) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(e.to_string()))?;
                Attached::Spa(spa)
            }
            AgentChoice::Alloc => {
                let alloc = AllocAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&alloc) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(e.to_string()))?;
                Attached::Alloc(alloc)
            }
            AgentChoice::Lock => {
                let lock = LockAgent::new();
                jvmsim_jvmti::attach(&mut vm, Arc::clone(&lock) as Arc<dyn Agent>)
                    .map_err(|e| HarnessError::Attach(e.to_string()))?;
                Attached::Lock(lock)
            }
            AgentChoice::Ipa(_) => unreachable!("handled above"),
        }
    };

    let pcl = vm.pcl();
    let outcome = vm
        .run(class, method, &descriptor, values)
        .map_err(|e| HarnessError::Vm(e.to_string()))?;
    let failed = match &outcome.main {
        Ok(v) => {
            println!("result: {v}");
            None
        }
        Err(e) => Some(HarnessError::Escaped(format!("uncaught exception: {e}"))),
    };
    println!(
        "cycles: {}  (virtual {:.6} s)   invocations: {}   native calls: {}",
        outcome.total_cycles,
        pcl.cycles_to_seconds(outcome.total_cycles),
        outcome.stats.invocations,
        outcome.stats.native_calls
    );
    match attached {
        Attached::None => {}
        Attached::Spa(spa) => print!("{}", spa.report()),
        Attached::Ipa(ipa) => print!("{}", ipa.report()),
        Attached::Alloc(alloc) => print!("{}", alloc.report()),
        Attached::Lock(lock) => print!("{}", lock.report()),
    }
    // Exit nonzero on an uncaught exception, like `java` does.
    failed.map_or(Ok(()), Err)
}
