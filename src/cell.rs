//! The shared cell-row model: one (workload, agent, size) cell's
//! deterministic quantities, its cache-entry codec, and its canonical
//! JSON row rendering.
//!
//! Three consumers must agree on these bytes exactly:
//!
//! * the suite driver, which memoizes completed rows on the cache's
//!   cell-result plane and assembles the Table I/II artifacts;
//! * `jprof run`, which renders one cell row to stdout or a file;
//! * `jvmsim-serve`, whose `POST /v1/run` response must be byte-identical
//!   to the batch driver's row for the same run identity, cold or warm.
//!
//! Keeping the codec and the row renderer here — in the umbrella crate,
//! below all three — makes that agreement structural rather than a test
//! assertion: there is exactly one implementation to diverge from.

use jvmsim_faults::FaultSite;

use crate::session::RunOutcome;

/// Per-tier cycle attribution for one cell: where the execution engine
/// spent its time (per execution tier) and what tier-up compilation cost.
/// The five fields are disjoint slices of the run's execution+compile
/// cycles, so interp-only runs show zeros in the last four columns and
/// every mode's columns stay mutually comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCycles {
    /// Cycles charged while executing at the interpreter tier.
    pub interp: u64,
    /// Cycles charged while executing at the C1 (client) tier.
    pub c1: u64,
    /// Cycles charged while executing at the C2 (server) tier.
    pub c2: u64,
    /// Cycles charged compiling methods to C1.
    pub c1_compile: u64,
    /// Cycles charged compiling methods to C2.
    pub c2_compile: u64,
}

/// Everything the tables (and a served run response) need from one
/// (workload, agent) cell: virtual seconds, the behavioural checksum,
/// total cycles, the per-tier cycle breakdown, and the agent-specific
/// triple — Table II's profile for IPA, the site summary for ALLOC, the
/// contention summary for LOCK.
#[derive(Debug, Clone, PartialEq)]
pub struct CellQuantities {
    /// Virtual wall-clock seconds (total cycles at the PCL clock rate).
    pub seconds: f64,
    /// The workload checksum (behavioural-equivalence witness).
    pub checksum: i64,
    /// Total cycles charged across all threads.
    pub total_cycles: u64,
    /// Per-tier execution and compile cycles.
    pub tiers: TierCycles,
    /// `(percent_native, jni_calls, native_method_calls)` when IPA ran.
    pub profile: Option<(f64, u64, u64)>,
    /// `(sites, total_objects, total_bytes)` when ALLOC ran.
    pub alloc: Option<(u64, u64, u64)>,
    /// `(entries, contended, blocked_cycles)` when LOCK ran.
    pub lock: Option<(u64, u64, u64)>,
}

impl CellQuantities {
    /// Extract the cell quantities from a completed run. The native-time
    /// profile is kept only for IPA runs — SPA reports one too, but
    /// Table II (and the row schema) attribute native time to IPA alone.
    /// The ALLOC and LOCK triples ride on whichever of those agents ran.
    #[must_use]
    pub fn from_run(run: &RunOutcome) -> CellQuantities {
        let stats = &run.outcome.stats;
        CellQuantities {
            seconds: run.seconds,
            checksum: run.checksum,
            total_cycles: run.outcome.total_cycles,
            tiers: TierCycles {
                interp: stats.interp_cycles,
                c1: stats.c1_cycles,
                c2: stats.c2_cycles,
                c1_compile: stats.c1_compile_cycles,
                c2_compile: stats.c2_compile_cycles,
            },
            profile: run
                .profile
                .as_ref()
                .filter(|_| run.agent == "IPA")
                .map(|p| (p.percent_native(), p.jni_calls, p.native_method_calls)),
            alloc: run
                .alloc
                .as_ref()
                .map(|a| (a.sites.len() as u64, a.total_objects, a.total_bytes)),
            lock: run.lock.as_ref().map(|l| {
                (
                    l.total_entries(),
                    l.total_contended(),
                    l.total_blocked_cycles(),
                )
            }),
        }
    }
}

/// Per-site `(site, consulted, injected)` fault-schedule tally, stored
/// alongside a memoized cell so warm chaos reports still balance.
pub type SiteTally = (FaultSite, u64, u64);

/// Payload layout version for memoized cell rows. Bumping it orphans old
/// entries (their payloads stop decoding, so they are quarantined and
/// recomputed) without touching the cache's own framing. Version 2 added
/// the ALLOC and LOCK triples; version 3 the per-tier cycle quintuple.
pub const CELL_ENTRY_VERSION: u32 = 3;

/// Serialize a completed cell for the result plane: everything the table
/// assembler reads, exactly — floats as IEEE bits so a decoded row
/// formats byte-identically to the live one — plus the chaos injector's
/// per-site schedule so warm chaos reports still balance.
#[must_use]
pub fn encode_cell_entry(outcome: &CellQuantities, sites: &[SiteTally]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + sites.len() * 17);
    out.extend_from_slice(&CELL_ENTRY_VERSION.to_le_bytes());
    out.extend_from_slice(&outcome.seconds.to_bits().to_le_bytes());
    out.extend_from_slice(&outcome.checksum.to_le_bytes());
    out.extend_from_slice(&outcome.total_cycles.to_le_bytes());
    for cycles in [
        outcome.tiers.interp,
        outcome.tiers.c1,
        outcome.tiers.c2,
        outcome.tiers.c1_compile,
        outcome.tiers.c2_compile,
    ] {
        out.extend_from_slice(&cycles.to_le_bytes());
    }
    match outcome.profile {
        None => out.push(0),
        Some((pct_native, jni_calls, native_method_calls)) => {
            out.push(1);
            out.extend_from_slice(&pct_native.to_bits().to_le_bytes());
            out.extend_from_slice(&jni_calls.to_le_bytes());
            out.extend_from_slice(&native_method_calls.to_le_bytes());
        }
    }
    for triple in [outcome.alloc, outcome.lock] {
        match triple {
            None => out.push(0),
            Some((a, b, c)) => {
                out.push(1);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(sites.len() as u32).to_le_bytes());
    for &(site, consulted, injected) in sites {
        out.push(site.index() as u8);
        out.extend_from_slice(&consulted.to_le_bytes());
        out.extend_from_slice(&injected.to_le_bytes());
    }
    out
}

/// Strict inverse of [`encode_cell_entry`]. `None` on any malformed shape
/// (wrong version, truncation, trailing bytes, unknown fault site) — the
/// caller quarantines the entry and recomputes.
#[must_use]
pub fn decode_cell_entry(bytes: &[u8]) -> Option<(CellQuantities, Vec<SiteTally>)> {
    struct Cursor<'a>(&'a [u8]);
    impl Cursor<'_> {
        fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
            let (head, tail) = self.0.split_at_checked(N)?;
            self.0 = tail;
            head.try_into().ok()
        }
        fn u8(&mut self) -> Option<u8> {
            self.take::<1>().map(|b| b[0])
        }
        fn u32(&mut self) -> Option<u32> {
            self.take::<4>().map(u32::from_le_bytes)
        }
        fn u64(&mut self) -> Option<u64> {
            self.take::<8>().map(u64::from_le_bytes)
        }
    }
    let mut c = Cursor(bytes);
    if c.u32()? != CELL_ENTRY_VERSION {
        return None;
    }
    let seconds = f64::from_bits(c.u64()?);
    let checksum = i64::from_le_bytes(c.take::<8>()?);
    let total_cycles = c.u64()?;
    let tiers = TierCycles {
        interp: c.u64()?,
        c1: c.u64()?,
        c2: c.u64()?,
        c1_compile: c.u64()?,
        c2_compile: c.u64()?,
    };
    let profile = match c.u8()? {
        0 => None,
        1 => Some((f64::from_bits(c.u64()?), c.u64()?, c.u64()?)),
        _ => return None,
    };
    let u64_triple = |c: &mut Cursor<'_>| match c.u8()? {
        0 => Some(None),
        1 => Some(Some((c.u64()?, c.u64()?, c.u64()?))),
        _ => None,
    };
    let alloc = u64_triple(&mut c)?;
    let lock = u64_triple(&mut c)?;
    let site_count = c.u32()? as usize;
    let mut sites = Vec::with_capacity(site_count.min(FaultSite::COUNT));
    for _ in 0..site_count {
        let site = *FaultSite::ALL.get(c.u8()? as usize)?;
        sites.push((site, c.u64()?, c.u64()?));
    }
    if !c.0.is_empty() {
        return None;
    }
    Some((
        CellQuantities {
            seconds,
            checksum,
            total_cycles,
            tiers,
            profile,
            alloc,
            lock,
        },
        sites,
    ))
}

/// Column names of the canonical cell row, in rendering order.
pub const CELL_ROW_COLUMNS: [&str; 20] = [
    "benchmark",
    "agent",
    "size",
    "seconds",
    "checksum",
    "total_cycles",
    "interp_cycles",
    "c1_cycles",
    "c2_cycles",
    "c1_compile_cycles",
    "c2_compile_cycles",
    "pct_native",
    "jni_calls",
    "native_method_calls",
    "alloc_sites",
    "alloc_objects",
    "alloc_bytes",
    "lock_entries",
    "lock_contended",
    "lock_blocked_cycles",
];

/// Render one cell as the canonical JSON row: a single-object array in
/// the same shape `Table::to_json` gives a one-row table (all values as
/// JSON strings, floats in fixed six-decimal formatting, agent-specific
/// columns empty for cells whose agent did not produce them,
/// `\n`-terminated). Every transport — batch file, stdout, HTTP response
/// body — emits exactly these bytes for the same run identity.
#[must_use]
pub fn cell_row_json(benchmark: &str, agent: &str, size: u32, cell: &CellQuantities) -> String {
    let (pct_native, jni_calls, native_method_calls) = match cell.profile {
        Some((pct, jni, native)) => (format!("{pct:.6}"), jni.to_string(), native.to_string()),
        None => (String::new(), String::new(), String::new()),
    };
    let triple = |t: Option<(u64, u64, u64)>| match t {
        Some((a, b, c)) => (a.to_string(), b.to_string(), c.to_string()),
        None => (String::new(), String::new(), String::new()),
    };
    let (alloc_sites, alloc_objects, alloc_bytes) = triple(cell.alloc);
    let (lock_entries, lock_contended, lock_blocked) = triple(cell.lock);
    let values = [
        benchmark.to_owned(),
        agent.to_owned(),
        size.to_string(),
        format!("{:.6}", cell.seconds),
        cell.checksum.to_string(),
        cell.total_cycles.to_string(),
        cell.tiers.interp.to_string(),
        cell.tiers.c1.to_string(),
        cell.tiers.c2.to_string(),
        cell.tiers.c1_compile.to_string(),
        cell.tiers.c2_compile.to_string(),
        pct_native,
        jni_calls,
        native_method_calls,
        alloc_sites,
        alloc_objects,
        alloc_bytes,
        lock_entries,
        lock_contended,
        lock_blocked,
    ];
    let mut out = String::from("[\n  {");
    for (i, (column, value)) in CELL_ROW_COLUMNS.iter().zip(&values).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(column);
        out.push_str("\":\"");
        out.push_str(&json_escape(value));
        out.push('"');
    }
    out.push_str("}\n]\n");
    out
}

/// Minimal JSON string escaping for row values (benchmark names and
/// rendered numbers never need more than this, but a hostile workload
/// name must not break the framing).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_entry_codec_round_trips() {
        let with_profile = CellQuantities {
            seconds: 1.234_567_891_2,
            checksum: -42,
            total_cycles: 987_654_321,
            tiers: TierCycles {
                interp: 900_000_000,
                c1: 50_000_000,
                c2: 30_000_000,
                c1_compile: 4_000_000,
                c2_compile: 3_654_321,
            },
            profile: Some((4.539_999_9, 3, 7)),
            alloc: Some((12, 345, 6789)),
            lock: Some((21, 10, 55_000)),
        };
        let sites: Vec<_> = FaultSite::ALL
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64 * 11, i as u64 * 3))
            .collect();
        let bytes = encode_cell_entry(&with_profile, &sites);
        let (decoded, decoded_sites) = decode_cell_entry(&bytes).unwrap();
        assert_eq!(decoded.seconds.to_bits(), with_profile.seconds.to_bits());
        assert_eq!(decoded.checksum, with_profile.checksum);
        assert_eq!(decoded.total_cycles, with_profile.total_cycles);
        assert_eq!(decoded.tiers, with_profile.tiers);
        assert_eq!(
            decoded.profile.unwrap().0.to_bits(),
            with_profile.profile.unwrap().0.to_bits()
        );
        assert_eq!(decoded.alloc, with_profile.alloc);
        assert_eq!(decoded.lock, with_profile.lock);
        assert_eq!(decoded_sites, sites);

        let bare = CellQuantities {
            seconds: 0.5,
            checksum: 9,
            total_cycles: 10,
            tiers: TierCycles::default(),
            profile: None,
            alloc: None,
            lock: None,
        };
        let bytes = encode_cell_entry(&bare, &[]);
        let (decoded, decoded_sites) = decode_cell_entry(&bytes).unwrap();
        assert!(decoded.profile.is_none());
        assert!(decoded.alloc.is_none());
        assert!(decoded.lock.is_none());
        assert!(decoded_sites.is_empty());
        assert_eq!(decoded.checksum, 9);
    }

    #[test]
    fn malformed_cell_entries_rejected() {
        let bytes = encode_cell_entry(
            &CellQuantities {
                seconds: 1.0,
                checksum: 1,
                total_cycles: 2,
                tiers: TierCycles::default(),
                profile: Some((1.0, 2, 3)),
                alloc: None,
                lock: None,
            },
            &[(FaultSite::ALL[0], 5, 1)],
        );
        // Every truncation fails closed.
        for len in 0..bytes.len() {
            assert!(decode_cell_entry(&bytes[..len]).is_none(), "len {len}");
        }
        // Trailing garbage fails closed.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_cell_entry(&long).is_none());
        // Wrong version fails closed.
        let mut versioned = bytes.clone();
        versioned[0] ^= 0xFF;
        assert!(decode_cell_entry(&versioned).is_none());
        // Unknown fault site index fails closed.
        let mut bad_site = bytes;
        // version + seconds + checksum + cycles + tier quintuple +
        // profile(tag+triple) + alloc tag + lock tag + site count.
        let site_pos = 4 + 8 + 8 + 8 + 40 + (1 + 24) + 1 + 1 + 4;
        bad_site[site_pos] = FaultSite::COUNT as u8;
        assert!(decode_cell_entry(&bad_site).is_none());
    }

    #[test]
    fn row_json_shape_and_escaping() {
        let ipa = CellQuantities {
            seconds: 1.5,
            checksum: 7,
            total_cycles: 1000,
            tiers: TierCycles {
                interp: 600,
                c1: 200,
                c2: 100,
                c1_compile: 60,
                c2_compile: 40,
            },
            profile: Some((4.54, 3, 9)),
            alloc: None,
            lock: None,
        };
        let row = cell_row_json("compress", "IPA", 1, &ipa);
        assert_eq!(
            row,
            "[\n  {\"benchmark\":\"compress\",\"agent\":\"IPA\",\"size\":\"1\",\
             \"seconds\":\"1.500000\",\"checksum\":\"7\",\"total_cycles\":\"1000\",\
             \"interp_cycles\":\"600\",\"c1_cycles\":\"200\",\"c2_cycles\":\"100\",\
             \"c1_compile_cycles\":\"60\",\"c2_compile_cycles\":\"40\",\
             \"pct_native\":\"4.540000\",\"jni_calls\":\"3\",\
             \"native_method_calls\":\"9\",\"alloc_sites\":\"\",\
             \"alloc_objects\":\"\",\"alloc_bytes\":\"\",\"lock_entries\":\"\",\
             \"lock_contended\":\"\",\"lock_blocked_cycles\":\"\"}\n]\n"
        );
        let alloc = CellQuantities {
            profile: None,
            alloc: Some((3, 5, 170)),
            ..ipa.clone()
        };
        let row = cell_row_json("compress", "ALLOC", 1, &alloc);
        assert!(row.contains("\"alloc_sites\":\"3\""));
        assert!(row.contains("\"alloc_objects\":\"5\""));
        assert!(row.contains("\"alloc_bytes\":\"170\""));
        assert!(row.contains("\"lock_entries\":\"\""));
        let lock = CellQuantities {
            profile: None,
            lock: Some((21, 10, 55_000)),
            ..ipa.clone()
        };
        let row = cell_row_json("jbb", "LOCK", 1, &lock);
        assert!(row.contains("\"lock_entries\":\"21\""));
        assert!(row.contains("\"lock_contended\":\"10\""));
        assert!(row.contains("\"lock_blocked_cycles\":\"55000\""));
        assert!(row.contains("\"alloc_sites\":\"\""));
        let original = CellQuantities {
            profile: None,
            ..ipa
        };
        let row = cell_row_json("a\"b", "original", 10, &original);
        assert!(row.contains("\"benchmark\":\"a\\\"b\""));
        assert!(row.contains("\"pct_native\":\"\""));
        assert!(row.ends_with("}\n]\n"));
    }
}
